#ifndef EQSQL_STORAGE_TXN_H_
#define EQSQL_STORAGE_TXN_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "storage/mvcc.h"

namespace eqsql::storage {

class Table;
struct TableSlot;

/// One write a transaction performed: the slot it touched, the version
/// it installed (`created`, null for a pure DELETE) and/or superseded
/// (`superseded`, null for an INSERT), plus the committed-row-count
/// delta. `pin` keeps the table alive across registry drops; it is null
/// only for stack-allocated tables in tests.
struct WriteRecord {
  std::shared_ptr<Table> pin;
  Table* table = nullptr;
  std::shared_ptr<TableSlot> slot;
  Version* created = nullptr;
  Version* superseded = nullptr;
  int64_t delta = 0;
};

/// A snapshot-isolation transaction: a pinned snapshot, a write set,
/// and the set of tables it READ (scans, UPDATE/DELETE match sets,
/// failed statements whose outcome depended on table state), which
/// commit-time validation checks so that committed transactions are
/// serializable in commit order. Write-write conflicts are caught per
/// version (first-writer-wins), so blind writes to one table never
/// conflict at this level. Not internally synchronized: the session
/// owning the transaction executes its statements one at a time
/// (net::Session serializes them via the transaction context mutex).
class Transaction {
 public:
  uint64_t id() const { return id_; }
  const Snapshot& snapshot() const { return snapshot_; }
  bool active() const { return active_; }
  /// Commit timestamp (0 until committed; unchanged by rollback).
  Ts commit_ts() const { return commit_ts_; }
  /// Commit sequence number for replay ordering: monotone across every
  /// committed transaction, including read-only ones (which do not
  /// advance the version clock).
  uint64_t commit_seq() const { return commit_seq_; }

  /// Records that this transaction READ `table` (a scan, an
  /// UPDATE/DELETE's visible-row walk, or a failed statement whose
  /// outcome observed table state). Validation aborts the commit if any
  /// recorded table was committed to after this transaction's snapshot.
  void RecordAccess(const std::shared_ptr<Table>& table);
  void RecordAccess(Table* table);

  /// Called by Table write paths to log an installed/superseded version.
  void RecordWrite(WriteRecord record);

  size_t write_count() const { return writes_.size(); }

 private:
  friend class TxnManager;

  uint64_t id_ = 0;
  Snapshot snapshot_;
  bool active_ = true;
  Ts commit_ts_ = 0;
  uint64_t commit_seq_ = 0;
  std::vector<WriteRecord> writes_;
  /// Keyed by table identity (one table object per name per registry
  /// epoch); the shared_ptr keeps dropped tables alive until resolution.
  std::map<Table*, std::shared_ptr<Table>> accessed_;
};

/// The database-wide transaction coordinator: the commit clock, the
/// transaction-id allocator, the active-snapshot pin set (whose minimum
/// is the GC watermark), and the retire list of unlinked versions that
/// may still be reachable by in-flight readers.
///
/// Locking: `commit_mu_` linearizes commits (validate, stamp, publish
/// the clock); `mu_` guards pins and the retire list and is a leaf
/// lock. Readers pin/unpin through `mu_` only — they never touch
/// `commit_mu_`, so a long-running commit never blocks a reader and a
/// long scan never blocks a commit.
class TxnManager {
 public:
  TxnManager() = default;
  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;
  ~TxnManager();

  /// Starts a transaction: allocates an id, pins a snapshot.
  std::shared_ptr<Transaction> Begin();

  /// Validates and commits. On a conflict the transaction is rolled
  /// back internally and kTxnConflict is returned — the caller must not
  /// roll back again. Commit order is the serialization order.
  Status Commit(Transaction* txn);

  /// Reverts every write (installed versions become aborted, superseded
  /// versions live again) and releases the snapshot pin. Idempotent on
  /// an already-finished transaction.
  void Rollback(Transaction* txn);

  /// Pins a read-only snapshot at the current clock (storage::ReadGuard
  /// holds one for the duration of a query). Must be released with
  /// Unpin(same value).
  Ts PinSnapshot();
  void Unpin(Ts ts);

  /// Newest committed timestamp.
  Ts clock() const { return clock_.load(std::memory_order_acquire); }

  /// Oldest snapshot any live reader or transaction can observe; GC may
  /// reclaim versions dead at or below this point. Equals clock() when
  /// nothing is pinned.
  Ts Watermark() const;

  /// Takes ownership of versions GC unlinked from chains. They are
  /// freed by SweepRetired() once every pin that predates the unlink is
  /// released (pins and retires are ordered through mu_, so a reader
  /// pinned after a retire can no longer reach the unlinked version).
  void Retire(std::vector<Version*> versions);

  /// Frees retired versions no live pin can still be traversing.
  void SweepRetired();

  /// Number of versions currently parked on the retire list (test hook).
  size_t retired_count() const;

  /// Resolves storage.mvcc.* counter handles (leaf-lock rule: handles
  /// are cached here; hot paths never touch the registry mutex).
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Counts a version installed by a write path (storage.mvcc.versions).
  void NoteVersionInstalled();

 private:
  void RollbackLocked(Transaction* txn);
  void UnpinLocked(Ts ts);

  std::atomic<Ts> clock_{1};
  std::atomic<uint64_t> next_txn_id_{1};
  /// Linearizes commit validation + stamping + clock publication.
  std::mutex commit_mu_;
  uint64_t next_commit_seq_ = 0;  // guarded by commit_mu_

  mutable std::mutex mu_;  // pins_ and retired_ (leaf lock)
  std::multiset<Ts> pins_;
  struct Retired {
    Version* version;
    Ts retire_ts;
  };
  std::vector<Retired> retired_;

  obs::Counter* m_begins_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_conflicts_ = nullptr;
  obs::Counter* m_rollbacks_ = nullptr;
  obs::Counter* m_versions_ = nullptr;
  obs::Counter* m_gc_reclaimed_ = nullptr;
};

}  // namespace eqsql::storage

#endif  // EQSQL_STORAGE_TXN_H_
