#include "storage/database.h"

#include <mutex>
#include <thread>

#include "common/hash.h"
#include "common/strings.h"

namespace eqsql::storage {

Database::Database(DatabaseOptions options) {
  shard_count_ = options.shard_count;
  if (shard_count_ == 0) {
    shard_count_ = std::thread::hardware_concurrency();
    if (shard_count_ == 0) shard_count_ = 1;
  }
}

Result<Table*> Database::CreateTable(const std::string& name,
                                     catalog::Schema schema) {
  std::string key = AsciiToLower(name);
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  if (tables_.count(key) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  auto table =
      std::make_shared<Table>(name, std::move(schema), shard_count_, &txns_);
  Table* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return static_cast<const Table*>(it->second.get());
}

std::shared_ptr<const Table> Database::SnapshotTable(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) return nullptr;
  return it->second;
}

std::shared_ptr<Table> Database::SnapshotTable(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) return nullptr;
  return it->second;
}

void Database::PublishTable(std::shared_ptr<Table> table) {
  std::string key = AsciiToLower(table->name());
  // Offline-built tables adopt this database's transaction coordinator
  // at publication, so later transactional writes stamp consistently.
  table->set_txn_manager(&txns_);
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  tables_[std::move(key)] = std::move(table);
}

bool Database::HasTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  return tables_.count(AsciiToLower(name)) > 0;
}

void Database::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  tables_.erase(AsciiToLower(name));
}

void Database::Vacuum() {
  // Collect table references under the registry lock, then vacuum
  // without it (registry_mu_ is a leaf lock and must not be held while
  // shard write locks are taken).
  std::vector<std::shared_ptr<Table>> tables;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    tables.reserve(tables_.size());
    for (const auto& [key, table] : tables_) tables.push_back(table);
  }
  const Ts watermark = txns_.Watermark();
  for (const auto& table : tables) table->Vacuum(watermark, &txns_);
  txns_.SweepRetired();
}

uint64_t Database::StatsEpoch() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  // tables_ is an ordered map keyed by lowercase name, so the fold is
  // deterministic for a given registry state.
  uint64_t h = Fnv1a("stats-epoch");
  for (const auto& [key, table] : tables_) {
    h = SplitMix64(h ^ Fnv1a(key));
    h = SplitMix64(h ^ table->stats_epoch());
    h = SplitMix64(h ^ static_cast<uint64_t>(table->index_count()));
  }
  return h;
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace eqsql::storage
