# Empty dependencies file for eqsql_common.
# This may be replaced when dependencies are built.
