# Empty dependencies file for eqsql_dir.
# This may be replaced when dependencies are built.
