#ifndef EQSQL_INTERP_INTERPRETER_H_
#define EQSQL_INTERP_INTERPRETER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "frontend/ast.h"
#include "interp/value.h"
#include "net/api.h"

namespace eqsql::interp {

/// A tree-walking interpreter for ImpLang programs.
///
/// Queries execute through a net::Client — either a raw net::Connection
/// (direct, caller-thread execution) or a net::Session (every statement
/// goes through the server's scheduler) — so running a program also
/// accumulates the simulated cost-model statistics (round trips, bytes,
/// simulated time) that the benchmark harness reports. Prints are
/// captured into `printed()` in order — the equivalence tests compare
/// printed output and return values between the original and rewritten
/// programs.
///
/// Builtins: executeQuery, executeUpdate, scalar, max, min, abs,
/// coalesce, list, set, pair/tuple, concat. max/min ignore NULL
/// arguments (Java's Math.max never sees SQL NULLs; this also makes the
/// T6 rewrite max(init, MAX-query) exact on empty inputs).
class Interpreter {
 public:
  Interpreter(const frontend::Program* program, net::Client* client)
      : program_(program), client_(client) {}

  /// Runs `function` with scalar arguments; returns its return value
  /// (NULL scalar if the function does not return).
  Result<RtValue> Run(const std::string& function,
                      std::vector<RtValue> args = {});

  const std::vector<std::string>& printed() const { return printed_; }
  void ClearOutput() { printed_.clear(); }

 private:
  using Env = std::map<std::string, RtValue>;

  enum class Signal { kNone, kBreak, kReturn };

  Result<Signal> ExecBlock(const std::vector<frontend::StmtPtr>& stmts,
                           Env* env, RtValue* ret);
  Result<Signal> ExecStmt(const frontend::StmtPtr& stmt, Env* env,
                          RtValue* ret);
  Result<RtValue> Eval(const frontend::ExprPtr& expr, Env* env);
  Result<RtValue> EvalCall(const frontend::Expr& call, Env* env);
  Result<RtValue> EvalMethod(const frontend::Expr& call, Env* env);
  Result<catalog::Value> EvalScalarArg(const frontend::ExprPtr& expr,
                                       Env* env);

  const frontend::Program* program_;
  net::Client* client_;
  std::vector<std::string> printed_;
  int call_depth_ = 0;
};

}  // namespace eqsql::interp

#endif  // EQSQL_INTERP_INTERPRETER_H_
