#ifndef EQSQL_REWRITE_REWRITER_H_
#define EQSQL_REWRITE_REWRITER_H_

#include <set>
#include <vector>

#include "frontend/ast.h"

namespace eqsql::rewrite {

/// Rewrites a function body after SQL extraction (paper Sec. 5.2):
/// inside the loop statement `loop`, removes the statements in
/// `removable` (the extracted variables' slices minus everything other
/// surviving computation needs); then inserts `replacements` (the
/// "v = executeQuery(Q)" statements) right after the loop — or in its
/// place if its body became empty. Conditionals whose branches become
/// empty are dropped with them.
std::vector<frontend::StmtPtr> ReplaceLoopComputation(
    const std::vector<frontend::StmtPtr>& body, const frontend::Stmt* loop,
    const std::set<const frontend::Stmt*>& removable,
    std::vector<frontend::StmtPtr> replacements);

}  // namespace eqsql::rewrite

#endif  // EQSQL_REWRITE_REWRITER_H_
