#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "catalog/value.h"

namespace eqsql::catalog {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Int(1).type(), DataType::kInt64);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_NE(Value::Int(2), Value::Double(2.5));
  EXPECT_LT(Value::Int(2), Value::Double(2.5));
}

TEST(ValueTest, NullComparesSmallest) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value::String("abc"), Value::String("abd"));
  EXPECT_FALSE(Value::String("b") < Value::String("a"));
}

TEST(ValueTest, ToStringRendersSqlLiterals) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::String("a'b").ToString(), "'a''b'");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(ValueTest, WireSize) {
  EXPECT_EQ(Value::Null().WireSize(), 1u);
  EXPECT_EQ(Value::Int(1).WireSize(), 8u);
  EXPECT_EQ(Value::String("abcd").WireSize(), 8u);  // 4 + length prefix 4
}

TEST(ValueTest, HashConsistentWithEquality) {
  ValueHash h;
  EXPECT_EQ(h(Value::Int(3)), h(Value::Double(3.0)));
  EXPECT_EQ(h(Value::String("x")), h(Value::String("x")));
}

TEST(SchemaTest, IndexOfExact) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.IndexOf("a"), 0u);
  EXPECT_EQ(s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("c").has_value());
}

TEST(SchemaTest, QualifiedSuffixLookup) {
  Schema s({{"t.a", DataType::kInt64}, {"t.b", DataType::kString}});
  EXPECT_EQ(s.IndexOf("t.a"), 0u);
  EXPECT_EQ(s.IndexOf("a"), 0u);     // unqualified matches suffix
  EXPECT_EQ(s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("u.a").has_value());  // wrong qualifier
}

TEST(SchemaTest, AmbiguousUnqualifiedLookupFails) {
  Schema s({{"t.a", DataType::kInt64}, {"u.a", DataType::kInt64}});
  EXPECT_FALSE(s.IndexOf("a").has_value());
  EXPECT_EQ(s.IndexOf("t.a"), 0u);
  Result<size_t> r = s.ResolveColumn("a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ResolveColumnNotFound) {
  Schema s({{"x", DataType::kInt64}});
  Result<size_t> r = s.ResolveColumn("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, Concat) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"y", DataType::kString}});
  Schema c = a.Concat(b);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.column(0).name, "x");
  EXPECT_EQ(c.column(1).name, "y");
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"x", DataType::kInt64}});
  Schema c({{"x", DataType::kString}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(RowTest, WireSizeAndToString) {
  Row row = {Value::Int(1), Value::String("ab"), Value::Null()};
  EXPECT_EQ(RowWireSize(row), 8u + 6u + 1u);
  EXPECT_EQ(RowToString(row), "(1, 'ab', NULL)");
}

}  // namespace
}  // namespace eqsql::catalog
