// Cost-based alternative selection (Cobra-style): the selector must
// enumerate extraction / batching / interpretation for one program,
// price each against live table statistics, rank feasible-cheapest
// first, and mark exactly one winner. The served EXPLAIN EXTRACTION
// payload carries the ranked list (text + JSON) and the plan cache
// re-prices whenever the database's stats epoch moves, so the chosen
// strategy flips as data grows past the crossover.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "core/alternative_selector.h"
#include "net/api.h"
#include "net/server.h"
#include "storage/database.h"
#include "storage/table.h"

namespace eqsql {
namespace {

using catalog::DataType;
using catalog::Schema;
using catalog::Value;
using core::AlternativeKind;
using core::ExtractionPlan;
using core::PlanAlternative;

// Per-row point probe into `role` — extractable (T7), batchable (one
// parameterized equality probe), and interpretable. All three
// alternatives are feasible, so the ranking logic is fully exercised.
const char* kApplySrc = R"(
  func roleNames() {
    out = list();
    rows = executeQuery("SELECT * FROM wuser AS u");
    for (u : rows) {
      r = scalar(executeQuery("SELECT r.name AS name FROM role AS r WHERE r.id = ?", u.role_id));
      out.append(pair(u.login, r));
    }
    return out;
  }
)";

net::ServerOptions ApplyOptions() {
  net::ServerOptions options;
  options.optimize.transform.table_keys = {{"wuser", "id"}, {"role", "id"}};
  return options;
}

/// Creates wuser (n_users rows) and role (n_roles rows) in `server`.
void Populate(net::Server* server, int64_t n_users, int64_t n_roles) {
  auto wuser = *server->db()->CreateTable(
      "wuser", Schema({{"id", DataType::kInt64},
                       {"login", DataType::kString},
                       {"role_id", DataType::kInt64}}));
  for (int64_t i = 0; i < n_users; ++i) {
    ASSERT_TRUE(wuser
                    ->Insert({Value::Int(i),
                              Value::String("u" + std::to_string(i)),
                              Value::Int(i % n_roles)})
                    .ok());
  }
  auto role = *server->db()->CreateTable(
      "role",
      Schema({{"id", DataType::kInt64}, {"name", DataType::kString}}));
  for (int64_t i = 0; i < n_roles; ++i) {
    ASSERT_TRUE(
        role->Insert({Value::Int(i), Value::String("r" + std::to_string(i))})
            .ok());
  }
}

TEST(SelectionTest, PlanListsAllThreeAlternativesRankedAndPriced) {
  net::Server server(ApplyOptions());
  Populate(&server, 64, 16);
  std::unique_ptr<net::Session> session = server.Connect();

  auto plan = session->SelectPlan(kApplySrc, "roleNames");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->alternatives.size(), 3u);

  // Every strategy is present and feasible for this program.
  for (AlternativeKind kind :
       {AlternativeKind::kExtractedSql, AlternativeKind::kBatching,
        AlternativeKind::kInterpreted}) {
    const PlanAlternative* alt = (*plan)->Find(kind);
    ASSERT_NE(alt, nullptr) << core::AlternativeKindName(kind);
    EXPECT_TRUE(alt->feasible) << core::AlternativeKindName(kind)
                               << ": " << alt->skip_reason;
    EXPECT_GT(alt->est_cost_ms, 0.0);
    EXPECT_FALSE(alt->detail.empty());
  }

  // Ranked cheapest-first with exactly one winner, which leads.
  const auto& alts = (*plan)->alternatives;
  EXPECT_LE(alts[0].est_cost_ms, alts[1].est_cost_ms);
  EXPECT_LE(alts[1].est_cost_ms, alts[2].est_cost_ms);
  int chosen_count = 0;
  for (const PlanAlternative& a : alts) chosen_count += a.chosen ? 1 : 0;
  EXPECT_EQ(chosen_count, 1);
  EXPECT_TRUE(alts[0].chosen);
  EXPECT_EQ(alts[0].kind, (*plan)->chosen);
}

TEST(SelectionTest, ExplainRendersChosenAndLosingCosts) {
  net::Server server(ApplyOptions());
  Populate(&server, 64, 16);
  std::unique_ptr<net::Session> session = server.Connect();

  auto report = session->ExplainExtraction(kApplySrc, "roleNames");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->kind, net::Explain::Kind::kExtraction);

  const std::string& text = report->text;
  // The alternatives section lists every strategy with its estimated
  // cost; the winner is marked and named.
  EXPECT_NE(text.find("alternatives:"), std::string::npos) << text;
  EXPECT_NE(text.find("* extracted-sql: est "), std::string::npos) << text;
  EXPECT_NE(text.find("* batching: est "), std::string::npos) << text;
  EXPECT_NE(text.find("* interpreted: est "), std::string::npos) << text;
  EXPECT_NE(text.find(" ms (chosen)"), std::string::npos) << text;
  EXPECT_NE(text.find("chosen strategy: "), std::string::npos) << text;
  // Losing alternatives keep their prices: three "est ... ms" lines but
  // only one "(chosen)" marker.
  size_t est_lines = 0;
  for (size_t at = text.find(": est "); at != std::string::npos;
       at = text.find(": est ", at + 1)) {
    ++est_lines;
  }
  EXPECT_EQ(est_lines, 3u) << text;
  EXPECT_EQ(text.find(" (chosen)"), text.rfind(" (chosen)")) << text;

  const std::string& json = report->json;
  EXPECT_NE(json.find("\"alternatives\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"extracted-sql\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"batching\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"interpreted\""), std::string::npos);
  EXPECT_NE(json.find("\"est_cost_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"chosen\":\""), std::string::npos);
  EXPECT_NE(json.find("\"stats_epoch\":\""), std::string::npos);

  // Byte-deterministic: the same request renders the same report.
  auto again = session->ExplainExtraction(kApplySrc, "roleNames");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->text, text);
  EXPECT_EQ(again->json, json);
}

TEST(SelectionTest, InfeasibleBatchingCarriesSkipReason) {
  // A pure aggregation loop has no parameterized probe, so batching is
  // declined with a reason while extraction and interpretation price.
  const char* src = R"(
    func total() {
      agg = 0;
      rows = executeQuery("SELECT * FROM wuser AS u");
      for (u : rows) {
        agg = agg + u.id;
      }
      return agg;
    }
  )";
  net::Server server(ApplyOptions());
  Populate(&server, 16, 4);
  std::unique_ptr<net::Session> session = server.Connect();

  auto plan = session->SelectPlan(src, "total");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const PlanAlternative* batching =
      (*plan)->Find(AlternativeKind::kBatching);
  ASSERT_NE(batching, nullptr);
  EXPECT_FALSE(batching->feasible);
  EXPECT_FALSE(batching->chosen);
  EXPECT_FALSE(batching->skip_reason.empty());
  // Infeasible strategies rank after every feasible one.
  EXPECT_EQ((*plan)->alternatives.back().kind, AlternativeKind::kBatching);

  auto report = session->ExplainExtraction(src, "total");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->text.find("* batching: not applicable -- "),
            std::string::npos)
      << report->text;
}

TEST(SelectionTest, UnchangedDatabaseServesCachedPlan) {
  net::Server server(ApplyOptions());
  Populate(&server, 64, 16);
  std::unique_ptr<net::Session> session = server.Connect();

  auto first = session->SelectPlan(kApplySrc, "roleNames");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = session->SelectPlan(kApplySrc, "roleNames");
  ASSERT_TRUE(second.ok());
  // Same epoch, same line: the cache hands back the identical object.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_GE(server.stats().plan_cache.hits, 1);
}

TEST(SelectionTest, CrossoverFlipsWinnerAndInvalidatesCachedPlan) {
  // A T4 nested-loop join whose cursors are both prefetched: the
  // interpreted original pays no per-row round trips, only client-side
  // loop work, so with a small outer cursor it undercuts the extracted
  // join. Growing the cursor past the crossover moves the stats epoch
  // (invalidating the cached selection) and the re-priced plan must
  // flip to the extracted join.
  const char* src = R"(
    func userRoles() {
      result = list();
      users = executeQuery("SELECT * FROM wuser AS u");
      roles = executeQuery("SELECT * FROM role AS r");
      for (u : users) {
        for (r : roles) {
          if (u.role_id == r.id) {
            result.append(pair(u.login, r.name));
          }
        }
      }
      return result;
    }
  )";
  net::ServerOptions options = ApplyOptions();
  // An application whose per-row loop work is substantial (the paper's
  // Java code, not a tight C++ loop) — this is what the extracted join
  // saves once the cursor is large.
  options.cost_model.client_cost_per_op_ms = 0.002;
  net::Server server(std::move(options));
  Populate(&server, 4, 64);
  std::unique_ptr<net::Session> session = server.Connect();

  auto small = session->SelectPlan(src, "userRoles");
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  EXPECT_EQ((*small)->chosen, AlternativeKind::kInterpreted)
      << core::AlternativeKindName((*small)->chosen);
  const int64_t invalidations_before = server.stats().plan_cache.invalidations;

  // Grow wuser well past the crossover point.
  {
    auto wuser = *server.db()->GetTable("wuser");
    for (int64_t i = 4; i < 4000; ++i) {
      ASSERT_TRUE(wuser
                      ->Insert({Value::Int(i),
                                Value::String("u" + std::to_string(i)),
                                Value::Int(i % 64)})
                      .ok());
    }
  }

  auto big = session->SelectPlan(src, "userRoles");
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  // The stale line was invalidated by the epoch move, not served.
  EXPECT_GT(server.stats().plan_cache.invalidations, invalidations_before);
  EXPECT_NE(big->get(), small->get());
  EXPECT_NE((*big)->stats_epoch, (*small)->stats_epoch);
  // Client-side iteration over 4000 rows now dwarfs one set-oriented
  // join on the server.
  EXPECT_EQ((*big)->chosen, AlternativeKind::kExtractedSql)
      << core::AlternativeKindName((*big)->chosen);
  const PlanAlternative* interp =
      (*big)->Find(AlternativeKind::kInterpreted);
  ASSERT_NE(interp, nullptr);
  EXPECT_GT(interp->est_cost_ms,
            (*big)->Find((*big)->chosen)->est_cost_ms);
}

}  // namespace
}  // namespace eqsql
