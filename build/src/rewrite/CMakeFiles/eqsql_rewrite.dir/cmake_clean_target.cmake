file(REMOVE_RECURSE
  "libeqsql_rewrite.a"
)
