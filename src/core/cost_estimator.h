#ifndef EQSQL_CORE_COST_ESTIMATOR_H_
#define EQSQL_CORE_COST_ESTIMATOR_H_

#include <map>
#include <string>
#include <vector>

#include "net/cost_model.h"
#include "ra/ra_node.h"

namespace eqsql::core {

/// Table statistics for cost-based decisions (paper Appendix C: "the
/// decision to replace should be taken in a cost based manner").
struct TableStats {
  /// Lowercase table name → row count.
  std::map<std::string, int64_t> table_rows;
  /// Average bytes per row shipped for a table (default assumed when
  /// absent).
  std::map<std::string, int64_t> row_bytes;
  /// Lowercase table name → column lists of its ready secondary
  /// indexes (storage::Table::IndexedColumnLists). Empty when the
  /// database has no indexes; the planner then never prices an
  /// index-nested-loop alternative.
  std::map<std::string, std::vector<std::vector<std::string>>> table_indexes;
};

/// Estimated execution profile of one strategy.
struct CostEstimate {
  double cardinality = 0;     // rows the client receives
  double rows_processed = 0;  // server-side work
  int64_t round_trips = 0;
  double bytes = 0;

  /// Simulated milliseconds under `model` (same formula as
  /// net::Connection charges at run time).
  double Milliseconds(const net::CostModel& model) const;
};

/// Physical-plan decision for the first indexable equi-join in a plan:
/// both alternatives priced under the same deterministic cost model so
/// EXPLAIN EXTRACTION can show the losing cost next to the winner.
struct JoinPlanChoice {
  /// True when the plan contains an equi-join whose inner side is a
  /// base scan with a covering secondary index.
  bool applicable = false;
  /// True when the index-nested-loop alternative is estimated cheaper.
  bool index_wins = false;
  double index_ms = 0;  // plan cost with the inner scan replaced by probes
  double scan_ms = 0;   // plan cost with the parallel full scan + hash build
  /// Human-readable site, e.g. "t1(a,b)".
  std::string detail;
};

/// A Volcano-flavoured cost estimator over relational-algebra plans:
/// cardinalities propagate bottom-up with textbook selectivity guesses
/// (selection 1/3, equi-join via containment on the larger side,
/// group-by sqrt, point lookup 1), and the resulting profile is priced
/// with the same deterministic cost model the simulated connection
/// charges. The estimator powers the cost-based variant of the Sec. 5.3
/// replace-or-not decision (paper App. C).
class CostEstimator {
 public:
  CostEstimator(TableStats stats, net::CostModel model)
      : stats_(std::move(stats)), model_(model) {}

  /// Profile of executing `plan` once as a single query.
  CostEstimate EstimateQuery(const ra::RaNodePtr& plan) const;

  /// Profile of the original imperative strategy: fetch `outer` whole,
  /// then run `queries_per_row` further queries per fetched row (0 for a
  /// self-contained loop). Client work is charged per row iterated.
  CostEstimate EstimateLoop(const ra::RaNodePtr& outer,
                            int queries_per_row) const;

  /// Convenience: true when running `plan` once is estimated cheaper
  /// than the imperative strategy it replaces.
  bool RewriteWins(const ra::RaNodePtr& plan, const ra::RaNodePtr& outer,
                   int queries_per_row) const;

  /// Prices the index-nested-loop alternative against the full-scan
  /// hash join for the first join in `plan` whose inner side is a base
  /// scan with a secondary index covering the equi-join columns
  /// (Executor::TryIndexNestedLoopJoin's applicability, approximated
  /// structurally). Returns applicable=false when no such join exists.
  JoinPlanChoice ChooseJoinPlan(const ra::RaNodePtr& plan) const;

  const net::CostModel& model() const { return model_; }

  struct NodeEstimate {
    double rows = 0;        // output cardinality
    double row_bytes = 0;   // output row width
    double processed = 0;   // cumulative rows processed in the subtree
  };

  /// Per-operator estimate for one plan node (subtree-cumulative
  /// `processed`). EXPLAIN ANALYZE uses this to put the estimator's
  /// numbers next to each executed operator's actuals.
  NodeEstimate EstimateNode(const ra::RaNode& node) const {
    return Walk(node);
  }

 private:
  NodeEstimate Walk(const ra::RaNode& node) const;

  TableStats stats_;
  net::CostModel model_;
};

}  // namespace eqsql::core

#endif  // EQSQL_CORE_COST_ESTIMATOR_H_
