file(REMOVE_RECURSE
  "libeqsql_dir.a"
)
