#include "rewrite/emit.h"

#include "obs/trace.h"

namespace eqsql::rewrite {

using dir::DNodePtr;
using dir::DOp;
using frontend::BinOp;
using frontend::Expr;
using frontend::ExprPtr;

namespace {

Result<BinOp> MapBinOp(DOp op) {
  switch (op) {
    case DOp::kAdd: return BinOp::kAdd;
    case DOp::kSub: return BinOp::kSub;
    case DOp::kMul: return BinOp::kMul;
    case DOp::kDiv: return BinOp::kDiv;
    case DOp::kMod: return BinOp::kMod;
    case DOp::kEq: return BinOp::kEq;
    case DOp::kNe: return BinOp::kNe;
    case DOp::kLt: return BinOp::kLt;
    case DOp::kLe: return BinOp::kLe;
    case DOp::kGt: return BinOp::kGt;
    case DOp::kGe: return BinOp::kGe;
    case DOp::kAnd: return BinOp::kAnd;
    case DOp::kOr: return BinOp::kOr;
    default:
      return Status::Unsupported("operator not emittable: " +
                                 std::string(dir::DOpToString(op)));
  }
}

ExprPtr LiteralExpr(const catalog::Value& v) {
  if (v.is_null()) return Expr::NullLit();
  if (v.is_bool()) return Expr::BoolLit(v.AsBool());
  if (v.is_int()) return Expr::IntLit(v.AsInt());
  if (v.is_double()) return Expr::DoubleLit(v.AsDouble());
  return Expr::StringLit(v.AsString());
}

class Emitter {
 public:
  explicit Emitter(sql::Dialect dialect) : dialect_(dialect) {}

  Result<ExprPtr> Emit(const DNodePtr& node) {
    switch (node->op()) {
      case DOp::kConst:
        return LiteralExpr(node->value());
      case DOp::kRegionInput:
        return Expr::VarRef(node->name());
      case DOp::kQuery: {
        EQSQL_ASSIGN_OR_RETURN(std::string sql,
                               sql::GenerateSql(node->query(), dialect_));
        // Round-trippable form for execution: the paper's abstract
        // executeQuery syntax (kDefault dialect) is what the rewritten
        // program actually runs.
        EQSQL_ASSIGN_OR_RETURN(
            std::string exec_sql,
            sql::GenerateSql(node->query(), sql::Dialect::kDefault));
        sql_queries_.push_back(sql);
        std::vector<ExprPtr> args;
        args.push_back(Expr::StringLit(std::move(exec_sql)));
        for (const DNodePtr& p : node->children()) {
          EQSQL_ASSIGN_OR_RETURN(ExprPtr arg, Emit(p));
          args.push_back(std::move(arg));
        }
        return Expr::Call("executeQuery", std::move(args));
      }
      case DOp::kScalar: {
        EQSQL_ASSIGN_OR_RETURN(ExprPtr inner, Emit(node->child(0)));
        return Expr::Call("scalar", {std::move(inner)});
      }
      case DOp::kMax:
      case DOp::kMin: {
        EQSQL_ASSIGN_OR_RETURN(ExprPtr a, Emit(node->child(0)));
        EQSQL_ASSIGN_OR_RETURN(ExprPtr b, Emit(node->child(1)));
        return Expr::Call(node->op() == DOp::kMax ? "max" : "min",
                          {std::move(a), std::move(b)});
      }
      case DOp::kCoalesce: {
        EQSQL_ASSIGN_OR_RETURN(ExprPtr a, Emit(node->child(0)));
        EQSQL_ASSIGN_OR_RETURN(ExprPtr b, Emit(node->child(1)));
        return Expr::Call("coalesce", {std::move(a), std::move(b)});
      }
      case DOp::kCond: {
        EQSQL_ASSIGN_OR_RETURN(ExprPtr c, Emit(node->child(0)));
        EQSQL_ASSIGN_OR_RETURN(ExprPtr t, Emit(node->child(1)));
        EQSQL_ASSIGN_OR_RETURN(ExprPtr e, Emit(node->child(2)));
        return Expr::Ternary(std::move(c), std::move(t), std::move(e));
      }
      case DOp::kNot: {
        EQSQL_ASSIGN_OR_RETURN(ExprPtr c, Emit(node->child(0)));
        return Expr::Unary(frontend::UnOp::kNot, std::move(c));
      }
      case DOp::kNeg: {
        EQSQL_ASSIGN_OR_RETURN(ExprPtr c, Emit(node->child(0)));
        return Expr::Unary(frontend::UnOp::kNeg, std::move(c));
      }
      case DOp::kConcat: {
        EQSQL_ASSIGN_OR_RETURN(ExprPtr a, Emit(node->child(0)));
        EQSQL_ASSIGN_OR_RETURN(ExprPtr b, Emit(node->child(1)));
        return Expr::Binary(BinOp::kAdd, std::move(a), std::move(b));
      }
      default: {
        if (node->children().size() == 2) {
          EQSQL_ASSIGN_OR_RETURN(BinOp op, MapBinOp(node->op()));
          EQSQL_ASSIGN_OR_RETURN(ExprPtr a, Emit(node->child(0)));
          EQSQL_ASSIGN_OR_RETURN(ExprPtr b, Emit(node->child(1)));
          return Expr::Binary(op, std::move(a), std::move(b));
        }
        return Status::Unsupported("expression not emittable: " +
                                   node->ToString());
      }
    }
  }

  std::vector<std::string> TakeSql() { return std::move(sql_queries_); }

 private:
  sql::Dialect dialect_;
  std::vector<std::string> sql_queries_;
};

}  // namespace

Result<frontend::ExprPtr> EmitExpression(const DNodePtr& node,
                                          sql::Dialect dialect,
                                          std::vector<std::string>* sql_queries) {
  Emitter emitter(dialect);
  EQSQL_ASSIGN_OR_RETURN(ExprPtr expr, emitter.Emit(node));
  std::vector<std::string> sql = emitter.TakeSql();
  sql_queries->insert(sql_queries->end(), sql.begin(), sql.end());
  return expr;
}

namespace {

Result<EmittedCode> EmitAssignmentImpl(const DNodePtr& node,
                                       const std::string& var,
                                       sql::Dialect dialect) {
  bool has_query = dir::DagContext::Contains(
      node, [](const dir::DNode& n) { return n.op() == DOp::kQuery; });
  if (!has_query) {
    return Status::Unsupported("no query in transformed expression");
  }
  Emitter emitter(dialect);
  EQSQL_ASSIGN_OR_RETURN(ExprPtr expr, emitter.Emit(node));
  EmittedCode out;
  out.stmt = frontend::Stmt::Assign(var, std::move(expr));
  out.sql_queries = emitter.TakeSql();
  return out;
}

}  // namespace

Result<EmittedCode> EmitAssignment(const DNodePtr& node,
                                   const std::string& var,
                                   sql::Dialect dialect) {
  obs::ScopedSpan span("sql-emit");
  return EmitAssignmentImpl(node, var, dialect);
}

}  // namespace eqsql::rewrite
