#include "ra/scalar_expr.h"

#include "common/hash.h"
#include "common/logging.h"
#include "ra/ra_node.h"

namespace eqsql::ra {

std::string_view ScalarOpToString(ScalarOp op) {
  switch (op) {
    case ScalarOp::kColumnRef: return "col";
    case ScalarOp::kLiteral: return "lit";
    case ScalarOp::kParameter: return "param";
    case ScalarOp::kAdd: return "+";
    case ScalarOp::kSub: return "-";
    case ScalarOp::kMul: return "*";
    case ScalarOp::kDiv: return "/";
    case ScalarOp::kMod: return "%";
    case ScalarOp::kEq: return "=";
    case ScalarOp::kNe: return "<>";
    case ScalarOp::kLt: return "<";
    case ScalarOp::kLe: return "<=";
    case ScalarOp::kGt: return ">";
    case ScalarOp::kGe: return ">=";
    case ScalarOp::kAnd: return "and";
    case ScalarOp::kOr: return "or";
    case ScalarOp::kNot: return "not";
    case ScalarOp::kNeg: return "neg";
    case ScalarOp::kConcat: return "||";
    case ScalarOp::kGreatest: return "greatest";
    case ScalarOp::kLeast: return "least";
    case ScalarOp::kCase: return "case";
    case ScalarOp::kIsNull: return "isnull";
    case ScalarOp::kExists: return "exists";
    case ScalarOp::kNotExists: return "notexists";
  }
  return "?";
}

ScalarExprPtr ScalarExpr::Column(std::string name) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->op_ = ScalarOp::kColumnRef;
  e->column_name_ = std::move(name);
  return e;
}

ScalarExprPtr ScalarExpr::Literal(catalog::Value v) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->op_ = ScalarOp::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ScalarExprPtr ScalarExpr::Parameter(int index) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->op_ = ScalarOp::kParameter;
  e->parameter_index_ = index;
  return e;
}

ScalarExprPtr ScalarExpr::Unary(ScalarOp op, ScalarExprPtr operand) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->op_ = op;
  e->children_.push_back(std::move(operand));
  return e;
}

ScalarExprPtr ScalarExpr::Binary(ScalarOp op, ScalarExprPtr lhs,
                                 ScalarExprPtr rhs) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->op_ = op;
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ScalarExprPtr ScalarExpr::Nary(ScalarOp op,
                               std::vector<ScalarExprPtr> children) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->op_ = op;
  e->children_ = std::move(children);
  return e;
}

ScalarExprPtr ScalarExpr::Case(ScalarExprPtr cond, ScalarExprPtr then_v,
                               ScalarExprPtr else_v) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->op_ = ScalarOp::kCase;
  e->children_ = {std::move(cond), std::move(then_v), std::move(else_v)};
  return e;
}

ScalarExprPtr ScalarExpr::Exists(RaNodePtr subquery, bool negated) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->op_ = negated ? ScalarOp::kNotExists : ScalarOp::kExists;
  e->subquery_ = std::move(subquery);
  return e;
}

ScalarExprPtr ScalarExpr::MakeAnd(std::vector<ScalarExprPtr> terms) {
  if (terms.empty()) return Literal(catalog::Value::Bool(true));
  ScalarExprPtr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) {
    acc = Binary(ScalarOp::kAnd, acc, terms[i]);
  }
  return acc;
}

bool ScalarExpr::Equals(const ScalarExpr& other) const {
  if (op_ != other.op_) return false;
  switch (op_) {
    case ScalarOp::kColumnRef:
      return column_name_ == other.column_name_;
    case ScalarOp::kLiteral:
      return literal_ == other.literal_ &&
             literal_.type() == other.literal_.type();
    case ScalarOp::kParameter:
      return parameter_index_ == other.parameter_index_;
    case ScalarOp::kExists:
    case ScalarOp::kNotExists:
      return subquery_->Equals(*other.subquery_);
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

size_t ScalarExpr::Hash() const {
  size_t seed = static_cast<size_t>(op_);
  switch (op_) {
    case ScalarOp::kColumnRef:
      HashCombine(seed, column_name_);
      return seed;
    case ScalarOp::kLiteral:
      HashCombine(seed, catalog::ValueHash()(literal_));
      return seed;
    case ScalarOp::kParameter:
      HashCombine(seed, parameter_index_);
      return seed;
    case ScalarOp::kExists:
    case ScalarOp::kNotExists:
      HashCombine(seed, subquery_->Hash());
      return seed;
    default:
      break;
  }
  for (const auto& c : children_) HashCombine(seed, c->Hash());
  return seed;
}

std::string ScalarExpr::ToString() const {
  switch (op_) {
    case ScalarOp::kColumnRef:
      return "(col " + column_name_ + ")";
    case ScalarOp::kLiteral:
      return "(lit " + literal_.ToString() + ")";
    case ScalarOp::kParameter:
      return "(param " + std::to_string(parameter_index_) + ")";
    case ScalarOp::kExists:
      return "(exists " + subquery_->ToString() + ")";
    case ScalarOp::kNotExists:
      return "(notexists " + subquery_->ToString() + ")";
    default:
      break;
  }
  std::string out = "(";
  out += ScalarOpToString(op_);
  for (const auto& c : children_) {
    out += " ";
    out += c->ToString();
  }
  out += ")";
  return out;
}

bool IsComparisonOp(ScalarOp op) {
  switch (op) {
    case ScalarOp::kEq:
    case ScalarOp::kNe:
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
      return true;
    default:
      return false;
  }
}

ScalarOp MirrorComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kLt: return ScalarOp::kGt;
    case ScalarOp::kLe: return ScalarOp::kGe;
    case ScalarOp::kGt: return ScalarOp::kLt;
    case ScalarOp::kGe: return ScalarOp::kLe;
    case ScalarOp::kEq: return ScalarOp::kEq;
    case ScalarOp::kNe: return ScalarOp::kNe;
    default:
      EQSQL_CHECK_MSG(false, "MirrorComparison on non-comparison");
      return op;
  }
}

void CollectColumnRefs(const ScalarExprPtr& expr,
                       std::vector<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->op() == ScalarOp::kColumnRef) {
    out->push_back(expr->column_name());
    return;
  }
  for (const auto& c : expr->children()) CollectColumnRefs(c, out);
}

ScalarExprPtr RenameColumns(
    const ScalarExprPtr& expr,
    const std::function<std::string(const std::string&)>& fn) {
  if (expr == nullptr) return nullptr;
  if (expr->op() == ScalarOp::kColumnRef) {
    std::string renamed = fn(expr->column_name());
    if (renamed == expr->column_name()) return expr;
    return ScalarExpr::Column(std::move(renamed));
  }
  if (expr->children().empty()) return expr;
  std::vector<ScalarExprPtr> kids;
  kids.reserve(expr->children().size());
  bool changed = false;
  for (const auto& c : expr->children()) {
    ScalarExprPtr nc = RenameColumns(c, fn);
    changed |= (nc != c);
    kids.push_back(std::move(nc));
  }
  if (!changed) return expr;
  if (expr->op() == ScalarOp::kCase) {
    return ScalarExpr::Case(kids[0], kids[1], kids[2]);
  }
  return ScalarExpr::Nary(expr->op(), std::move(kids));
}

}  // namespace eqsql::ra
