
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/interpreter.cc" "src/interp/CMakeFiles/eqsql_interp.dir/interpreter.cc.o" "gcc" "src/interp/CMakeFiles/eqsql_interp.dir/interpreter.cc.o.d"
  "/root/repo/src/interp/value.cc" "src/interp/CMakeFiles/eqsql_interp.dir/value.cc.o" "gcc" "src/interp/CMakeFiles/eqsql_interp.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/eqsql_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eqsql_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eqsql_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/eqsql_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eqsql_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/eqsql_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/eqsql_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eqsql_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eqsql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
