#ifndef EQSQL_CFG_REGION_H_
#define EQSQL_CFG_REGION_H_

#include <memory>
#include <string>
#include <vector>

#include "frontend/ast.h"

namespace eqsql::cfg {

/// The four region kinds of paper Fig. 4. Regions compose: the whole
/// program (function body) is itself a region.
enum class RegionKind {
  kBasicBlock,   // maximal run of simple statements
  kSequential,   // R1 ; R2
  kConditional,  // cond ? R_true : R_false
  kLoop,         // cursor loop (for-each) or while loop
};

class Region;
using RegionPtr = std::shared_ptr<const Region>;

/// A node of the region hierarchy. Built from the structured AST, which
/// the paper explicitly allows ("Alternatively, it is possible to use an
/// abstract syntax tree to identify program regions", Sec. 3.1).
class Region {
 public:
  RegionKind kind() const { return kind_; }

  /// kBasicBlock: the simple statements.
  const std::vector<frontend::StmtPtr>& stmts() const { return stmts_; }
  /// kSequential: exactly two constituent regions (paper Fig. 4b).
  const RegionPtr& first() const { return first_; }
  const RegionPtr& second() const { return second_; }
  /// kConditional: condition + true/false regions (either may be null).
  const frontend::ExprPtr& cond() const { return cond_; }
  const RegionPtr& true_region() const { return first_; }
  const RegionPtr& false_region() const { return second_; }
  /// kLoop: cursor variable (empty for while), iterable/condition, body.
  const std::string& loop_var() const { return loop_var_; }
  const frontend::ExprPtr& loop_expr() const { return cond_; }
  const RegionPtr& body() const { return first_; }
  bool is_cursor_loop() const { return is_cursor_loop_; }

  /// The originating AST statement for conditional/loop regions.
  const frontend::Stmt* origin() const { return origin_; }

  /// All AST statements contained in this region, in program order.
  void CollectStmts(std::vector<frontend::StmtPtr>* out) const;

  std::string ToString(int indent = 0) const;

  // --- factories ---------------------------------------------------------
  static RegionPtr BasicBlock(std::vector<frontend::StmtPtr> stmts);
  static RegionPtr Sequential(RegionPtr first, RegionPtr second);
  static RegionPtr Conditional(frontend::ExprPtr cond, RegionPtr true_r,
                               RegionPtr false_r, const frontend::Stmt* origin);
  static RegionPtr Loop(std::string loop_var, frontend::ExprPtr loop_expr,
                        RegionPtr body, bool is_cursor,
                        const frontend::Stmt* origin);

 private:
  Region() = default;

  RegionKind kind_ = RegionKind::kBasicBlock;
  std::vector<frontend::StmtPtr> stmts_;
  RegionPtr first_;
  RegionPtr second_;
  frontend::ExprPtr cond_;
  std::string loop_var_;
  bool is_cursor_loop_ = false;
  const frontend::Stmt* origin_ = nullptr;
};

/// Builds the region hierarchy for a statement list. Consecutive simple
/// statements become basic blocks; a sequence of k regions folds into
/// left-nested binary sequential regions. Returns null for an empty list.
RegionPtr BuildRegionTree(const std::vector<frontend::StmtPtr>& stmts);

}  // namespace eqsql::cfg

#endif  // EQSQL_CFG_REGION_H_
