#include "net/connection.h"

#include <chrono>
#include <utility>

#include "common/strings.h"
#include "exec/scalar_ops.h"
#include "obs/trace.h"
#include "sql/dml.h"
#include "sql/parser.h"
#include "storage/shard_guard.h"

namespace eqsql::net {

namespace {

bool ContainsSubquery(const ra::ScalarExprPtr& expr) {
  if (expr == nullptr) return false;
  if (expr->op() == ra::ScalarOp::kExists ||
      expr->op() == ra::ScalarOp::kNotExists) {
    return true;
  }
  for (const ra::ScalarExprPtr& c : expr->children()) {
    if (ContainsSubquery(c)) return true;
  }
  return false;
}

/// DML expressions must be subquery-free: ExecuteDml evaluates them
/// while holding the target table's shard locks exclusively and with no
/// ReadGuard, so an EXISTS subquery would scan other tables with no
/// locks held (racing their writers) and could even fan its scan onto
/// the worker pool from inside the exclusive section. Statements that
/// need one take the kParseError fall-back to cost-only simulation,
/// like every other unsupported statement shape.
bool DmlContainsSubquery(const sql::DmlStatement& stmt) {
  if (ContainsSubquery(stmt.predicate)) return true;
  for (const ra::ScalarExprPtr& e : stmt.insert_values) {
    if (ContainsSubquery(e)) return true;
  }
  for (const auto& [col, expr] : stmt.assignments) {
    if (ContainsSubquery(expr)) return true;
  }
  return false;
}

}  // namespace

void Connection::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  executor_.set_metrics(metrics);
  if (metrics == nullptr) {
    m_queries_ = nullptr;
    m_round_trips_ = nullptr;
    m_rows_transferred_ = nullptr;
    m_bytes_transferred_ = nullptr;
    m_dml_statements_ = nullptr;
    m_rows_processed_ = nullptr;
    m_query_ns_ = nullptr;
    return;
  }
  m_queries_ = metrics->counter("net.queries");
  m_round_trips_ = metrics->counter("net.round_trips");
  m_rows_transferred_ = metrics->counter("net.rows_transferred");
  m_bytes_transferred_ = metrics->counter("net.bytes_transferred");
  m_dml_statements_ = metrics->counter("net.dml_statements");
  m_rows_processed_ = metrics->counter("exec.rows_processed");
  m_query_ns_ = metrics->histogram("net.query_ns");
}

Outcome Connection::Perform(Request req) {
  using Kind = Request::Kind;
  Kind kind = req.kind;
  if (kind == Kind::kStatement) {
    kind = IsDmlStatement(req.sql) ? Kind::kDml : Kind::kQuery;
  }
  switch (kind) {
    case Kind::kQuery: {
      Result<exec::ResultSet> rs = QuerySqlImpl(req.sql, req.params);
      if (!rs.ok()) return Outcome::FromError(rs.status());
      return Outcome::FromResultSet(std::move(*rs));
    }
    case Kind::kDml: {
      Result<int64_t> n = DmlImpl(req.sql, req.params);
      if (!n.ok()) return Outcome::FromError(n.status());
      return Outcome::FromRowCount(*n);
    }
    case Kind::kSimulateDml:
      SimulateUpdateImpl(req.sql);
      return Outcome::FromRowCount(0);
    case Kind::kExplainExtraction:
      return Outcome::FromError(Status::Unsupported(
          "EXPLAIN EXTRACTION needs a Session (plan cache + optimizer); "
          "a raw Connection cannot serve it"));
    case Kind::kStatement:
      break;  // classified above; unreachable
  }
  return Outcome::FromError(Status::Internal("unhandled request kind"));
}

Outcome Connection::PerformPlanned(const ra::RaNodePtr& plan,
                                   const std::vector<catalog::Value>& params) {
  Result<exec::ResultSet> rs = QueryPlannedImpl(plan, params);
  if (!rs.ok()) return Outcome::FromError(rs.status());
  return Outcome::FromResultSet(std::move(*rs));
}

// DEPRECATED(issue-5) shim layer: the four legacy entry points forward
// to the private impls so out-of-tree callers keep compiling; in-repo
// callers all use Perform/PerformPlanned or Session::Submit/Execute
// (enforced by a grep in scripts/verify.sh).
Result<exec::ResultSet> Connection::ExecuteQuery(
    const ra::RaNodePtr& plan, const std::vector<catalog::Value>& params) {
  return QueryPlannedImpl(plan, params);
}

Result<exec::ResultSet> Connection::ExecuteSql(
    std::string_view sql, const std::vector<catalog::Value>& params) {
  return QuerySqlImpl(sql, params);
}

Result<int64_t> Connection::ExecuteDml(
    std::string_view sql, const std::vector<catalog::Value>& params) {
  return DmlImpl(sql, params);
}

void Connection::SimulateUpdate(std::string_view sql) {
  SimulateUpdateImpl(sql);
}

Result<exec::ResultSet> Connection::QueryPlannedImpl(
    const ra::RaNodePtr& plan, const std::vector<catalog::Value>& params) {
  DebugCheckThreadOwner();
  obs::ScopedSpan span("execute");
  const auto wall0 = std::chrono::steady_clock::now();
  Result<exec::ResultSet> executed = [&] {
    // Readers scale: pin and shard-shared-lock exactly the tables this
    // plan scans. Writers to other tables — or to shards of these
    // tables only after we release — are not excluded globally anymore.
    storage::ReadGuard guard = storage::ReadGuard::Acquire(
        *db_, ra::CollectScannedTables(plan), metrics_);
    executor_.set_read_guard(&guard);
    Result<exec::ResultSet> rs = executor_.Execute(plan, params);
    executor_.set_read_guard(nullptr);
    return rs;
  }();
  EQSQL_ASSIGN_OR_RETURN(exec::ResultSet rs, std::move(executed));

  // Request bytes: plan text stands in for the SQL string, plus bound
  // parameter payload.
  size_t request_bytes = plan->ToString().size();
  for (const catalog::Value& p : params) request_bytes += p.WireSize();
  size_t result_bytes = rs.WireSize();

  ++stats_.queries_executed;
  stats_.rows_transferred += static_cast<int64_t>(rs.rows.size());
  stats_.bytes_transferred +=
      static_cast<int64_t>(request_bytes + result_bytes);

  if (trace_enabled_) {
    QueryTrace t;
    t.sql = pending_sql_.empty() ? plan->ToString() : pending_sql_;
    t.rows = static_cast<int64_t>(rs.rows.size());
    t.bytes = static_cast<int64_t>(request_bytes + result_bytes);
    trace_.push_back(std::move(t));
  }
  pending_sql_.clear();

  double elapsed = model_.query_overhead_ms +
                   model_.TransferMs(request_bytes + result_bytes) +
                   model_.ServerMs(executor_.last_rows_processed());
  bool pay_latency = true;
  if (prefetch_mode_ && prefetch_primed_) pay_latency = false;
  if (pay_latency) {
    elapsed += model_.round_trip_latency_ms;
    ++stats_.round_trips;
  }
  prefetch_primed_ = prefetch_mode_;
  stats_.simulated_ms += elapsed;
  PublishStats();

  if (m_queries_ != nullptr) {
    m_queries_->Increment();
    if (pay_latency) m_round_trips_->Increment();
    m_rows_transferred_->Add(static_cast<int64_t>(rs.rows.size()));
    m_bytes_transferred_->Add(
        static_cast<int64_t>(request_bytes + result_bytes));
    m_rows_processed_->Add(
        static_cast<int64_t>(executor_.last_rows_processed()));
    m_query_ns_->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - wall0)
                            .count());
  }
  if (span.active()) {
    span.Attr("rows", std::to_string(rs.rows.size()));
  }
  return rs;
}

Result<exec::ResultSet> Connection::QuerySqlImpl(
    std::string_view sql, const std::vector<catalog::Value>& params) {
  EQSQL_ASSIGN_OR_RETURN(ra::RaNodePtr plan, sql::ParseSql(sql));
  if (trace_enabled_) pending_sql_ = std::string(sql);
  return QueryPlannedImpl(plan, params);
}

void Connection::SimulateUpdateImpl(std::string_view sql) {
  DebugCheckThreadOwner();
  ++stats_.queries_executed;
  ++stats_.round_trips;
  stats_.bytes_transferred += static_cast<int64_t>(sql.size());
  stats_.simulated_ms += model_.round_trip_latency_ms +
                         model_.query_overhead_ms +
                         model_.TransferMs(sql.size());
  PublishStats();
  if (m_queries_ != nullptr) {
    m_queries_->Increment();
    m_round_trips_->Increment();
    m_dml_statements_->Increment();
    m_bytes_transferred_->Add(static_cast<int64_t>(sql.size()));
  }
}

Result<int64_t> Connection::DmlImpl(
    std::string_view sql, const std::vector<catalog::Value>& params) {
  DebugCheckThreadOwner();
  EQSQL_ASSIGN_OR_RETURN(sql::DmlStatement stmt, sql::ParseDml(sql));
  if (DmlContainsSubquery(stmt)) {
    return Status::ParseError(
        "subqueries in DML expressions are not supported: " +
        std::string(sql));
  }
  std::shared_ptr<storage::Table> table = db_->SnapshotTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table not found: " + stmt.table);
  }

  int64_t affected = 0;
  size_t examined = 0;
  exec::EvalContext ctx(&params);
  if (stmt.kind == sql::DmlStatement::Kind::kInsert) {
    if (stmt.insert_values.size() != table->schema().size()) {
      return Status::InvalidArgument(
          "INSERT arity does not match schema of table " + stmt.table);
    }
    catalog::Row row;
    row.reserve(stmt.insert_values.size());
    for (const ra::ScalarExprPtr& e : stmt.insert_values) {
      EQSQL_ASSIGN_OR_RETURN(catalog::Value v, executor_.Eval(e, &ctx));
      row.push_back(std::move(v));
    }
    EQSQL_RETURN_IF_ERROR(table->Insert(std::move(row)));
    affected = 1;
    examined = 1;
  } else {
    if (table->unique_key().has_value()) {
      const std::string key = AsciiToLower(*table->unique_key());
      for (const auto& [col, expr] : stmt.assignments) {
        if (AsciiToLower(col) == key) {
          return Status::InvalidArgument(
              "updating unique key column " + col + " of table " +
              stmt.table + " is not supported");
        }
      }
    }
    std::vector<size_t> targets;
    targets.reserve(stmt.assignments.size());
    for (const auto& [col, expr] : stmt.assignments) {
      EQSQL_ASSIGN_OR_RETURN(size_t idx, table->schema().ResolveColumn(col));
      targets.push_back(idx);
    }
    const catalog::Schema& schema = table->schema();
    EQSQL_RETURN_IF_ERROR(
        table->ForEachRowExclusive([&](catalog::Row* row) -> Status {
          ++examined;
          ctx.PushFrame(&schema, row);
          Status status = Status::OK();
          bool pass = true;
          if (stmt.predicate != nullptr) {
            Result<catalog::Value> v = executor_.Eval(stmt.predicate, &ctx);
            if (!v.ok()) {
              status = v.status();
            } else {
              pass = exec::IsTruthy(*v);
            }
          }
          if (status.ok() && pass) {
            // All assignments see the OLD row: `SET a = b, b = a` swaps.
            std::vector<catalog::Value> fresh;
            fresh.reserve(targets.size());
            for (const auto& [col, expr] : stmt.assignments) {
              Result<catalog::Value> v = executor_.Eval(expr, &ctx);
              if (!v.ok()) {
                status = v.status();
                break;
              }
              fresh.push_back(std::move(*v));
            }
            if (status.ok()) {
              for (size_t i = 0; i < targets.size(); ++i) {
                (*row)[targets[i]] = std::move(fresh[i]);
              }
              ++affected;
            }
          }
          ctx.PopFrame();
          return status;
        }));
  }

  ++stats_.queries_executed;
  ++stats_.round_trips;
  size_t request_bytes = sql.size();
  for (const catalog::Value& p : params) request_bytes += p.WireSize();
  stats_.bytes_transferred += static_cast<int64_t>(request_bytes);
  stats_.simulated_ms += model_.round_trip_latency_ms +
                         model_.query_overhead_ms +
                         model_.TransferMs(request_bytes) +
                         model_.ServerMs(examined);
  PublishStats();
  if (m_queries_ != nullptr) {
    m_queries_->Increment();
    m_round_trips_->Increment();
    m_dml_statements_->Increment();
    m_bytes_transferred_->Add(static_cast<int64_t>(request_bytes));
  }
  return affected;
}

Status Connection::CreateTempTable(const std::string& name,
                                   catalog::Schema schema,
                                   std::vector<catalog::Row> rows) {
  DebugCheckThreadOwner();
  size_t upload_bytes = 0;
  // Build the table fully offline: it is invisible until published, so
  // loading needs no locks and excludes nobody. PublishTable then
  // atomically replaces any existing table of the same name; in-flight
  // readers of the old one keep their pinned snapshot.
  auto table = std::make_shared<storage::Table>(name, std::move(schema),
                                                db_->shard_count());
  for (catalog::Row& row : rows) {
    upload_bytes += catalog::RowWireSize(row);
    EQSQL_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  db_->PublishTable(std::move(table));
  ++stats_.round_trips;
  stats_.bytes_transferred += static_cast<int64_t>(upload_bytes);
  stats_.simulated_ms += model_.param_table_overhead_ms +
                         model_.round_trip_latency_ms +
                         model_.TransferMs(upload_bytes);
  PublishStats();
  if (m_round_trips_ != nullptr) {
    m_round_trips_->Increment();
    m_bytes_transferred_->Add(static_cast<int64_t>(upload_bytes));
  }
  return Status::OK();
}

void Connection::DropTempTable(const std::string& name) {
  // Registry erase only; shared ownership keeps the table alive for any
  // in-flight reader that pinned it.
  db_->DropTable(name);
}

}  // namespace eqsql::net
