#include "interp/value.h"

#include "common/strings.h"

namespace eqsql::interp {

bool SetObject::Insert(RtValue value) {
  std::string key = value.DisplayString();
  for (const std::string& existing : keys) {
    if (existing == key) return false;
  }
  keys.push_back(std::move(key));
  items.push_back(std::move(value));
  return true;
}

namespace {

std::string ScalarDisplay(const catalog::Value& v) {
  if (v.is_string()) return v.AsString();  // no quotes in display form
  return v.ToString();
}

std::string JoinDisplay(const std::vector<RtValue>& items,
                        const char* open, const char* close) {
  std::vector<std::string> parts;
  parts.reserve(items.size());
  for (const RtValue& item : items) parts.push_back(item.DisplayString());
  return std::string(open) + StrJoin(parts, ", ") + close;
}

}  // namespace

std::string RtValue::DisplayString() const {
  if (is_scalar()) return ScalarDisplay(scalar());
  if (is_row()) {
    std::vector<std::string> parts;
    for (const catalog::Value& v : row()->row) {
      parts.push_back(ScalarDisplay(v));
    }
    return "(" + StrJoin(parts, ", ") + ")";
  }
  if (is_list()) return JoinDisplay(list()->items, "[", "]");
  if (is_set()) return JoinDisplay(set()->items, "{", "}");
  if (is_tuple()) return JoinDisplay(tuple()->items, "(", ")");
  // Result set. Single-column results display like lists of scalars so
  // they compare equal to the imperative lists they replace.
  std::vector<std::string> parts;
  for (const catalog::Row& r : result_set()->rows) {
    if (r.size() == 1) {
      parts.push_back(ScalarDisplay(r[0]));
      continue;
    }
    std::vector<std::string> cols;
    for (const catalog::Value& v : r) cols.push_back(ScalarDisplay(v));
    parts.push_back("(" + StrJoin(cols, ", ") + ")");
  }
  return "[" + StrJoin(parts, ", ") + "]";
}

}  // namespace eqsql::interp
