#include "workloads/benchmark_apps.h"

#include "common/hash.h"

namespace eqsql::workloads {

using catalog::DataType;
using catalog::Schema;
using catalog::Value;

namespace {

/// Deterministic generator, independent of wilos_samples' stream.
uint64_t Mix(uint64_t x) { return SplitMix64(x); }

}  // namespace

std::string MatosoProgram() {
  return R"(
func findMaxScore() {
  boards = executeQuery("SELECT * FROM board AS b WHERE b.rnd_id = 1");
  scoreMax = 0;
  for (t : boards) {
    p1 = t.getP1();
    p2 = t.getP2();
    p3 = t.getP3();
    p4 = t.getP4();
    score = max(p1, p2);
    score = max(score, p3);
    score = max(score, p4);
    if (score > scoreMax) {
      scoreMax = score;
    }
  }
  return scoreMax;
}
)";
}

Status SetupMatosoDatabase(storage::Database* db, int boards, int rounds) {
  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * board,
      db->CreateTable("board", Schema({{"id", DataType::kInt64},
                                       {"rnd_id", DataType::kInt64},
                                       {"p1", DataType::kInt64},
                                       {"p2", DataType::kInt64},
                                       {"p3", DataType::kInt64},
                                       {"p4", DataType::kInt64}})));
  for (int64_t i = 0; i < boards; ++i) {
    EQSQL_RETURN_IF_ERROR(board->Insert(
        {Value::Int(i), Value::Int(1 + static_cast<int64_t>(Mix(i) % rounds)),
         Value::Int(static_cast<int64_t>(Mix(i * 4 + 0) % 1000)),
         Value::Int(static_cast<int64_t>(Mix(i * 4 + 1) % 1000)),
         Value::Int(static_cast<int64_t>(Mix(i * 4 + 2) % 1000)),
         Value::Int(static_cast<int64_t>(Mix(i * 4 + 3) % 1000))}));
  }
  return board->DeclareUniqueKey("id");
}

std::string JobPortalProgram() {
  return R"(
func jobReport() {
  rs = executeQuery("SELECT * FROM applicants AS a");
  for (t : rs) {
    id = t.id;
    phone = scalar(executeQuery(
        "SELECT d.phone AS phone FROM details AS d WHERE d.aid = ?", id));
    fb1 = scalar(executeQuery(
        "SELECT f.verdict AS verdict FROM feedback1 AS f WHERE f.aid = ?",
        id));
    fb2 = scalar(executeQuery(
        "SELECT f.verdict AS verdict FROM feedback2 AS f WHERE f.aid = ?",
        id));
    edu = null;
    if (t.mode == "online") {
      edu = scalar(executeQuery(
          "SELECT e.degree AS degree FROM education AS e WHERE e.aid = ?",
          id));
    }
    print(tuple(id, phone, fb1, fb2, edu));
  }
}
)";
}

Status SetupJobPortalDatabase(storage::Database* db, int applicants) {
  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * table,
      db->CreateTable("applicants", Schema({{"id", DataType::kInt64},
                                            {"name", DataType::kString},
                                            {"mode", DataType::kString}})));
  for (int64_t i = 0; i < applicants; ++i) {
    EQSQL_RETURN_IF_ERROR(table->Insert(
        {Value::Int(i), Value::String("applicant" + std::to_string(i)),
         Value::String(Mix(i) % 2 == 0 ? "online" : "paper")}));
  }
  EQSQL_RETURN_IF_ERROR(table->DeclareUniqueKey("id"));

  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * details,
      db->CreateTable("details", Schema({{"id", DataType::kInt64},
                                         {"aid", DataType::kInt64},
                                         {"phone", DataType::kString}})));
  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * feedback1,
      db->CreateTable("feedback1", Schema({{"id", DataType::kInt64},
                                           {"aid", DataType::kInt64},
                                           {"verdict", DataType::kString}})));
  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * feedback2,
      db->CreateTable("feedback2", Schema({{"id", DataType::kInt64},
                                           {"aid", DataType::kInt64},
                                           {"verdict", DataType::kString}})));
  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * education,
      db->CreateTable("education", Schema({{"id", DataType::kInt64},
                                           {"aid", DataType::kInt64},
                                           {"degree", DataType::kString}})));
  for (int64_t i = 0; i < applicants; ++i) {
    EQSQL_RETURN_IF_ERROR(details->Insert(
        {Value::Int(i), Value::Int(i),
         Value::String("+1-555-" + std::to_string(1000 + i % 9000))}));
    EQSQL_RETURN_IF_ERROR(feedback1->Insert(
        {Value::Int(i), Value::Int(i),
         Value::String(Mix(i * 3) % 2 == 0 ? "accept" : "reject")}));
    EQSQL_RETURN_IF_ERROR(feedback2->Insert(
        {Value::Int(i), Value::Int(i),
         Value::String(Mix(i * 5) % 2 == 0 ? "strong" : "weak")}));
    if (Mix(i) % 2 == 0) {  // online applicants only
      EQSQL_RETURN_IF_ERROR(education->Insert(
          {Value::Int(i), Value::Int(i),
           Value::String(Mix(i * 7) % 2 == 0 ? "MSc" : "BSc")}));
    }
  }
  // The dimension tables hold one row per applicant: key them on `aid`,
  // the column every per-applicant lookup probes (models the index the
  // paper's MySQL schema would have).
  EQSQL_RETURN_IF_ERROR(details->DeclareUniqueKey("aid"));
  EQSQL_RETURN_IF_ERROR(feedback1->DeclareUniqueKey("aid"));
  EQSQL_RETURN_IF_ERROR(feedback2->DeclareUniqueKey("aid"));
  EQSQL_RETURN_IF_ERROR(education->DeclareUniqueKey("aid"));
  return Status::OK();
}

std::string SelectionProgram() {
  return R"(
func unfinished() {
  result = list();
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    if (p.finished == 0) {
      result.append(pair(p.id, p.name));
    }
  }
  return result;
}
)";
}

Status SetupSelectionDatabase(storage::Database* db, int rows,
                              int selectivity_pct) {
  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * project,
      db->CreateTable("project", Schema({{"id", DataType::kInt64},
                                         {"name", DataType::kString},
                                         {"finished", DataType::kInt64},
                                         {"descr", DataType::kString}})));
  for (int64_t i = 0; i < rows; ++i) {
    bool selected = (Mix(i) % 100) < static_cast<uint64_t>(selectivity_pct);
    EQSQL_RETURN_IF_ERROR(project->Insert(
        {Value::Int(i), Value::String("project" + std::to_string(i)),
         Value::Int(selected ? 0 : 1),
         Value::String("long project description text #" +
                       std::to_string(i))}));
  }
  return project->DeclareUniqueKey("id");
}

std::string JoinProgram() {
  return R"(
func userRoles() {
  result = list();
  users = executeQuery("SELECT * FROM wilosuser AS u");
  roles = executeQuery("SELECT * FROM role AS r");
  for (u : users) {
    for (r : roles) {
      if (u.role_id == r.id) {
        result.append(pair(u.login, r.name));
      }
    }
  }
  return result;
}
)";
}

Status SetupJoinDatabase(storage::Database* db, int users) {
  int64_t roles = users >= 40 ? users / 40 : 1;  // paper: ratio 40:1
  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * role,
      db->CreateTable("role", Schema({{"id", DataType::kInt64},
                                      {"name", DataType::kString}})));
  for (int64_t i = 0; i < roles; ++i) {
    EQSQL_RETURN_IF_ERROR(role->Insert(
        {Value::Int(i), Value::String("role" + std::to_string(i))}));
  }
  EQSQL_RETURN_IF_ERROR(role->DeclareUniqueKey("id"));

  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * user,
      db->CreateTable("wilosuser", Schema({{"id", DataType::kInt64},
                                           {"login", DataType::kString},
                                           {"role_id", DataType::kInt64}})));
  for (int64_t i = 0; i < users; ++i) {
    EQSQL_RETURN_IF_ERROR(user->Insert(
        {Value::Int(i), Value::String("user" + std::to_string(i)),
         Value::Int(static_cast<int64_t>(Mix(i) % roles))}));
  }
  return user->DeclareUniqueKey("id");
}

}  // namespace eqsql::workloads
