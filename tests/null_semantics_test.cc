// NULL and empty-table edge cases, end to end: imperative program →
// optimizer → both interpreters. SQL three-valued logic must agree
// with the imperative side everywhere the rules fire — predicates over
// NULL never match, extremal folds skip NULLs, empty inputs fall back
// to the fold's init (T6), and non-identity inits compose into group
// results.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/optimizer.h"
#include "frontend/parser.h"
#include "interp/interpreter.h"
#include "net/connection.h"

namespace eqsql::core {
namespace {

using catalog::DataType;
using catalog::Schema;
using catalog::Value;

class NullSemanticsTest : public ::testing::Test {
 protected:
  /// Runs `source` (function f) against the members' database twice —
  /// original and optimized — and checks observational equivalence.
  /// Returns the shared DisplayString of the result.
  std::string CheckEquivalent(const std::string& source,
                              bool expect_extracted = true) {
    auto program = frontend::ParseProgram(source);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    if (!program.ok()) return "";

    OptimizeOptions options;
    options.transform.table_keys = {{"t", "id"}, {"d", "id"}};
    EqSqlOptimizer optimizer(options);
    auto result = optimizer.Optimize(*program, "f");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return "";
    EXPECT_EQ(result->any_extracted(), expect_extracted)
        << result->program.ToString();

    net::Connection c1(&db_), c2(&db_);
    interp::Interpreter i1(&*program, &c1);
    interp::Interpreter i2(&result->program, &c2);
    auto r1 = i1.Run("f");
    auto r2 = i2.Run("f");
    EXPECT_TRUE(r1.ok()) << r1.status().ToString();
    EXPECT_TRUE(r2.ok()) << r2.status().ToString() << "\n"
                         << result->program.ToString();
    if (!r1.ok() || !r2.ok()) return "";
    EXPECT_EQ(r1->DisplayString(), r2->DisplayString())
        << result->program.ToString();
    EXPECT_EQ(i1.printed(), i2.printed());
    EXPECT_LE(c2.stats().rows_transferred,
              std::max<int64_t>(c1.stats().rows_transferred, 1));
    return r1->DisplayString();
  }

  /// Table t(id, v nullable, name); rows given as (id, v-or-null, name).
  void MakeT(const std::vector<std::tuple<int64_t, const char*,
                                          const char*>>& rows) {
    auto table = *db_.CreateTable("t", Schema({{"id", DataType::kInt64},
                                               {"v", DataType::kInt64},
                                               {"name", DataType::kString}}));
    for (const auto& [id, v, name] : rows) {
      ASSERT_TRUE(table
                      ->Insert({Value::Int(id),
                                v == nullptr
                                    ? Value::Null()
                                    : Value::Int(std::atoll(v)),
                                Value::String(name)})
                      .ok());
    }
    ASSERT_TRUE(table->DeclareUniqueKey("id").ok());
  }

  storage::Database db_;
};

constexpr const char* kFilter =
    "func f() {\n"
    "  out = list();\n"
    "  rows = executeQuery(\"SELECT * FROM t AS r\");\n"
    "  for (r : rows) {\n"
    "    if (r.v > 10) { out.append(r.name); }\n"
    "  }\n"
    "  return out;\n"
    "}\n";

TEST_F(NullSemanticsTest, NullNeverMatchesComparison) {
  // NULL > 10 is unknown on both sides: the row is skipped, not kept.
  MakeT({{0, "50", "keep"}, {1, nullptr, "nullrow"}, {2, "3", "small"}});
  EXPECT_EQ(CheckEquivalent(kFilter), "[keep]");
}

TEST_F(NullSemanticsTest, NullNeverMatchesNegatedComparison) {
  // `!=` does not match NULL either (3VL, not set complement).
  MakeT({{0, "50", "a"}, {1, nullptr, "nullrow"}});
  std::string src = kFilter;
  src.replace(src.find("r.v > 10"), 8, "r.v != 50");
  EXPECT_EQ(CheckEquivalent(src), "[]");
}

TEST_F(NullSemanticsTest, MaxGuardSkipsNulls) {
  // The imperative guard `r.v > m` is unknown for NULL and never
  // fires; SQL MAX skips NULLs. Both sides must agree.
  MakeT({{0, nullptr, "a"}, {1, "7", "b"}, {2, nullptr, "c"}});
  constexpr const char* kMax =
      "func f() {\n"
      "  m = 0;\n"
      "  rows = executeQuery(\"SELECT * FROM t AS r\");\n"
      "  for (r : rows) {\n"
      "    if (r.v > m) { m = r.v; }\n"
      "  }\n"
      "  return m;\n"
      "}\n";
  EXPECT_EQ(CheckEquivalent(kMax), "7");
}

TEST_F(NullSemanticsTest, CountOverEmptyTableIsZero) {
  MakeT({});
  constexpr const char* kCount =
      "func f() {\n"
      "  n = 0;\n"
      "  rows = executeQuery(\"SELECT * FROM t AS r\");\n"
      "  for (r : rows) {\n"
      "    n = n + 1;\n"
      "  }\n"
      "  return n;\n"
      "}\n";
  EXPECT_EQ(CheckEquivalent(kCount), "0");
}

TEST_F(NullSemanticsTest, SumOverEmptyTableKeepsNonIdentityInit) {
  // T6: SUM of zero rows is NULL in SQL; the rewrite must fall back to
  // the imperative init 41, not NULL and not 0.
  MakeT({});
  constexpr const char* kSum =
      "func f() {\n"
      "  s = 41;\n"
      "  rows = executeQuery(\"SELECT * FROM t AS r\");\n"
      "  for (r : rows) {\n"
      "    s = s + r.id;\n"
      "  }\n"
      "  return s;\n"
      "}\n";
  EXPECT_EQ(CheckEquivalent(kSum), "41");
}

TEST_F(NullSemanticsTest, MaxInitDominatesAllRows) {
  // T6 with MAX: every value is below the init, so the init wins.
  MakeT({{0, "-9", "a"}, {1, "-4", "b"}});
  constexpr const char* kMax =
      "func f() {\n"
      "  m = 100;\n"
      "  rows = executeQuery(\"SELECT * FROM t AS r\");\n"
      "  for (r : rows) {\n"
      "    if (r.v > m) { m = r.v; }\n"
      "  }\n"
      "  return m;\n"
      "}\n";
  EXPECT_EQ(CheckEquivalent(kMax), "100");
}

TEST_F(NullSemanticsTest, ExistsOverEmptyTableIsFalse) {
  MakeT({});
  constexpr const char* kExists =
      "func f() {\n"
      "  found = false;\n"
      "  rows = executeQuery(\"SELECT * FROM t AS r\");\n"
      "  for (r : rows) {\n"
      "    if (r.v > 10) { found = true; }\n"
      "  }\n"
      "  return found;\n"
      "}\n";
  EXPECT_EQ(CheckEquivalent(kExists), "FALSE");
}

TEST_F(NullSemanticsTest, GroupByCountNonIdentityInitAllGroups) {
  // The init (3) adds to every group — including groups whose inner
  // loop matched nothing — not only NULL-padded empty groups.
  auto dim = *db_.CreateTable("d", Schema({{"id", DataType::kInt64},
                                           {"tag", DataType::kString}}));
  ASSERT_TRUE(dim->Insert({Value::Int(0), Value::String("g0")}).ok());
  ASSERT_TRUE(dim->Insert({Value::Int(1), Value::String("g1")}).ok());
  ASSERT_TRUE(dim->DeclareUniqueKey("id").ok());
  auto fact = *db_.CreateTable("t", Schema({{"id", DataType::kInt64},
                                            {"fk", DataType::kInt64},
                                            {"v", DataType::kInt64}}));
  ASSERT_TRUE(
      fact->Insert({Value::Int(0), Value::Int(0), Value::Int(99)}).ok());
  ASSERT_TRUE(fact->DeclareUniqueKey("id").ok());
  constexpr const char* kGroupCount =
      "func f() {\n"
      "  out = list();\n"
      "  ds = executeQuery(\"SELECT * FROM d AS g\");\n"
      "  for (g : ds) {\n"
      "    n = 3;\n"
      "    ms = executeQuery(\"SELECT * FROM t AS m WHERE m.fk = ?\", g.id);\n"
      "    for (m : ms) {\n"
      "      n = n + 1;\n"
      "    }\n"
      "    out.append(pair(g.tag, n));\n"
      "  }\n"
      "  return out;\n"
      "}\n";
  // g0 has one matching row (3 + 1), g1 none (3 + 0).
  EXPECT_EQ(CheckEquivalent(kGroupCount), "[(g0, 4), (g1, 3)]");
}

}  // namespace
}  // namespace eqsql::core
