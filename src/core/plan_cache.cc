#include "core/plan_cache.h"

#include <cctype>
#include <utility>

#include "common/hash.h"
#include "common/strings.h"
#include "core/alternative_selector.h"
#include "frontend/parser.h"
#include "sql/parser.h"

namespace eqsql::core {

namespace {

/// Stable fingerprint of the option fields that change pipeline output.
/// std::map / std::set iterate in sorted order, so the fingerprint is
/// independent of insertion order.
uint64_t OptionsFingerprint(const OptimizeOptions& options) {
  uint64_t h = Fnv1a("opts:");
  for (const auto& [table, key] : options.transform.table_keys) {
    h ^= SplitMix64(Fnv1a(table) * 3 + Fnv1a(key));
  }
  for (const std::string& rule : options.transform.disabled_rules) {
    h ^= SplitMix64(Fnv1a(rule) * 5);
  }
  h = SplitMix64(h + (options.transform.ignore_ordering ? 1 : 0));
  h = SplitMix64(h + static_cast<uint64_t>(options.dialect) * 7);
  return h;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `needle` occurs in `hay` as a whole identifier token, not
/// as a substring of a longer identifier. Program sources refer to
/// tables by identifier, so a short table name like "t" must not match
/// every source containing the letter t.
bool ContainsIdentToken(const std::string& hay, const std::string& needle) {
  if (needle.empty()) return false;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + 1)) {
    bool left_ok = pos == 0 || !IsIdentChar(hay[pos - 1]);
    bool right_ok = pos + needle.size() == hay.size() ||
                    !IsIdentChar(hay[pos + needle.size()]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

}  // namespace

PlanCache::PlanCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t PlanCache::DigestSql(std::string_view sql) {
  return SplitMix64(Fnv1a(sql) ^ Fnv1a("sql-plan"));
}

uint64_t PlanCache::DigestProgram(std::string_view source,
                                  std::string_view function,
                                  const OptimizeOptions& options) {
  uint64_t h = Fnv1a(source);
  h = SplitMix64(h ^ (Fnv1a(function) * 9));
  h = SplitMix64(h ^ OptionsFingerprint(options) ^ Fnv1a("extract-plan"));
  return h;
}

uint64_t PlanCache::Salted(uint64_t digest) const {
  return key_salt_ == 0 ? digest : SplitMix64(digest ^ key_salt_);
}

void PlanCache::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_hits_ = nullptr;
    m_misses_ = nullptr;
    m_insertions_ = nullptr;
    m_evictions_ = nullptr;
    m_invalidations_ = nullptr;
    return;
  }
  m_hits_ = metrics->counter("plan_cache.hits");
  m_misses_ = metrics->counter("plan_cache.misses");
  m_insertions_ = metrics->counter("plan_cache.insertions");
  m_evictions_ = metrics->counter("plan_cache.evictions");
  m_invalidations_ = metrics->counter("plan_cache.invalidations");
}

bool PlanCache::Lookup(uint64_t key, Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (m_misses_ != nullptr) m_misses_->Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  ++stats_.hits;
  if (m_hits_ != nullptr) m_hits_->Increment();
  *out = *it->second;
  return true;
}

void PlanCache::Insert(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(entry.key);
  if (it != index_.end()) {
    // A concurrent miss on the same key computed the same (deterministic)
    // payload first; refresh recency and keep one line.
    lru_.splice(lru_.begin(), lru_, it->second);
    *it->second = std::move(entry);
    return;
  }
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
  ++stats_.insertions;
  if (m_insertions_ != nullptr) m_insertions_->Increment();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    if (m_evictions_ != nullptr) m_evictions_->Increment();
  }
}

Result<ra::RaNodePtr> PlanCache::GetOrParseSql(std::string_view sql) {
  uint64_t key = Salted(DigestSql(sql));
  Entry entry;
  if (Lookup(key, &entry) && entry.plan != nullptr) return entry.plan;
  // Miss: parse outside the lock so concurrent misses do not serialize.
  EQSQL_ASSIGN_OR_RETURN(ra::RaNodePtr plan, sql::ParseSql(sql));
  entry.key = key;
  entry.plan = plan;
  entry.optimized = nullptr;
  entry.tables = ra::CollectScannedTables(plan);
  for (std::string& t : entry.tables) t = AsciiToLower(t);
  Insert(std::move(entry));
  return plan;
}

Result<std::shared_ptr<const OptimizeResult>> PlanCache::GetOrOptimize(
    const std::string& source, const std::string& function,
    const OptimizeOptions& options) {
  uint64_t key = Salted(DigestProgram(source, function, options));
  Entry entry;
  if (Lookup(key, &entry) && entry.optimized != nullptr) {
    return entry.optimized;
  }
  EQSQL_ASSIGN_OR_RETURN(frontend::Program program,
                         frontend::ParseProgram(source));
  EqSqlOptimizer optimizer(options);
  EQSQL_ASSIGN_OR_RETURN(OptimizeResult result,
                         optimizer.Optimize(program, function));
  auto shared = std::make_shared<const OptimizeResult>(std::move(result));
  entry.key = key;
  entry.plan = nullptr;
  entry.optimized = shared;
  entry.source_lower = AsciiToLower(source);
  Insert(std::move(entry));
  return shared;
}

Result<std::shared_ptr<const ExtractionPlan>> PlanCache::GetOrSelect(
    const std::string& source, const std::string& function,
    const OptimizeOptions& options, uint64_t stats_epoch,
    const SelectFn& compute) {
  uint64_t key = Salted(
      SplitMix64(DigestProgram(source, function, options) ^
                 Fnv1a("select-plan")));
  Entry entry;
  if (Lookup(key, &entry) && entry.selected != nullptr) {
    if (entry.stats_epoch == stats_epoch) return entry.selected;
    // The database's statistics changed under the cached pricing; drop
    // the line so the re-selection below can flip the winner.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
      ++stats_.invalidations;
      if (m_invalidations_ != nullptr) m_invalidations_->Increment();
    }
  }
  EQSQL_ASSIGN_OR_RETURN(std::shared_ptr<const ExtractionPlan> plan,
                         compute());
  entry = Entry();
  entry.key = key;
  entry.selected = plan;
  entry.stats_epoch = stats_epoch;
  entry.source_lower = AsciiToLower(source);
  Insert(std::move(entry));
  return plan;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = PlanCacheStats();
}

void PlanCache::InvalidateTable(const std::string& name) {
  const std::string needle = AsciiToLower(name);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    bool stale = false;
    for (const std::string& t : it->tables) {
      if (t == needle) {
        stale = true;
        break;
      }
    }
    if (!stale && !it->source_lower.empty() &&
        ContainsIdentToken(it->source_lower, needle)) {
      stale = true;
    }
    if (stale) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
      if (m_invalidations_ != nullptr) m_invalidations_->Increment();
    } else {
      ++it;
    }
  }
}

}  // namespace eqsql::core
