// Reproduces the paper's Figure 9 (Experiment 6, Join): client-side
// nested-loop combination of WilosUser and Role (size ratio 40:1,
// Wilos sample #30) versus the extracted join query.
//
// Expected shape: the transformed code is much faster (the engine picks
// a hash join and ships one result instead of two tables), but the data
// transferred is *slightly more* than original at equal row counts,
// because role attributes are replicated per user row (paper: "the
// amount of data transferred is marginally more in the transformed
// code").
//
// Indexed phase (PR 8): the same engine re-runs a *selective* point
// probe against a large 8-way-sharded table twice — first as the
// partition-parallel full scan, then through a secondary hash index
// built by CREATE INDEX — and gates the index path at >= 2x scan wall
// time. The simulated cost model charges both paths identically (cost
// parity is the invariance suite's contract); wall clock is where the
// plan choice is allowed to show, and this phase proves it does.
//
// With --json FILE, writes the per-size measurements and the indexed
// phase (including the pass/fail gate) as a machine-readable artifact
// (BENCH_fig9.json in CI).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/perf_util.h"
#include "catalog/value.h"
#include "core/optimizer.h"
#include "exec/worker_pool.h"
#include "frontend/parser.h"
#include "net/api.h"
#include "net/connection.h"
#include "storage/database.h"
#include "workloads/benchmark_apps.h"

namespace {

struct Measurement {
  int users;
  eqsql::bench::PerfResult original;
  eqsql::bench::PerfResult rewritten;
};

struct IndexPhase {
  int rows = 0;
  int iters = 0;
  long long probe_rows = 0;      // rows each probe returns (selectivity)
  double scan_wall_ms = 0;       // parallel full scan, total over iters
  double index_wall_ms = 0;      // secondary-index probe, total
  double speedup = 0;
  bool pass = false;             // speedup >= 2x gate
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Selective probe, indexed vs parallel full scan, on one engine and
/// one dataset: 8-way sharded table, worker pool on, threshold 0 (the
/// scan arm really is the partition-parallel operator), then CREATE
/// INDEX and the identical statement again through the index-scan path.
IndexPhase RunIndexedPhase() {
  using eqsql::catalog::DataType;
  using eqsql::catalog::Value;

  IndexPhase phase;
  phase.rows = 200000;
  phase.iters = 30;

  eqsql::storage::DatabaseOptions dbo;
  dbo.shard_count = 8;
  eqsql::storage::Database db(dbo);
  auto table = eqsql::bench::ValueOrDie(
      db.CreateTable("events", eqsql::catalog::Schema(
                                   {{"id", DataType::kInt64},
                                    {"v", DataType::kInt64}})),
      "create events");
  // 16 rows per distinct v: selective enough that the probe ships a
  // handful of rows while the scan arm still walks all 200k.
  for (int64_t i = 0; i < phase.rows; ++i) {
    eqsql::bench::CheckOk(
        table->Insert({Value::Int(i), Value::Int(i % (phase.rows / 16))}),
        "insert events");
  }

  eqsql::exec::WorkerPool pool(4);
  eqsql::net::Connection conn(&db);
  conn.set_worker_pool(&pool);
  conn.set_parallel_threshold(0);

  auto probe = [&conn]() {
    return conn.Perform(eqsql::net::Request::Query(
        "SELECT * FROM events AS e WHERE e.v = ?", {Value::Int(4242)}));
  };

  eqsql::net::Outcome warm = probe();  // warm both arms outside the clock
  eqsql::bench::CheckOk(warm.status, "probe");
  phase.probe_rows = static_cast<long long>(warm.rows.rows.size());

  const double t0 = NowMs();
  for (int i = 0; i < phase.iters; ++i) {
    eqsql::net::Outcome out = probe();
    eqsql::bench::CheckOk(out.status, "scan probe");
    if (static_cast<long long>(out.rows.rows.size()) != phase.probe_rows) {
      EQSQL_LOG(Error, "scan probe row count drifted");
      std::exit(1);
    }
  }
  phase.scan_wall_ms = NowMs() - t0;

  eqsql::net::Outcome ddl = conn.Perform(eqsql::net::Request::Statement(
      "CREATE INDEX events_v ON events (v)"));
  eqsql::bench::CheckOk(ddl.status, "create index");

  eqsql::net::Outcome warm_idx = probe();
  eqsql::bench::CheckOk(warm_idx.status, "indexed probe");
  if (static_cast<long long>(warm_idx.rows.rows.size()) != phase.probe_rows) {
    EQSQL_LOG(Error, "indexed probe changed the answer");
    std::exit(1);
  }
  const double t1 = NowMs();
  for (int i = 0; i < phase.iters; ++i) {
    eqsql::net::Outcome out = probe();
    eqsql::bench::CheckOk(out.status, "indexed probe");
    if (static_cast<long long>(out.rows.rows.size()) != phase.probe_rows) {
      EQSQL_LOG(Error, "indexed probe row count drifted");
      std::exit(1);
    }
  }
  phase.index_wall_ms = NowMs() - t1;

  phase.speedup = phase.index_wall_ms > 0
                      ? phase.scan_wall_ms / phase.index_wall_ms
                      : 0;
  phase.pass = phase.speedup >= 2.0;
  return phase;
}

bool WriteJson(const char* path, const std::vector<Measurement>& runs,
               const std::string& sql, const IndexPhase& phase) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"bench\":\"fig9_join\",\"runs\":[");
  for (size_t i = 0; i < runs.size(); ++i) {
    const Measurement& m = runs[i];
    std::fprintf(f,
                 "%s{\"users\":%d,\"orig_ms\":%.3f,\"eqsql_ms\":%.3f,"
                 "\"orig_bytes\":%lld,\"eqsql_bytes\":%lld,\"speedup\":%.3f}",
                 i == 0 ? "" : ",", m.users, m.original.ms, m.rewritten.ms,
                 static_cast<long long>(m.original.bytes),
                 static_cast<long long>(m.rewritten.bytes),
                 m.original.ms / m.rewritten.ms);
  }
  // The SQL is emitted by our own renderer: no quotes or control
  // characters, so direct embedding is safe.
  std::fprintf(f,
               "],\"extracted_sql\":\"%s\",\"provenance\":%s,"
               "\"indexed_phase\":{\"rows\":%d,\"iters\":%d,"
               "\"probe_rows\":%lld,\"scan_wall_ms\":%.3f,"
               "\"index_wall_ms\":%.3f,\"speedup\":%.3f,\"pass\":%s}}\n",
               sql.c_str(),
               eqsql::bench::ProvenanceJson("row", 8).c_str(),
               phase.rows, phase.iters, phase.probe_rows,
               phase.scan_wall_ms, phase.index_wall_ms, phase.speedup,
               phase.pass ? "true" : "false");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  eqsql::bench::PrintHeader(
      "Figure 9: Join (WilosUser:Role = 40:1), original vs transformed");
  std::printf("%10s %14s %14s %14s %14s %8s\n", "users", "orig ms",
              "eqsql ms", "orig KB", "eqsql KB", "speedup");

  auto program = eqsql::bench::ValueOrDie(
      eqsql::frontend::ParseProgram(eqsql::workloads::JoinProgram()),
      "parse");
  eqsql::core::OptimizeOptions options;
  options.transform.table_keys = {{"wilosuser", "id"}, {"role", "id"}};
  eqsql::core::EqSqlOptimizer optimizer(options);
  auto optimized = eqsql::bench::ValueOrDie(
      optimizer.Optimize(program, "userRoles"), "optimize");
  if (!optimized.any_extracted()) {
    EQSQL_LOG(Error, "join did not extract");
    return 1;
  }

  std::vector<Measurement> runs;
  for (int users : {1000, 4000, 16000}) {
    eqsql::storage::Database db;
    eqsql::bench::CheckOk(eqsql::workloads::SetupJoinDatabase(&db, users),
                          "setup");
    auto original = eqsql::bench::RunInterpreted(program, "userRoles", &db);
    auto rewritten =
        eqsql::bench::RunInterpreted(optimized.program, "userRoles", &db);
    if (original.result != rewritten.result) {
      EQSQL_LOG(Error, "MISMATCH at %d users", users);
      return 1;
    }
    std::printf("%10d %14.3f %14.3f %14.1f %14.1f %7.2fx\n", users,
                original.ms, rewritten.ms, original.bytes / 1024.0,
                rewritten.bytes / 1024.0, original.ms / rewritten.ms);
    runs.push_back({users, std::move(original), std::move(rewritten)});
  }
  std::string sql = optimized.outcomes[0].sql.empty()
                        ? "(none)"
                        : optimized.outcomes[0].sql[0];
  std::printf("\nExtracted SQL: %s\n", sql.c_str());

  std::printf("\nIndexed phase: selective probe, index scan vs parallel "
              "full scan (8 shards)\n");
  IndexPhase phase = RunIndexedPhase();
  std::printf("%10s %8s %12s %14s %14s %8s %6s\n", "rows", "iters",
              "probe rows", "scan wall ms", "index wall ms", "speedup",
              "gate");
  std::printf("%10d %8d %12lld %14.3f %14.3f %7.2fx %6s\n", phase.rows,
              phase.iters, phase.probe_rows, phase.scan_wall_ms,
              phase.index_wall_ms, phase.speedup,
              phase.pass ? "PASS" : "FAIL");

  if (json_path != nullptr) {
    if (!WriteJson(json_path, runs, sql, phase)) {
      EQSQL_LOG(Error, "cannot write %s", json_path);
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }
  if (!phase.pass) {
    EQSQL_LOG(Error, "index scan did not reach 2x over the parallel scan");
    return 1;
  }
  return 0;
}
