file(REMOVE_RECURSE
  "libeqsql_workloads.a"
)
