#ifndef EQSQL_REWRITE_EMIT_H_
#define EQSQL_REWRITE_EMIT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dir/dnode.h"
#include "frontend/ast.h"
#include "sql/generator.h"

namespace eqsql::rewrite {

/// The replacement statement for one extracted variable plus the SQL
/// text of every query it embeds.
struct EmittedCode {
  frontend::StmtPtr stmt;                 // v = <expr over executeQuery(...)>
  std::vector<std::string> sql_queries;   // display SQL, one per kQuery
};

/// Converts a fully transformed ee-DAG expression into the ImpLang
/// statement "var = <expr>", where kQuery nodes become
/// executeQuery("SQL", params...) calls and kScalar becomes the scalar()
/// builtin (paper Sec. 5.2: replace the s_fold stub with s_sql).
///
/// Errors with kUnsupported if the expression still contains folds,
/// loops, opaque values, or has no embedded query at all.
Result<EmittedCode> EmitAssignment(const dir::DNodePtr& node,
                                   const std::string& var,
                                   sql::Dialect dialect);

/// Expression-level emission: converts a transformed ee-DAG expression
/// to an ImpLang expression, appending the SQL of embedded queries to
/// `sql_queries`. Used for print statements of post-loop scalars.
Result<frontend::ExprPtr> EmitExpression(const dir::DNodePtr& node,
                                         sql::Dialect dialect,
                                         std::vector<std::string>* sql_queries);

}  // namespace eqsql::rewrite

#endif  // EQSQL_REWRITE_EMIT_H_
