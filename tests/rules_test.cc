#include <gtest/gtest.h>

#include "dir/builder.h"
#include "frontend/parser.h"
#include "rules/transform.h"
#include "sql/generator.h"

namespace eqsql::rules {
namespace {

using dir::DNodePtr;
using dir::DOp;

/// Pipeline fixture: parse -> D-IR -> transform the returned variable.
class RulesTest : public ::testing::Test {
 protected:
  RulesTest() {
    opts_.table_keys = {{"board", "id"},   {"wuser", "id"},
                        {"role", "id"},    {"project", "id"},
                        {"applicants", "id"}};
  }

  /// Returns the transformed ee-DAG for the program's __ret (or __out).
  DNodePtr TransformVar(const char* src, const std::string& var = "__ret") {
    auto program = frontend::ParseProgram(src);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    programs_.push_back(std::move(*program));
    dir::DirBuilder builder(&ctx_, &programs_.back());
    auto fdir = builder.BuildFunction(programs_.back().functions.back());
    EXPECT_TRUE(fdir.ok()) << fdir.status().ToString();
    auto it = fdir->ve_map.find(var);
    if (it == fdir->ve_map.end()) return nullptr;
    Transformer transformer(&ctx_, opts_);
    last_applied_.clear();
    DNodePtr out = transformer.Transform(it->second);
    last_applied_ = transformer.applied_rules();
    return out;
  }

  /// SQL text for a kQuery node (kDefault dialect).
  std::string Sql(const DNodePtr& node) {
    EXPECT_EQ(node->op(), DOp::kQuery) << node->ToString();
    if (node->op() != DOp::kQuery) return "";
    auto sql = sql::GenerateSql(node->query());
    EXPECT_TRUE(sql.ok()) << sql.status().ToString();
    return sql.value_or("");
  }

  bool Applied(const std::string& rule) {
    return std::find(last_applied_.begin(), last_applied_.end(), rule) !=
           last_applied_.end();
  }

  dir::DagContext ctx_;
  TransformOptions opts_;
  std::vector<frontend::Program> programs_;
  std::vector<std::string> last_applied_;
};

TEST_F(RulesTest, T2PlusT51MahjongAggregation) {
  // Paper Figure 3 walk-through: the running example becomes
  // SELECT MAX(GREATEST(p1,p2,p3,p4)) FROM board WHERE rnd_id = 1.
  DNodePtr out = TransformVar(R"(
    func findMaxScore() {
      boards = executeQuery("SELECT * FROM board AS b WHERE b.rnd_id = 1");
      scoreMax = 0;
      for (t : boards) {
        score = max(max(max(t.p1, t.p2), t.p3), t.p4);
        if (score > scoreMax) { scoreMax = score; }
      }
      return scoreMax;
    }
  )");
  ASSERT_NE(out, nullptr);
  // T6 composition: max[0, scalar(Q)].
  ASSERT_EQ(out->op(), DOp::kMax) << out->ToString();
  EXPECT_EQ(out->child(0)->ToString(), "0");
  ASSERT_EQ(out->child(1)->op(), DOp::kScalar);
  EXPECT_TRUE(Applied("T5.1"));
  auto sql = sql::GenerateSql(out->child(1)->child(0)->query());
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(*sql,
            "SELECT MAX(GREATEST(GREATEST(GREATEST(b.p1, b.p2), b.p3), "
            "b.p4)) AS agg FROM board AS b WHERE (b.rnd_id = 1)");
}

TEST_F(RulesTest, T2SelectionPush) {
  // Wilos sample #6 pattern: filter in imperative code becomes WHERE.
  DNodePtr out = TransformVar(R"(
    func unfinishedProjects() {
      result = list();
      projects = executeQuery("SELECT * FROM project AS p");
      for (p : projects) {
        if (p.finished == 0) {
          result.append(p.name);
        }
      }
      return result;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(Applied("T2"));
  EXPECT_TRUE(Applied("T1"));
  EXPECT_EQ(Sql(out),
            "SELECT p.name AS name FROM project AS p WHERE (p.finished = 0)");
}

TEST_F(RulesTest, T1WholeTupleAppendIsQueryItself) {
  DNodePtr out = TransformVar(R"(
    func all() {
      result = list();
      rows = executeQuery("SELECT * FROM role AS r");
      for (t : rows) { result.append(t); }
      return result;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(Sql(out), "SELECT * FROM role AS r");
}

TEST_F(RulesTest, T1SetInsertionDedups) {
  DNodePtr out = TransformVar(R"(
    func roleIds() {
      ids = set();
      rows = executeQuery("SELECT * FROM wuser AS u");
      for (t : rows) { ids.insert(t.role_id); }
      return ids;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(Sql(out),
            "SELECT DISTINCT u.role_id AS role_id FROM wuser AS u");
}

TEST_F(RulesTest, T4JoinIdentification) {
  // Wilos sample #30 pattern: nested loops over two tables with an
  // equality condition become a join (paper Experiment 6).
  DNodePtr out = TransformVar(R"(
    func userRoles() {
      result = list();
      users = executeQuery("SELECT * FROM wuser AS u");
      roles = executeQuery("SELECT * FROM role AS r");
      for (u : users) {
        for (r : roles) {
          if (u.role_id == r.id) {
            result.append(pair(u.login, r.name));
          }
        }
      }
      return result;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(Applied("T4"));
  EXPECT_EQ(Sql(out),
            "SELECT u.login AS login, r.name AS name FROM wuser AS u JOIN "
            "role AS r ON (u.role_id = r.id) ORDER BY u.id");
}

TEST_F(RulesTest, T4WithParameterizedInnerQuery) {
  // The inner query is parameterized on the outer cursor: batching's
  // classic case, which EqSQL turns into a join.
  DNodePtr out = TransformVar(R"(
    func userRoles() {
      result = list();
      users = executeQuery("SELECT * FROM wuser AS u");
      for (u : users) {
        matches = executeQuery("SELECT * FROM role AS r WHERE r.id = ?",
                               u.role_id);
        for (r : matches) {
          result.append(r.name);
        }
      }
      return result;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(Applied("T4"));
  EXPECT_EQ(Sql(out),
            "SELECT r.name AS name FROM wuser AS u JOIN role AS r ON "
            "(r.id = u.role_id) ORDER BY u.id");
}

TEST_F(RulesTest, T4RequiresKeyForOrderedResults) {
  opts_.table_keys.clear();
  DNodePtr out = TransformVar(R"(
    func f() {
      result = list();
      users = executeQuery("SELECT * FROM wuser AS u");
      roles = executeQuery("SELECT * FROM role AS r");
      for (u : users) {
        for (r : roles) {
          if (u.role_id == r.id) { result.append(r.name); }
        }
      }
      return result;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->op(), DOp::kFold);  // rule refused without a key
}

TEST_F(RulesTest, T4IgnoreOrderingSkipsSort) {
  opts_.table_keys.clear();
  opts_.ignore_ordering = true;  // keyword-search mode (T4.3)
  DNodePtr out = TransformVar(R"(
    func f() {
      result = list();
      users = executeQuery("SELECT * FROM wuser AS u");
      roles = executeQuery("SELECT * FROM role AS r");
      for (u : users) {
        for (r : roles) {
          if (u.role_id == r.id) { result.append(r.name); }
        }
      }
      return result;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(Sql(out),
            "SELECT r.name AS name FROM wuser AS u JOIN role AS r ON "
            "(u.role_id = r.id)");
}

TEST_F(RulesTest, T52GroupByIdentification) {
  // "Our techniques can translate many instances of nested loops where
  // the inner loop computes aggregation for each value of the outer
  // loop, into a GROUP BY query" (paper contribution 3).
  DNodePtr out = TransformVar(R"(
    func roleMaxScores() {
      result = list();
      roles = executeQuery("SELECT * FROM role AS r");
      boards = "unused";
      for (r : roles) {
        best = 0;
        rows = executeQuery("SELECT * FROM wuser AS u WHERE u.role_id = ?",
                            r.id);
        for (u : rows) {
          if (u.score > best) { best = u.score; }
        }
        result.append(pair(r.name, best));
      }
      return result;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(Applied("T5.2")) << out->ToString();
  // The fold init (0) participates in every group, not just empty ones:
  // a role whose scores are all negative keeps best = 0 imperatively,
  // so the extracted SQL must clamp with GREATEST (T6 composition).
  EXPECT_EQ(Sql(out),
            "SELECT r.name AS name, CASE WHEN (MAX(u.score) IS NULL) THEN 0 "
            "ELSE GREATEST(0, MAX(u.score)) END AS agg FROM role AS r "
            "LEFT OUTER JOIN wuser AS u ON (u.role_id = r.id) "
            "GROUP BY r.id, r.name ORDER BY r.id");
}

TEST_F(RulesTest, T52SumAndCount) {
  DNodePtr sum_out = TransformVar(R"(
    func roleSums() {
      result = list();
      roles = executeQuery("SELECT * FROM role AS r");
      for (r : roles) {
        total = 0;
        rows = executeQuery("SELECT * FROM wuser AS u WHERE u.role_id = ?",
                            r.id);
        for (u : rows) { total = total + u.score; }
        result.append(pair(r.id, total));
      }
      return result;
    }
  )");
  ASSERT_NE(sum_out, nullptr);
  std::string sql = Sql(sum_out);
  EXPECT_NE(sql.find("SUM(u.score)"), std::string::npos) << sql;
  EXPECT_NE(sql.find("LEFT OUTER JOIN"), std::string::npos) << sql;

  DNodePtr count_out = TransformVar(R"(
    func roleCounts() {
      result = list();
      roles = executeQuery("SELECT * FROM role AS r");
      for (r : roles) {
        n = 0;
        rows = executeQuery("SELECT * FROM wuser AS u WHERE u.role_id = ?",
                            r.id);
        for (u : rows) { n = n + 1; }
        result.append(pair(r.id, n));
      }
      return result;
    }
  )");
  ASSERT_NE(count_out, nullptr);
  std::string csql = Sql(count_out);
  EXPECT_NE(csql.find("COUNT(u.role_id)"), std::string::npos) << csql;
}

TEST_F(RulesTest, ExistsPattern) {
  DNodePtr out = TransformVar(R"(
    func hasAdmin() {
      found = false;
      rows = executeQuery("SELECT * FROM wuser AS u");
      for (u : rows) {
        if (u.role_id == 1) { found = true; }
      }
      return found;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(Applied("EXISTS")) << out->ToString();
  // or[false, count(σ) > 0]
  ASSERT_EQ(out->op(), DOp::kOr) << out->ToString();
  ASSERT_EQ(out->child(1)->op(), DOp::kGt);
  auto sql = sql::GenerateSql(out->child(1)->child(0)->child(0)->query());
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "SELECT COUNT(*) AS cnt FROM wuser AS u WHERE (u.role_id = 1)");
}

TEST_F(RulesTest, CountAndSumScalars) {
  DNodePtr out = TransformVar(R"(
    func stats() {
      n = 0;
      rows = executeQuery("SELECT * FROM wuser AS u");
      for (u : rows) { n = n + 1; }
      return n;
    }
  )");
  ASSERT_NE(out, nullptr);
  // 0 + coalesce(count, 0)
  ASSERT_EQ(out->op(), DOp::kAdd) << out->ToString();
  auto sql = sql::GenerateSql(
      out->child(1)->child(0)->child(0)->query());
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql, "SELECT COUNT(*) AS agg FROM wuser AS u");
}

TEST_F(RulesTest, T7OuterApplyStarSchema) {
  // Paper Figure 12/13: per-row scalar lookups with a conditional fetch
  // become a chain of OUTER APPLYs.
  DNodePtr out = TransformVar(R"(
    func jobReport() {
      rows = executeQuery("SELECT * FROM applicants AS a");
      for (t : rows) {
        id = t.id;
        phone = scalar(executeQuery(
            "SELECT d.phone AS phone FROM details AS d WHERE d.aid = ?", id));
        edu = null;
        if (t.mode == "online") {
          edu = scalar(executeQuery(
              "SELECT e.degree AS degree FROM education AS e WHERE e.aid = ?",
              id));
        }
        print(pair(id, pair(phone, edu)));
      }
    }
  )", "__out");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(Applied("T7")) << out->ToString();
  std::string sql = Sql(out);
  EXPECT_NE(sql.find("OUTER APPLY"), std::string::npos) << sql;
  // The conditional fetch's condition is pushed into its apply branch
  // (paper Figure 13: "and Q1.applnMode = 'online'").
  EXPECT_NE(sql.find("(a.mode = 'online')"), std::string::npos) << sql;
}

TEST_F(RulesTest, DisabledRuleBlocksTransformation) {
  opts_.disabled_rules = {"T2"};
  DNodePtr out = TransformVar(R"(
    func f() {
      result = list();
      projects = executeQuery("SELECT * FROM project AS p");
      for (p : projects) {
        if (p.finished == 0) { result.append(p.name); }
      }
      return result;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->op(), DOp::kFold);  // cannot fire T1 without T2
}

TEST_F(RulesTest, OpaqueValuesAreLeftAlone) {
  DNodePtr out = TransformVar(R"(
    func f() {
      agg = 0; dep = 0;
      rows = executeQuery("SELECT * FROM t");
      for (u : rows) {
        agg = agg + u.x;
        dep = dep + agg;
      }
      return dep;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->op(), DOp::kOpaque);
}

TEST_F(RulesTest, SumWithConditionCombinesT2AndT51) {
  DNodePtr out = TransformVar(R"(
    func total() {
      sum = 100;
      rows = executeQuery("SELECT * FROM wuser AS u");
      for (u : rows) {
        if (u.score > 50) { sum = sum + u.score; }
      }
      return sum;
    }
  )");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(Applied("T2"));
  EXPECT_TRUE(Applied("T5.1"));
  // 100 + coalesce(scalar(SELECT SUM..WHERE score>50), 0)
  ASSERT_EQ(out->op(), DOp::kAdd) << out->ToString();
  auto sql = sql::GenerateSql(out->child(1)->child(0)->child(0)->query());
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "SELECT SUM(u.score) AS agg FROM wuser AS u WHERE "
            "(u.score > 50)");
}

}  // namespace
}  // namespace eqsql::rules
