#ifndef EQSQL_COMMON_STATUS_H_
#define EQSQL_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace eqsql {

/// Error categories used across the EqSQL library.
///
/// Following the style of database engines built without exceptions
/// (Arrow, RocksDB), every fallible operation returns a `Status` or a
/// `Result<T>` (see result.h). `kOk` carries no message and is cheap to
/// copy.
enum class StatusCode {
  kOk = 0,
  /// The input violates a documented precondition of the API.
  kInvalidArgument,
  /// A referenced entity (table, column, variable, function) is missing.
  kNotFound,
  /// A parse error in ImpLang or SQL source text.
  kParseError,
  /// The construct is valid but outside the subset EqSQL handles
  /// (paper Sec. 5.4: custom comparators, type-based selection, ...).
  kUnsupported,
  /// A transformation precondition failed (P1-P3, rule patterns).
  kPreconditionFailed,
  /// An internal invariant was violated; indicates a bug in EqSQL.
  kInternal,
  /// A runtime evaluation error (type mismatch, division by zero, ...).
  kRuntimeError,
  /// The server's admission queue is full; the request was rejected
  /// without blocking the submitter. Retry with backoff.
  kOverloaded,
  /// The request's deadline expired before it began executing.
  kDeadlineExceeded,
  /// The server is draining: queued requests are failed, in-flight
  /// requests finish. Nothing was executed for this request.
  kShuttingDown,
  /// A write-write conflict under snapshot isolation: another
  /// transaction committed (or holds pending) a newer version of a row
  /// this transaction tried to write, or a table this transaction read
  /// changed before commit. The transaction is rolled back; retry it.
  kTxnConflict,
};

/// Returns a stable human-readable name for `code` ("OK", "ParseError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Statuses are cheap to move and to copy in the
/// OK case. Use the factory functions (`Status::ParseError(...)` etc.) to
/// construct errors with a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status PreconditionFailed(std::string msg) {
    return Status(StatusCode::kPreconditionFailed, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ShuttingDown(std::string msg) {
    return Status(StatusCode::kShuttingDown, std::move(msg));
  }
  static Status TxnConflict(std::string msg) {
    return Status(StatusCode::kTxnConflict, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace eqsql

/// Propagates a non-OK Status from the current function.
#define EQSQL_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::eqsql::Status _eqsql_status = (expr);        \
    if (!_eqsql_status.ok()) return _eqsql_status; \
  } while (0)

#endif  // EQSQL_COMMON_STATUS_H_
