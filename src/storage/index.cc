#include "storage/index.h"

#include <algorithm>

#include "common/hash.h"

namespace eqsql::storage {

size_t SecondaryIndex::KeyHash::operator()(
    const std::vector<catalog::Value>& key) const {
  size_t seed = key.size();
  catalog::ValueHash h;
  for (const catalog::Value& v : key) HashCombine(seed, h(v));
  return seed;
}

bool SecondaryIndex::KeyEq::operator()(
    const std::vector<catalog::Value>& a,
    const std::vector<catalog::Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

SecondaryIndex::SecondaryIndex(std::string name,
                               std::vector<std::string> columns,
                               std::vector<size_t> column_indexes,
                               size_t buckets)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      column_indexes_(std::move(column_indexes)),
      buckets_(std::max<size_t>(1, buckets)) {
  for (auto& b : buckets_) b = std::make_unique<Bucket>();
}

SecondaryIndex::Bucket& SecondaryIndex::BucketFor(
    const std::vector<catalog::Value>& key) const {
  return *buckets_[KeyHash()(key) % buckets_.size()];
}

void SecondaryIndex::AddEntry(const catalog::Row& row,
                              std::shared_ptr<const TableSlot> slot) {
  std::vector<catalog::Value> key;
  key.reserve(column_indexes_.size());
  for (size_t col : column_indexes_) {
    if (row[col].is_null()) return;  // NULL keys are never probeable
    key.push_back(row[col]);
  }
  Bucket& bucket = BucketFor(key);
  std::unique_lock<std::shared_mutex> lock(bucket.mu);
  auto& slots = bucket.map[std::move(key)];
  for (const auto& s : slots) {
    if (s.get() == slot.get()) return;  // backfill/writer overlap
  }
  slots.push_back(std::move(slot));
}

std::vector<std::shared_ptr<const TableSlot>> SecondaryIndex::Probe(
    const std::vector<catalog::Value>& key) const {
  for (const catalog::Value& v : key) {
    if (v.is_null()) return {};
  }
  std::vector<std::shared_ptr<const TableSlot>> out;
  Bucket& bucket = BucketFor(key);
  {
    std::shared_lock<std::shared_mutex> lock(bucket.mu);
    auto it = bucket.map.find(key);
    if (it == bucket.map.end()) return {};
    out = it->second;
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a->seq < b->seq; });
  return out;
}

void SecondaryIndex::PruneDeadSlots() {
  for (auto& bucket : buckets_) {
    std::unique_lock<std::shared_mutex> lock(bucket->mu);
    for (auto it = bucket->map.begin(); it != bucket->map.end();) {
      auto& slots = it->second;
      slots.erase(std::remove_if(slots.begin(), slots.end(),
                                 [](const auto& s) {
                                   return s->head.load(
                                              std::memory_order_acquire) ==
                                          nullptr;
                                 }),
                  slots.end());
      if (slots.empty()) {
        it = bucket->map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void SecondaryIndex::Clear() {
  for (auto& bucket : buckets_) {
    std::unique_lock<std::shared_mutex> lock(bucket->mu);
    bucket->map.clear();
  }
}

size_t SecondaryIndex::entry_count() const {
  size_t n = 0;
  for (const auto& bucket : buckets_) {
    std::shared_lock<std::shared_mutex> lock(bucket->mu);
    for (const auto& [key, slots] : bucket->map) n += slots.size();
  }
  return n;
}

}  // namespace eqsql::storage
