#ifndef EQSQL_CORE_COST_ESTIMATOR_H_
#define EQSQL_CORE_COST_ESTIMATOR_H_

#include <map>
#include <string>

#include "net/cost_model.h"
#include "ra/ra_node.h"

namespace eqsql::core {

/// Table statistics for cost-based decisions (paper Appendix C: "the
/// decision to replace should be taken in a cost based manner").
struct TableStats {
  /// Lowercase table name → row count.
  std::map<std::string, int64_t> table_rows;
  /// Average bytes per row shipped for a table (default assumed when
  /// absent).
  std::map<std::string, int64_t> row_bytes;
};

/// Estimated execution profile of one strategy.
struct CostEstimate {
  double cardinality = 0;     // rows the client receives
  double rows_processed = 0;  // server-side work
  int64_t round_trips = 0;
  double bytes = 0;

  /// Simulated milliseconds under `model` (same formula as
  /// net::Connection charges at run time).
  double Milliseconds(const net::CostModel& model) const;
};

/// A Volcano-flavoured cost estimator over relational-algebra plans:
/// cardinalities propagate bottom-up with textbook selectivity guesses
/// (selection 1/3, equi-join via containment on the larger side,
/// group-by sqrt, point lookup 1), and the resulting profile is priced
/// with the same deterministic cost model the simulated connection
/// charges. The estimator powers the cost-based variant of the Sec. 5.3
/// replace-or-not decision (paper App. C).
class CostEstimator {
 public:
  CostEstimator(TableStats stats, net::CostModel model)
      : stats_(std::move(stats)), model_(model) {}

  /// Profile of executing `plan` once as a single query.
  CostEstimate EstimateQuery(const ra::RaNodePtr& plan) const;

  /// Profile of the original imperative strategy: fetch `outer` whole,
  /// then run `queries_per_row` further queries per fetched row (0 for a
  /// self-contained loop). Client work is charged per row iterated.
  CostEstimate EstimateLoop(const ra::RaNodePtr& outer,
                            int queries_per_row) const;

  /// Convenience: true when running `plan` once is estimated cheaper
  /// than the imperative strategy it replaces.
  bool RewriteWins(const ra::RaNodePtr& plan, const ra::RaNodePtr& outer,
                   int queries_per_row) const;

  const net::CostModel& model() const { return model_; }

 private:
  struct NodeEstimate {
    double rows = 0;        // output cardinality
    double row_bytes = 0;   // output row width
    double processed = 0;   // cumulative rows processed in the subtree
  };
  NodeEstimate Walk(const ra::RaNode& node) const;

  TableStats stats_;
  net::CostModel model_;
};

}  // namespace eqsql::core

#endif  // EQSQL_CORE_COST_ESTIMATOR_H_
