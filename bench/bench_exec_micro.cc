// Engine micro-benchmarks (DESIGN.md experiment A2): operator
// throughput of the in-memory engine that stands in for MySQL. These
// numbers sanity-check the cost model's server term and document the
// substrate's raw speed.

#include <benchmark/benchmark.h>

#include "exec/executor.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace {

using eqsql::catalog::DataType;
using eqsql::catalog::Schema;
using eqsql::catalog::Value;

/// Builds a `data(id, grp, v, name)` table with `n` rows.
std::unique_ptr<eqsql::storage::Database> MakeDb(int64_t n) {
  auto db = std::make_unique<eqsql::storage::Database>();
  auto table = *db->CreateTable(
      "data", Schema({{"id", DataType::kInt64},
                      {"grp", DataType::kInt64},
                      {"v", DataType::kInt64},
                      {"name", DataType::kString}}));
  for (int64_t i = 0; i < n; ++i) {
    (void)table->Insert({Value::Int(i), Value::Int(i % 64),
                         Value::Int((i * 2654435761) % 10000),
                         Value::String("row" + std::to_string(i))});
  }
  (void)table->DeclareUniqueKey("id");
  return db;
}

void RunSql(benchmark::State& state, const char* sql) {
  auto db = MakeDb(state.range(0));
  auto plan = *eqsql::sql::ParseSql(sql);
  eqsql::exec::Executor ex(db.get());
  for (auto _ : state) {
    auto rs = ex.Execute(plan);
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Scan(benchmark::State& state) {
  RunSql(state, "SELECT * FROM data AS d");
}
BENCHMARK(BM_Scan)->Arg(1000)->Arg(100000);

void BM_Filter(benchmark::State& state) {
  RunSql(state, "SELECT d.id AS id FROM data AS d WHERE d.v < 2000");
}
BENCHMARK(BM_Filter)->Arg(1000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  RunSql(state,
         "SELECT a.id AS id FROM data AS a JOIN data AS b ON a.id = b.id");
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(100000);

void BM_GroupBy(benchmark::State& state) {
  RunSql(state,
         "SELECT d.grp, MAX(d.v) AS mx, COUNT(*) AS c FROM data AS d "
         "GROUP BY d.grp");
}
BENCHMARK(BM_GroupBy)->Arg(1000)->Arg(100000);

void BM_SortLimit(benchmark::State& state) {
  RunSql(state,
         "SELECT d.id AS id FROM data AS d ORDER BY d.v DESC LIMIT 10");
}
BENCHMARK(BM_SortLimit)->Arg(1000)->Arg(100000);

void BM_ParseSql(benchmark::State& state) {
  const char* sql =
      "SELECT a.id, MAX(b.v) AS mx FROM data AS a LEFT OUTER JOIN data AS "
      "b ON a.id = b.grp WHERE a.v > 10 GROUP BY a.id ORDER BY a.id "
      "LIMIT 100";
  for (auto _ : state) {
    auto plan = eqsql::sql::ParseSql(sql);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ParseSql);

}  // namespace

BENCHMARK_MAIN();
