file(REMOVE_RECURSE
  "CMakeFiles/eqsql_baselines.dir/batching.cc.o"
  "CMakeFiles/eqsql_baselines.dir/batching.cc.o.d"
  "libeqsql_baselines.a"
  "libeqsql_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqsql_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
