#include "analysis/effects.h"

namespace eqsql::analysis {

using frontend::Expr;
using frontend::ExprKind;
using frontend::ExprPtr;
using frontend::Stmt;
using frontend::StmtKind;

bool IsPureBuiltin(const std::string& name) {
  return name == "max" || name == "min" || name == "abs" ||
         name == "coalesce" || name == "scalar" || name == "list" ||
         name == "set" || name == "concat" || name == "pair" ||
         name == "tuple" || name == "toSet";
}

bool IsCollectionMutation(const std::string& method) {
  return method == "append" || method == "insert" || method == "add" ||
         method == "put";
}

void CollectExprEffects(const ExprPtr& expr, StmtEffects* effects) {
  if (expr == nullptr) return;
  switch (expr->kind()) {
    case ExprKind::kVarRef:
      effects->reads.insert(expr->name());
      return;
    case ExprKind::kFieldAccess:
      CollectExprEffects(expr->object(), effects);
      return;
    case ExprKind::kCall: {
      if (expr->name() == "executeQuery") {
        effects->reads_db = true;
      } else if (expr->name() == "executeUpdate") {
        effects->writes_db = true;
      } else if (!IsPureBuiltin(expr->name())) {
        effects->has_unknown_call = true;
      }
      for (const ExprPtr& a : expr->args()) CollectExprEffects(a, effects);
      return;
    }
    case ExprKind::kMethodCall: {
      CollectExprEffects(expr->object(), effects);
      if (IsCollectionMutation(expr->name()) &&
          expr->object()->kind() == ExprKind::kVarRef) {
        effects->writes.insert(expr->object()->name());
      }
      for (const ExprPtr& a : expr->args()) CollectExprEffects(a, effects);
      return;
    }
    default:
      for (const ExprPtr& a : expr->args()) CollectExprEffects(a, effects);
      return;
  }
}

StmtEffects ComputeStmtEffects(const Stmt& stmt) {
  StmtEffects effects;
  switch (stmt.kind()) {
    case StmtKind::kAssign:
      CollectExprEffects(stmt.expr(), &effects);
      effects.writes.insert(stmt.target());
      break;
    case StmtKind::kExprStmt:
      CollectExprEffects(stmt.expr(), &effects);
      break;
    case StmtKind::kPrint:
      // Prints are preprocessed into appends to the ordered collection
      // __out (paper App. B), so they behave like collection mutations
      // of __out rather than external writes.
      CollectExprEffects(stmt.expr(), &effects);
      effects.reads.insert(kOutputVar);
      effects.writes.insert(kOutputVar);
      break;
    case StmtKind::kReturn:
      CollectExprEffects(stmt.expr(), &effects);
      break;
    case StmtKind::kBreak:
      break;
    case StmtKind::kIf:
    case StmtKind::kForEach:
    case StmtKind::kWhile:
      // Condition / iterable only; bodies are walked structurally by
      // the loop analysis.
      CollectExprEffects(stmt.expr(), &effects);
      break;
  }
  return effects;
}

}  // namespace eqsql::analysis
