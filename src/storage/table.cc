#include "storage/table.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "storage/index.h"
#include "storage/txn.h"

namespace eqsql::storage {

TableSlot::~TableSlot() {
  Version* v = head.load(std::memory_order_acquire);
  while (v != nullptr) {
    Version* next = v->next.load(std::memory_order_acquire);
    delete v;
    v = next;
  }
}

const Version* TableSlot::VisibleVersion(const Snapshot& snap) const {
  for (const Version* v = head.load(std::memory_order_acquire); v != nullptr;
       v = v->next.load(std::memory_order_acquire)) {
    Ts b = v->begin.load(std::memory_order_acquire);
    Ts e = v->end.load(std::memory_order_acquire);
    if (TsVisible(b, e, snap)) return v;
  }
  return nullptr;
}

const catalog::Row* TableSlot::VisibleRow(const Snapshot& snap) const {
  const Version* v = VisibleVersion(snap);
  return v == nullptr ? nullptr : &v->row;
}

Version* Table::NewestMeaningful(const Slot& slot) {
  for (Version* v = slot.head.load(std::memory_order_acquire); v != nullptr;
       v = v->next.load(std::memory_order_acquire)) {
    if (v->begin.load(std::memory_order_acquire) != kTsAborted) return v;
  }
  return nullptr;
}

Status Table::CheckWritable(const Slot& slot, const Version* expected,
                            const Transaction& txn) const {
  Version* newest = NewestMeaningful(slot);
  if (newest != expected) {
    return Status::TxnConflict("write-write conflict on table " + name_ +
                               ": row version superseded since snapshot " +
                               std::to_string(txn.snapshot().ts));
  }
  if (newest == nullptr) return Status::OK();
  Ts end = newest->end.load(std::memory_order_acquire);
  if (end == kTsInfinity) return Status::OK();
  if (TsIsPending(end) && TsPendingTxn(end) == txn.id()) return Status::OK();
  return Status::TxnConflict(
      "write-write conflict on table " + name_ +
      ": row deleted by a concurrent transaction (snapshot " +
      std::to_string(txn.snapshot().ts) + ")");
}

std::vector<catalog::Row> Table::rows(const Snapshot& snap) const {
  std::vector<std::pair<size_t, catalog::Row>> acc;
  {
    std::shared_lock<std::shared_mutex> topology(topology_mu_);
    for (const auto& shard : shards_) {
      std::vector<std::shared_ptr<Slot>> local;
      {
        std::shared_lock<std::shared_mutex> sl(shard->struct_mu);
        local = shard->slots;
      }
      for (const auto& slot : local) {
        const catalog::Row* row = slot->VisibleRow(snap);
        if (row != nullptr) acc.emplace_back(slot->seq, *row);
      }
    }
  }
  std::sort(acc.begin(), acc.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<catalog::Row> out;
  out.reserve(acc.size());
  for (auto& p : acc) out.push_back(std::move(p.second));
  return out;
}

size_t Table::ShardOfKey(const catalog::Value& key) const {
  return catalog::ValueHash()(key) % shards_.size();
}

std::shared_ptr<Table::Slot> Table::InstallNewSlot(Shard* shard,
                                                   catalog::Row row, Ts begin,
                                                   const catalog::Value* key,
                                                   size_t seq) {
  auto slot = std::make_shared<Slot>(seq);
  slot->head.store(new Version(std::move(row), begin),
                   std::memory_order_release);
  {
    std::unique_lock<std::shared_mutex> sl(shard->struct_mu);
    shard->slots.push_back(slot);
    if (key != nullptr) shard->index.emplace(*key, slot);
  }
  if (txns_ != nullptr) txns_->NoteVersionInstalled();
  NoteVersionForIndexes(slot->head.load(std::memory_order_acquire)->row, slot);
  return slot;
}

Status Table::Insert(catalog::Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table " + name_);
  }
  // Shared topology hold: keeps a concurrent Repartition from freeing
  // the Shard this insert is about to lock out from under us.
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  // Setup-path stamp: committed as of the current clock, so every
  // snapshot pinned from now on sees the row.
  const Ts begin = txns_ == nullptr ? 1 : txns_->clock();
  if (unique_key_.has_value()) {
    const catalog::Value key = row[key_index_col_];
    Shard& shard = *shards_[ShardOfKey(key)];
    std::lock_guard<std::mutex> write(shard.write_mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end() &&
        it->second->VisibleVersion(Snapshot::Latest()) != nullptr) {
      return Status::InvalidArgument("duplicate key " + key.ToString() +
                                     " in table " + name_);
    }
    if (it != shard.index.end()) {
      // Key slot exists but holds no live row (deleted): stack the
      // reinserted row on the same slot.
      Slot& slot = *it->second;
      Version* nv = new Version(std::move(row), begin);
      nv->next.store(slot.head.load(std::memory_order_acquire),
                     std::memory_order_relaxed);
      slot.head.store(nv, std::memory_order_release);
      if (txns_ != nullptr) txns_->NoteVersionInstalled();
      NoteVersionForIndexes(nv->row, it->second);
    } else {
      size_t seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
      InstallNewSlot(&shard, std::move(row), begin, &key, seq);
    }
  } else {
    // Round-robin placement: the sequence number decides the shard, so
    // single-threaded bulk loads fill shards exactly as the unsharded
    // engine's scan order expects.
    size_t seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
    Shard& shard = *shards_[seq % shards_.size()];
    std::lock_guard<std::mutex> write(shard.write_mu);
    InstallNewSlot(&shard, std::move(row), begin, nullptr, seq);
  }
  size_.fetch_add(1, std::memory_order_acq_rel);
  BumpStatsEpoch();
  return Status::OK();
}

Status Table::InsertTxn(Transaction* txn, catalog::Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table " + name_);
  }
  const Ts pending = TsPendingFor(txn->id());
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  if (unique_key_.has_value()) {
    const catalog::Value key = row[key_index_col_];
    Shard& shard = *shards_[ShardOfKey(key)];
    std::lock_guard<std::mutex> write(shard.write_mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      Slot& slot = *it->second;
      Version* newest = NewestMeaningful(slot);
      if (newest != nullptr) {
        Ts b = newest->begin.load(std::memory_order_acquire);
        Ts e = newest->end.load(std::memory_order_acquire);
        const bool own_begin =
            TsIsPending(b) && TsPendingTxn(b) == txn->id();
        if (TsIsPending(b) && !own_begin) {
          return Status::TxnConflict("write-write conflict on table " + name_ +
                                     ": key " + key.ToString() +
                                     " inserted by an uncommitted transaction");
        }
        if (!TsIsPending(b) && b > txn->snapshot().ts) {
          return Status::TxnConflict("write-write conflict on table " + name_ +
                                     ": key " + key.ToString() +
                                     " committed after snapshot");
        }
        if (e == kTsInfinity) {
          return Status::InvalidArgument("duplicate key " + key.ToString() +
                                         " in table " + name_);
        }
        if (TsIsPending(e)) {
          if (TsPendingTxn(e) != txn->id()) {
            return Status::TxnConflict(
                "write-write conflict on table " + name_ + ": key " +
                key.ToString() + " deleted by an uncommitted transaction");
          }
          // We deleted it ourselves: reinsert stacks a new version.
        } else if (e > txn->snapshot().ts) {
          return Status::TxnConflict("write-write conflict on table " + name_ +
                                     ": key " + key.ToString() +
                                     " deleted after snapshot");
        }
      }
      Version* nv = new Version(std::move(row), pending);
      nv->next.store(slot.head.load(std::memory_order_acquire),
                     std::memory_order_relaxed);
      slot.head.store(nv, std::memory_order_release);
      if (txns_ != nullptr) txns_->NoteVersionInstalled();
      NoteVersionForIndexes(nv->row, it->second);
      txn->RecordWrite(WriteRecord{weak_from_this().lock(), this, it->second,
                                   nv, nullptr, 1});
    } else {
      size_t seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
      std::shared_ptr<Slot> slot =
          InstallNewSlot(&shard, std::move(row), pending, &key, seq);
      txn->RecordWrite(WriteRecord{weak_from_this().lock(), this, slot,
                                   slot->head.load(std::memory_order_acquire),
                                   nullptr, 1});
    }
  } else {
    size_t seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
    Shard& shard = *shards_[seq % shards_.size()];
    std::lock_guard<std::mutex> write(shard.write_mu);
    std::shared_ptr<Slot> slot =
        InstallNewSlot(&shard, std::move(row), pending, nullptr, seq);
    txn->RecordWrite(WriteRecord{weak_from_this().lock(), this, slot,
                                 slot->head.load(std::memory_order_acquire),
                                 nullptr, 1});
  }
  BumpStatsEpoch();
  return Status::OK();
}

Result<size_t> Table::MutateRows(
    Transaction* txn,
    const std::function<Result<bool>(const catalog::Row&)>& pred,
    const std::function<Result<catalog::Row>(const catalog::Row&)>& mutate) {
  const Ts pending = TsPendingFor(txn->id());
  size_t written = 0;
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> write(shard->write_mu);
    // Slot vectors mutate only under write_mu (writers, GC), so holding
    // it makes the plain iteration safe.
    for (const auto& slot : shard->slots) {
      const Version* vis = slot->VisibleVersion(txn->snapshot());
      if (vis == nullptr) continue;
      EQSQL_ASSIGN_OR_RETURN(bool matched, pred(vis->row));
      if (!matched) continue;
      EQSQL_RETURN_IF_ERROR(CheckWritable(*slot, vis, *txn));
      Version* old_version = const_cast<Version*>(vis);
      if (mutate == nullptr) {
        old_version->end.store(pending, std::memory_order_release);
        txn->RecordWrite(WriteRecord{weak_from_this().lock(), this, slot,
                                     nullptr, old_version, -1});
      } else {
        EQSQL_ASSIGN_OR_RETURN(catalog::Row new_row, mutate(vis->row));
        if (new_row.size() != schema_.size()) {
          return Status::InvalidArgument(
              "updated row arity " + std::to_string(new_row.size()) +
              " does not match schema of table " + name_);
        }
        Version* nv = new Version(std::move(new_row), pending);
        nv->next.store(slot->head.load(std::memory_order_acquire),
                       std::memory_order_relaxed);
        slot->head.store(nv, std::memory_order_release);
        old_version->end.store(pending, std::memory_order_release);
        if (txns_ != nullptr) txns_->NoteVersionInstalled();
        NoteVersionForIndexes(nv->row, slot);
        txn->RecordWrite(
            WriteRecord{weak_from_this().lock(), this, slot, nv, old_version, 0});
      }
      ++written;
    }
  }
  if (written > 0) BumpStatsEpoch();
  return written;
}

Status Table::Repartition(size_t new_count, const std::string* new_key) {
  // Exclusive topology hold: every other path that touches shards_ —
  // writers, readers pinning slots, GC — holds topology_mu_ shared for
  // the duration of its shard access, so once we own it exclusively no
  // thread can be inside a Shard, and the old Shard objects are safe
  // to free at function exit. Version chains move wholesale with their
  // slots: pending versions and in-flight transactions' slot
  // references stay valid.
  std::unique_lock<std::shared_mutex> topology(topology_mu_);

  std::optional<std::string> key = unique_key_;
  size_t key_col = key_index_col_;
  if (new_key != nullptr) {
    EQSQL_ASSIGN_OR_RETURN(key_col, schema_.ResolveColumn(*new_key));
    key = *new_key;
  }

  // Phase 1: validate. Compute every slot's target shard and run the
  // uniqueness check over live rows — no slot moves until the whole
  // placement is known to succeed, so a duplicate-key error leaves the
  // table exactly as it was. A slot counts against uniqueness when its
  // newest meaningful version is live (end infinity) or mid-write
  // (pending end — the owner may roll the delete back).
  std::vector<std::shared_ptr<Slot>> all;
  all.reserve(next_seq_.load(std::memory_order_acquire));
  for (const auto& s : shards_) {
    for (const auto& slot : s->slots) {
      if (slot->head.load(std::memory_order_acquire) != nullptr) {
        all.push_back(slot);
      }
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a->seq < b->seq;
  });

  size_t count = new_count == 0 ? shards_.size() : new_count;
  std::vector<size_t> targets(all.size());
  std::vector<std::unordered_map<catalog::Value, std::shared_ptr<Slot>,
                                 catalog::ValueHash>>
      indexes(count);
  for (size_t i = 0; i < all.size(); ++i) {
    size_t target;
    if (key.has_value()) {
      Version* newest = NewestMeaningful(*all[i]);
      const Version* any = newest != nullptr
                               ? newest
                               : all[i]->head.load(std::memory_order_acquire);
      const catalog::Value& kv = any->row[key_col];
      target = catalog::ValueHash()(kv) % count;
      bool live = false;
      if (newest != nullptr) {
        Ts end = newest->end.load(std::memory_order_acquire);
        live = end == kTsInfinity || TsIsPending(end);
      }
      if (live) {
        auto [it, inserted] = indexes[target].emplace(kv, all[i]);
        if (!inserted) {
          return Status::InvalidArgument(
              "existing data violates unique key on " + *key + " in table " +
              name_);
        }
      } else {
        // Dead slot: still indexed (reinsert stacks on it) unless a
        // live slot claims the key — which uniqueness forbids anyway,
        // since a key maps to exactly one slot for its whole life.
        indexes[target].emplace(kv, all[i]);
      }
    } else {
      target = all[i]->seq % count;
    }
    targets[i] = target;
  }

  // Phase 2: move slots into their new shards and commit.
  std::vector<std::vector<std::shared_ptr<Slot>>> placed(count);
  for (size_t i = 0; i < all.size(); ++i) {
    placed[targets[i]].push_back(std::move(all[i]));
  }

  if (count != shards_.size()) {
    std::vector<std::unique_ptr<Shard>> fresh(count);
    for (auto& s : fresh) s = std::make_unique<Shard>();
    shards_ = std::move(fresh);
  }
  for (size_t i = 0; i < count; ++i) {
    shards_[i]->slots = std::move(placed[i]);
    shards_[i]->index = std::move(indexes[i]);
  }
  unique_key_ = key;
  key_index_col_ = key_col;
  BumpStatsEpoch();
  return Status::OK();
}

Status Table::DeclareUniqueKey(const std::string& column) {
  return Repartition(0, &column);
}

Status Table::SetShardCount(size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("shard count must be positive");
  }
  // No unlocked same-count early-out: shards_.size() may only be read
  // under the topology lock, which Repartition takes.
  return Repartition(n, nullptr);
}

std::optional<size_t> Table::LookupByKey(const catalog::Value& key) const {
  if (!unique_key_.has_value()) return std::nullopt;
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  const Shard& shard = *shards_[ShardOfKey(key)];
  std::shared_ptr<Slot> slot;
  {
    std::shared_lock<std::shared_mutex> sl(shard.struct_mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    slot = it->second;
  }
  if (slot->VisibleVersion(Snapshot::Latest()) == nullptr) return std::nullopt;
  return slot->seq;
}

std::optional<catalog::Row> Table::GetByKey(const catalog::Value& key,
                                            const Snapshot& snap) const {
  if (!unique_key_.has_value()) return std::nullopt;
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  const Shard& shard = *shards_[ShardOfKey(key)];
  std::shared_ptr<Slot> slot;
  {
    std::shared_lock<std::shared_mutex> sl(shard.struct_mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    slot = it->second;
  }
  const catalog::Row* row = slot->VisibleRow(snap);
  if (row == nullptr) return std::nullopt;
  return *row;
}

void Table::Clear() {
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  // Lock every shard's write mutex in ascending order, then clear
  // under the structural locks. Setup-path operation.
  std::vector<std::unique_lock<std::mutex>> writes;
  writes.reserve(shards_.size());
  for (const auto& s : shards_) writes.emplace_back(s->write_mu);
  for (const auto& s : shards_) {
    std::unique_lock<std::shared_mutex> sl(s->struct_mu);
    s->slots.clear();
    s->index.clear();
  }
  next_seq_.store(0, std::memory_order_release);
  size_.store(0, std::memory_order_release);
  last_commit_ts_.store(0, std::memory_order_release);
  if (index_count_.load(std::memory_order_acquire) != 0) {
    std::shared_lock<std::shared_mutex> il(index_mu_);
    for (const auto& idx : indexes_) idx->Clear();
  }
  BumpStatsEpoch();
}

Status Table::ForEachRowExclusive(
    const std::function<Status(catalog::Row* row)>& fn) {
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> write(shard->write_mu);
    for (const auto& slot : shard->slots) {
      const Version* vis = slot->VisibleVersion(Snapshot::Latest());
      if (vis == nullptr) continue;
      // Setup-only in-place mutation: no version is installed, so this
      // must not race snapshot readers (documented in the header).
      EQSQL_RETURN_IF_ERROR(fn(&const_cast<Version*>(vis)->row));
    }
  }
  BumpStatsEpoch();
  return Status::OK();
}

std::vector<std::shared_ptr<const Table::Slot>> Table::PinShard(
    size_t i) const {
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  const Shard& shard = *shards_[i];
  std::shared_lock<std::shared_mutex> sl(shard.struct_mu);
  return std::vector<std::shared_ptr<const Slot>>(shard.slots.begin(),
                                                  shard.slots.end());
}

size_t ShardScanCursor::Next(size_t max_rows, std::vector<size_t>* seqs,
                             std::vector<catalog::Row>* rows,
                             size_t* wire_bytes) {
  size_t produced = 0;
  while (produced < max_rows && pos_ < slots_.size()) {
    const TableSlot& slot = *slots_[pos_++];
    const catalog::Row* row = slot.VisibleRow(snap_);
    if (row == nullptr) continue;  // tombstoned / not yet visible
    seqs->push_back(slot.seq);
    rows->push_back(*row);  // copy: the version may be vacuumed later
    *wire_bytes += catalog::RowWireSize(*row);
    ++produced;
  }
  return produced;
}

void Table::NoteCommit(Ts commit_ts, int64_t size_delta) {
  last_commit_ts_.store(commit_ts, std::memory_order_release);
  size_.fetch_add(static_cast<size_t>(size_delta),
                  std::memory_order_acq_rel);
  BumpStatsEpoch();
}

void Table::Vacuum(Ts watermark, TxnManager* txns) {
  std::vector<Version*> retired;
  {
    std::shared_lock<std::shared_mutex> topology(topology_mu_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> write(shard->write_mu);
      bool any_dead_slot = false;
      for (const auto& slot : shard->slots) {
        // Unlink versions no live or future snapshot can see: aborted
        // ones, and superseded/deleted ones whose committed end is at
        // or below the watermark. Pending stamps always survive.
        Version* prev = nullptr;
        Version* v = slot->head.load(std::memory_order_acquire);
        while (v != nullptr) {
          Version* next = v->next.load(std::memory_order_acquire);
          Ts b = v->begin.load(std::memory_order_acquire);
          Ts e = v->end.load(std::memory_order_acquire);
          bool dead = b == kTsAborted ||
                      (!TsIsPending(b) && !TsIsPending(e) &&
                       e != kTsInfinity && e <= watermark);
          if (dead) {
            // Keep v->next intact: a reader paused on v mid-walk can
            // still step off it; the retire list delays the free until
            // every such reader's pin is gone.
            if (prev == nullptr) {
              slot->head.store(next, std::memory_order_release);
            } else {
              prev->next.store(next, std::memory_order_release);
            }
            retired.push_back(v);
          } else {
            prev = v;
          }
          v = next;
        }
        if (slot->head.load(std::memory_order_acquire) == nullptr) {
          any_dead_slot = true;
        }
      }
      if (any_dead_slot) {
        // Fully dead slots leave the shard (readers holding pinned
        // shared_ptrs keep them alive and see empty chains).
        std::unique_lock<std::shared_mutex> sl(shard->struct_mu);
        for (auto it = shard->index.begin(); it != shard->index.end();) {
          if (it->second->head.load(std::memory_order_acquire) == nullptr) {
            it = shard->index.erase(it);
          } else {
            ++it;
          }
        }
        shard->slots.erase(
            std::remove_if(shard->slots.begin(), shard->slots.end(),
                           [](const std::shared_ptr<Slot>& s) {
                             return s->head.load(
                                        std::memory_order_acquire) == nullptr;
                           }),
            shard->slots.end());
      }
    }
  }
  if (!retired.empty() && txns != nullptr) txns->Retire(std::move(retired));
  // Secondary indexes hold their own slot references: drop entries
  // whose chain is fully gone so vacuumed slots actually free.
  if (index_count_.load(std::memory_order_acquire) != 0) {
    std::shared_lock<std::shared_mutex> il(index_mu_);
    for (const auto& idx : indexes_) idx->PruneDeadSlots();
  }
  BumpStatsEpoch();
}

void Table::NoteVersionForIndexes(const catalog::Row& row,
                                  const std::shared_ptr<Slot>& slot) {
  if (index_count_.load(std::memory_order_acquire) == 0) return;
  std::shared_lock<std::shared_mutex> il(index_mu_);
  for (const auto& idx : indexes_) idx->AddEntry(row, slot);
}

Status Table::CreateIndex(const std::string& name,
                          const std::vector<std::string>& columns,
                          const IndexTaskRunner& runner) {
  if (columns.empty()) {
    return Status::InvalidArgument("index " + name + " on table " + name_ +
                                   " must cover at least one column");
  }
  std::vector<size_t> col_idx;
  std::vector<std::string> resolved;
  col_idx.reserve(columns.size());
  for (const std::string& col : columns) {
    EQSQL_ASSIGN_OR_RETURN(size_t idx, schema_.ResolveColumn(col));
    col_idx.push_back(idx);
    resolved.push_back(schema_.column(idx).name);
  }
  // Bucket count bounds writer contention, not capacity; it is
  // independent of the table's shard layout so Repartition never
  // invalidates the index.
  auto index = std::make_shared<SecondaryIndex>(name, std::move(resolved),
                                                std::move(col_idx), 16);
  {
    std::unique_lock<std::shared_mutex> il(index_mu_);
    for (const auto& existing : indexes_) {
      if (existing->name() == name) {
        return Status::InvalidArgument("index " + name +
                                       " already exists on table " + name_);
      }
    }
    // Registered before the backfill: from here on every writer notes
    // new versions into the index, and AddEntry's per-(key, slot)
    // idempotence makes the backfill/writer overlap safe.
    indexes_.push_back(index);
    index_count_.store(indexes_.size(), std::memory_order_release);
  }
  size_t shard_total;
  {
    std::shared_lock<std::shared_mutex> topology(topology_mu_);
    shard_total = shards_.size();
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shard_total);
  for (size_t s = 0; s < shard_total; ++s) {
    tasks.push_back([this, s, index] {
      // PinShard copies the slot pointers under the structural lock;
      // the chain walk itself is the same lock-free traversal readers
      // do. Every non-aborted version is indexed — committed-deleted
      // versions may still be visible to an old snapshot, and pending
      // ones may commit.
      for (const auto& slot : PinShard(s)) {
        for (const Version* v = slot->head.load(std::memory_order_acquire);
             v != nullptr; v = v->next.load(std::memory_order_acquire)) {
          if (v->begin.load(std::memory_order_acquire) == kTsAborted) continue;
          index->AddEntry(v->row, slot);
        }
      }
    });
  }
  if (runner != nullptr) {
    runner(std::move(tasks));
  } else {
    for (auto& task : tasks) task();
  }
  index->MarkReady();
  return Status::OK();
}

std::shared_ptr<const SecondaryIndex> Table::FindIndex(
    const std::vector<std::string>& columns) const {
  if (index_count_.load(std::memory_order_acquire) == 0) return nullptr;
  std::shared_lock<std::shared_mutex> il(index_mu_);
  for (const auto& idx : indexes_) {
    if (idx->ready() && idx->columns() == columns) return idx;
  }
  return nullptr;
}

std::shared_ptr<const SecondaryIndex> Table::FindIndexForColumnSet(
    const std::vector<std::string>& columns) const {
  if (index_count_.load(std::memory_order_acquire) == 0) return nullptr;
  std::shared_lock<std::shared_mutex> il(index_mu_);
  for (const auto& idx : indexes_) {
    if (!idx->ready() || idx->columns().size() != columns.size()) continue;
    bool all = true;
    for (const std::string& col : idx->columns()) {
      if (std::find(columns.begin(), columns.end(), col) == columns.end()) {
        all = false;
        break;
      }
    }
    if (all) return idx;
  }
  return nullptr;
}

std::vector<std::vector<std::string>> Table::IndexedColumnLists() const {
  std::vector<std::vector<std::string>> out;
  if (index_count_.load(std::memory_order_acquire) == 0) return out;
  std::shared_lock<std::shared_mutex> il(index_mu_);
  for (const auto& idx : indexes_) {
    if (idx->ready()) out.push_back(idx->columns());
  }
  return out;
}

TableScanStats Table::VisibleStats(const Snapshot& snap) const {
  // Memo hit: nothing changed any visible set since the cached walk and
  // the caller reads at the same snapshot, so the answer is identical.
  const uint64_t epoch = stats_epoch_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> cache(stats_cache_mu_);
    if (stats_cache_valid_ && stats_cache_epoch_ == epoch &&
        stats_cache_snap_.ts == snap.ts &&
        stats_cache_snap_.txn_id == snap.txn_id) {
      return stats_cache_;
    }
  }
  TableScanStats stats;
  {
    std::shared_lock<std::shared_mutex> topology(topology_mu_);
    for (const auto& shard : shards_) {
      std::vector<std::shared_ptr<Slot>> local;
      {
        std::shared_lock<std::shared_mutex> sl(shard->struct_mu);
        local = shard->slots;
      }
      for (const auto& slot : local) {
        const catalog::Row* row = slot->VisibleRow(snap);
        if (row == nullptr) continue;
        ++stats.rows;
        stats.bytes += catalog::RowWireSize(*row);
      }
    }
  }
  std::lock_guard<std::mutex> cache(stats_cache_mu_);
  // Re-check the epoch: a writer may have raced our walk, in which case
  // this result may reflect a half-installed state for Snapshot::Latest
  // readers — don't let it outlive the race window.
  if (stats_epoch_.load(std::memory_order_acquire) == epoch) {
    stats_cache_valid_ = true;
    stats_cache_epoch_ = epoch;
    stats_cache_snap_ = snap;
    stats_cache_ = stats;
  }
  return stats;
}

}  // namespace eqsql::storage
