// Reproduces the paper's Experiment 3: extraction of equivalent SQL for
// keyword-search systems over form interfaces. For each servlet, the
// extracted queries must retrieve exactly the data the form prints;
// result ordering is not relevant in this setting.
//
// Expected shape: RuBiS 17/17, RuBBoS 16/16, AcadPortal 58/79.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/optimizer.h"
#include "frontend/parser.h"
#include "workloads/servlets.h"

namespace {

int CountComplete(eqsql::core::EqSqlOptimizer* optimizer,
                  const std::vector<eqsql::workloads::Servlet>& servlets,
                  int* total) {
  int complete = 0;
  *total = static_cast<int>(servlets.size());
  for (const eqsql::workloads::Servlet& servlet : servlets) {
    auto program = eqsql::bench::ValueOrDie(
        eqsql::frontend::ParseProgram(servlet.source), "parse servlet");
    auto ks = optimizer->ExtractQueriesForKeywordSearch(program,
                                                        servlet.function);
    if (ks.ok() && ks->complete) ++complete;
  }
  return complete;
}

}  // namespace

int main() {
  eqsql::bench::PrintHeader(
      "Experiment 3: keyword-search query extraction from servlets");

  eqsql::core::OptimizeOptions options;
  options.transform.table_keys = eqsql::workloads::ServletTableKeys();
  eqsql::core::EqSqlOptimizer optimizer(options);

  int total = 0;
  int rubis = CountComplete(&optimizer, eqsql::workloads::RubisServlets(),
                            &total);
  std::printf("RuBiS:      %2d/%2d servlets fully extracted (paper: 17/17)\n",
              rubis, total);
  int rubbos = CountComplete(&optimizer, eqsql::workloads::RubbosServlets(),
                             &total);
  std::printf("RuBBoS:     %2d/%2d servlets fully extracted (paper: 16/16)\n",
              rubbos, total);
  int acad = CountComplete(&optimizer,
                           eqsql::workloads::AcadPortalServlets(), &total);
  std::printf("AcadPortal: %2d/%2d servlets fully extracted (paper: 58/79)\n",
              acad, total);

  // Show a few extracted queries, as the paper's keyword-search systems
  // would consume them.
  std::printf("\nSample extracted queries (RuBiS):\n");
  int shown = 0;
  for (const eqsql::workloads::Servlet& servlet :
       eqsql::workloads::RubisServlets()) {
    auto program = eqsql::bench::ValueOrDie(
        eqsql::frontend::ParseProgram(servlet.source), "parse servlet");
    auto ks = optimizer.ExtractQueriesForKeywordSearch(program,
                                                       servlet.function);
    if (!ks.ok() || !ks->complete || ks->queries.empty()) continue;
    std::printf("  [%s] %s\n", servlet.name.c_str(),
                ks->queries[0].c_str());
    if (++shown == 6) break;
  }
  return 0;
}
