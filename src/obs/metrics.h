#ifndef EQSQL_OBS_METRICS_H_
#define EQSQL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eqsql::obs {

/// A lock-free monotonic counter, striped across cache-line-aligned
/// cells so concurrent writers from different threads do not bounce one
/// cache line. Add() picks a cell by a thread-local stripe index;
/// Value() sums the cells.
///
/// Counter-valued metrics carry the determinism contract: for a fixed
/// workload their totals must not depend on shard count or thread
/// interleaving (see tests/shard_invariance_test.cc). Timing belongs in
/// Histogram, never here.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    cells_[StripeIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const {
    int64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  static constexpr size_t kStripes = 8;

  static size_t StripeIndex();

  Cell cells_[kStripes];
};

/// Exported state of one histogram: total count/sum/max plus the
/// occupied power-of-two buckets as (upper_bound, count) pairs.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  std::vector<std::pair<int64_t, int64_t>> buckets;

  /// Upper bucket boundary containing the q-th quantile (q in [0, 1]),
  /// clamped to `max` so the tail estimate never exceeds an observed
  /// value. Returns 0 for an empty histogram. Bucket resolution is a
  /// power of two, so this is an upper-bound estimate, not an exact
  /// order statistic — good enough for p50/p99 dashboards.
  int64_t ValueAtQuantile(double q) const;
};

/// A bucketed latency histogram with power-of-two bucket boundaries
/// (bucket i counts values <= 2^i, the last bucket is unbounded).
/// Record() is wait-free apart from a CAS loop maintaining the max.
/// Values are whatever unit the recording site chooses — by convention
/// nanoseconds for *_ns metrics. Timing histograms are exempt from the
/// shard-count-invariance contract and are excluded from those tests.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  static constexpr size_t kBuckets = 48;

  std::atomic<int64_t> counts_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Point-in-time export of a registry: counter values and histogram
/// states keyed by metric name (sorted, so rendering is deterministic).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  std::string ToJson() const;
  std::string ToText() const;
};

/// A process- or server-wide registry of named metrics.
///
/// Locking: the registry mutex guards only the name -> metric maps.
/// Metric mutation (Counter::Add, Histogram::Record) is lock-free on
/// stable pointers, so hot paths resolve their handles once (at wiring
/// time) and never touch the mutex again. The registry mutex is a LEAF
/// lock: no code may acquire a storage shard/topology lock, the worker
/// pool mutex, or the plan cache mutex while holding it — it is taken
/// briefly for name resolution and snapshotting only, which keeps the
/// "registry is never held across shard locks" rule trivially true.
///
/// Returned handles stay valid for the registry's lifetime (metrics are
/// never removed).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Histogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace eqsql::obs

#endif  // EQSQL_OBS_METRICS_H_
