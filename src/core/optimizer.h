#ifndef EQSQL_CORE_OPTIMIZER_H_
#define EQSQL_CORE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "frontend/ast.h"
#include "rules/transform.h"
#include "sql/generator.h"

namespace eqsql::core {

/// Options for a full optimization run.
struct OptimizeOptions {
  rules::TransformOptions transform;
  /// Dialect used for the *reported* SQL (the rewritten program always
  /// embeds the round-trippable kDefault dialect).
  sql::Dialect dialect = sql::Dialect::kDefault;
};

/// Outcome for one (loop, variable) extraction attempt.
struct VarOutcome {
  std::string var;
  bool extracted = false;
  std::vector<std::string> sql;  // queries embedded in the replacement
  std::string reason;            // failure reason when !extracted
  /// Transformation rules applied while lifting this variable ("T1",
  /// "T5.1", ..., "ARGMAX" for the App. B extension). Populated even
  /// when the Sec. 5.3 cost heuristic later declines the extraction;
  /// the fuzz harness uses this for rule-coverage accounting.
  std::vector<std::string> rules;
};

/// Result of optimizing one function.
struct OptimizeResult {
  frontend::Program program;  // rewritten program (all functions)
  bool changed = false;
  std::vector<VarOutcome> outcomes;
  /// Wall-clock time spent on analysis + transformation + rewriting.
  double extraction_ms = 0.0;

  /// True if at least one variable was extracted.
  bool any_extracted() const {
    for (const VarOutcome& o : outcomes) {
      if (o.extracted) return true;
    }
    return false;
  }
};

/// Result of keyword-search query extraction (paper Experiment 3).
struct KeywordSearchResult {
  /// True when every piece of printed data is covered by extracted
  /// queries (no fold/loop/opaque residue).
  bool complete = false;
  std::vector<std::string> queries;
};

/// The EqSQL optimizer (the paper's primary contribution, Fig. 1):
/// source program -> D-IR -> F-IR -> rule-based transformation ->
/// equivalent SQL -> rewritten program with dead code removed.
class EqSqlOptimizer {
 public:
  explicit EqSqlOptimizer(OptimizeOptions options)
      : options_(std::move(options)) {}

  /// Optimizes `function` inside `program`. Extraction is per variable:
  /// variables whose loops cannot be converted keep their original
  /// imperative code (partial optimization, paper Sec. 7.1).
  Result<OptimizeResult> Optimize(const frontend::Program& program,
                                  const std::string& function);

  /// Extracts the set of queries that retrieve exactly the data printed
  /// by `function` (keyword-search mode: ordering-insensitive, paper
  /// Experiment 3).
  Result<KeywordSearchResult> ExtractQueriesForKeywordSearch(
      const frontend::Program& program, const std::string& function);

 private:
  OptimizeOptions options_;
};

}  // namespace eqsql::core

#endif  // EQSQL_CORE_OPTIMIZER_H_
