#include "frontend/lexer.h"

#include <cctype>
#include <unordered_set>

namespace eqsql::frontend {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>({
      "func", "if", "else", "for", "while", "return", "print", "break",
      "true", "false", "null",
  });
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Tok>> TokenizeImp(std::string_view input) {
  std::vector<Tok> tokens;
  size_t i = 0;
  const size_t n = input.size();
  int line = 1, col = 1;

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k) {
      if (input[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto push = [&](TokKind kind, std::string text, SourceLoc loc) {
    tokens.push_back(Tok{kind, std::move(text), 0, loc});
  };

  while (i < n) {
    char c = input[i];
    SourceLoc loc{line, col};
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '/') {
      while (i < n && input[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      advance(2);
      while (i + 1 < n && !(input[i] == '*' && input[i + 1] == '/')) {
        advance(1);
      }
      if (i + 1 >= n) {
        return Status::ParseError("unterminated block comment at line " +
                                  std::to_string(loc.line));
      }
      advance(2);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) advance(1);
      std::string word(input.substr(start, i - start));
      TokKind kind = Keywords().count(word) > 0 ? TokKind::kKeyword
                                                : TokKind::kIdent;
      push(kind, std::move(word), loc);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       (!is_double && input[i] == '.' && i + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(
                            input[i + 1]))))) {
        if (input[i] == '.') is_double = true;
        advance(1);
      }
      Tok t;
      t.kind = is_double ? TokKind::kDoubleLit : TokKind::kIntLit;
      t.text = std::string(input.substr(start, i - start));
      t.number = std::stod(t.text);
      t.loc = loc;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      advance(1);
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\\' && i + 1 < n) {
          char esc = input[i + 1];
          advance(2);
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '"': text += '"'; break;
            case '\\': text += '\\'; break;
            default:
              return Status::ParseError("bad escape at line " +
                                        std::to_string(loc.line));
          }
          continue;
        }
        if (input[i] == '"') {
          advance(1);
          closed = true;
          break;
        }
        text += input[i];
        advance(1);
      }
      if (!closed) {
        return Status::ParseError("unterminated string at line " +
                                  std::to_string(loc.line));
      }
      Tok t;
      t.kind = TokKind::kStringLit;
      t.text = std::move(text);
      t.loc = loc;
      tokens.push_back(std::move(t));
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < n && input[i + 1] == second;
    };
    switch (c) {
      case '(': push(TokKind::kLParen, "(", loc); advance(1); break;
      case ')': push(TokKind::kRParen, ")", loc); advance(1); break;
      case '{': push(TokKind::kLBrace, "{", loc); advance(1); break;
      case '}': push(TokKind::kRBrace, "}", loc); advance(1); break;
      case ',': push(TokKind::kComma, ",", loc); advance(1); break;
      case ';': push(TokKind::kSemi, ";", loc); advance(1); break;
      case ':': push(TokKind::kColon, ":", loc); advance(1); break;
      case '.': push(TokKind::kDot, ".", loc); advance(1); break;
      case '?': push(TokKind::kQuestion, "?", loc); advance(1); break;
      case '+': push(TokKind::kPlus, "+", loc); advance(1); break;
      case '-': push(TokKind::kMinus, "-", loc); advance(1); break;
      case '*': push(TokKind::kStar, "*", loc); advance(1); break;
      case '/': push(TokKind::kSlash, "/", loc); advance(1); break;
      case '%': push(TokKind::kPercent, "%", loc); advance(1); break;
      case '=':
        if (two('=')) {
          push(TokKind::kEq, "==", loc);
          advance(2);
        } else {
          push(TokKind::kAssign, "=", loc);
          advance(1);
        }
        break;
      case '!':
        if (two('=')) {
          push(TokKind::kNe, "!=", loc);
          advance(2);
        } else {
          push(TokKind::kBang, "!", loc);
          advance(1);
        }
        break;
      case '<':
        if (two('=')) {
          push(TokKind::kLe, "<=", loc);
          advance(2);
        } else {
          push(TokKind::kLt, "<", loc);
          advance(1);
        }
        break;
      case '>':
        if (two('=')) {
          push(TokKind::kGe, ">=", loc);
          advance(2);
        } else {
          push(TokKind::kGt, ">", loc);
          advance(1);
        }
        break;
      case '&':
        if (two('&')) {
          push(TokKind::kAndAnd, "&&", loc);
          advance(2);
        } else {
          return Status::ParseError("unexpected '&' at line " +
                                    std::to_string(loc.line));
        }
        break;
      case '|':
        if (two('|')) {
          push(TokKind::kOrOr, "||", loc);
          advance(2);
        } else {
          return Status::ParseError("unexpected '|' at line " +
                                    std::to_string(loc.line));
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(loc.line));
    }
  }
  tokens.push_back(Tok{TokKind::kEnd, "", 0, SourceLoc{line, col}});
  return tokens;
}

}  // namespace eqsql::frontend
