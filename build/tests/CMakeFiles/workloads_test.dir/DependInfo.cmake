
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/eqsql_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eqsql_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/eqsql_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/eqsql_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/eqsql_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/eqsql_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/dir/CMakeFiles/eqsql_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/eqsql_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eqsql_net.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/eqsql_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eqsql_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/eqsql_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/eqsql_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eqsql_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eqsql_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/eqsql_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eqsql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
