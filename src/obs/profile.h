// Per-request operator profiling, the sampled-trace ring buffer, and
// the structured slow-query log.
//
// A Profile is a tree of ProfileNodes mirroring the executed plan: one
// node per plan operator actually run, keyed by the plan node's address
// (RaNodePtr trees are immutable and shared, so the address is a stable
// identity for the lifetime of the request). Correlated subqueries and
// OuterApply re-execute the same plan node many times; ChildFor folds
// those executions into one node (execs counts them), so the tree is
// bounded by plan size, not by data size.
//
// Threading contract: the tree STRUCTURE (ChildFor, labels, rows_out,
// wall_ns, shard-slot sizing) is mutated only by the executor's main
// thread. Shard tasks touch exactly two things: the atomic rows_in /
// batches accumulators, and their own pre-sized shard slot (one writer
// per slot, published by the worker-pool barrier) — the same discipline
// the parallel operators already use for their result vectors.
//
// TraceRing and SlowQueryLog are the bounded sinks behind --trace-sample
// and --slow-query-ms. Both are lock-striped / mutex-guarded, never
// block on I/O in the hot path, and count drops instead of growing.
#ifndef EQSQL_OBS_PROFILE_H_
#define EQSQL_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eqsql::obs {

/// Actual execution stats for one plan operator.
struct ProfileNode {
  /// Operator label; starts as the logical RaOp name, overwritten by the
  /// physical choice when a fast path wins (KeyLookup, IndexScan,
  /// IndexNestedLoopJoin) or a fused vector pipeline runs.
  std::string label;
  /// Identity of the plan node this operator executed (opaque; used to
  /// match cost-estimator numbers onto the tree).
  const void* plan_node = nullptr;

  /// Rows read from storage while this operator was current (mirrors the
  /// storage.scan.rows charges attributed to it). Shard tasks add here.
  std::atomic<int64_t> rows_in{0};
  /// Vector batches materialized while this operator was current
  /// (mirrors exec.batch.batches). Shard tasks add here.
  std::atomic<int64_t> batches{0};
  /// Rows this operator returned to its parent, summed over executions.
  int64_t rows_out = 0;
  /// Times the operator ran (>1 for correlated subqueries / apply).
  int64_t execs = 0;
  /// Wall time inside the operator, inclusive of children.
  int64_t wall_ns = 0;

  /// Cost-estimator numbers for the same plan node; negative until
  /// annotated.
  double est_rows = -1.0;
  double est_cost_ms = -1.0;

  /// Per-shard breakdown for parallel operators: slot s is written only
  /// by the task that scanned shard s.
  struct ShardSlot {
    int64_t rows = 0;
    int64_t wall_ns = 0;
  };
  std::vector<ShardSlot> shards;

  std::vector<std::unique_ptr<ProfileNode>> children;
};

/// One request's operator-profile tree. Owned by whoever attached it to
/// the executor (EXPLAIN ANALYZE, the trace sampler, or the slow-query
/// logger); the executor only borrows a pointer.
class Profile {
 public:
  Profile() = default;
  Profile(const Profile&) = delete;
  Profile& operator=(const Profile&) = delete;

  /// Finds `parent`'s child for `plan_node`, creating it (with `label`)
  /// on first execution. parent == nullptr addresses the root. Main
  /// executor thread only.
  ProfileNode* ChildFor(ProfileNode* parent, const void* plan_node,
                        std::string_view label);

  ProfileNode* root() { return root_.get(); }
  const ProfileNode* root() const { return root_.get(); }
  bool empty() const { return root_ == nullptr; }

  /// Indented operator tree, one line per operator, estimated and actual
  /// columns side by side.
  std::string ToText() const;
  /// Nested JSON object mirroring ToText.
  std::string ToJson() const;

 private:
  std::unique_ptr<ProfileNode> root_;
};

/// A completed sampled request, as stored in the trace ring.
struct TraceRecord {
  int64_t trace_id = 0;
  std::string statement;
  std::string status;  // "ok" or the failing status code name
  int64_t queue_wait_ns = 0;
  int64_t total_ns = 0;
  std::string exec_mode;
  int64_t shard_count = 0;
  std::string trace_json;    // span tree (obs::Trace::ToJson)
  std::string profile_text;  // operator tree (Profile::ToText)
  std::string profile_json;  // operator tree (Profile::ToJson)
};

/// Bounded lock-striped ring of recently sampled requests. Push is
/// O(1) under one stripe mutex; when a stripe is full the oldest record
/// in that stripe is evicted and counted, never blocking the caller.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 256, size_t stripes = 8);

  void Push(TraceRecord rec);
  /// All retained records, ascending trace id.
  std::vector<TraceRecord> Snapshot() const;
  /// Records evicted to make room (not an error; the ring is a window).
  int64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }
  size_t capacity() const { return stripes_.size() * per_stripe_; }

  /// {"evicted":N,"records":[...]} — the --dump-profiles payload.
  std::string ToJson() const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::deque<TraceRecord> ring;
  };
  std::vector<std::unique_ptr<Stripe>> stripes_;
  size_t per_stripe_;
  std::atomic<int64_t> evicted_{0};
};

/// Bounded buffer of structured slow-query JSON lines. Append never
/// blocks on I/O: lines accumulate in memory (dropping the newest, with
/// a counter, once full) and Flush writes them to the configured path.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 1024, std::string path = "");

  void Append(std::string json_line);
  std::vector<std::string> Lines() const;
  int64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  const std::string& path() const { return path_; }

  /// Appends all buffered lines to path() (no-op when unset or empty
  /// buffer) and clears the buffer. Returns false on I/O failure.
  bool Flush();

 private:
  const size_t capacity_;
  const std::string path_;
  mutable std::mutex mu_;
  std::deque<std::string> lines_;
  std::atomic<int64_t> emitted_{0};
  std::atomic<int64_t> dropped_{0};
};

/// JSON string-body escaping shared by the observability sinks.
std::string JsonEscapeString(std::string_view s);

}  // namespace eqsql::obs

#endif  // EQSQL_OBS_PROFILE_H_
