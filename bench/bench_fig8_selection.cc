// Reproduces the paper's Figure 8 (Experiment 5, Selection): a loop
// that filters rows client-side (Wilos sample #6 pattern) versus the
// rewritten query with the predicate pushed into WHERE, at 20%
// selectivity across table sizes.
//
// Expected shape: the transformed program is faster and transfers less
// data; the gap widens as the table grows (only 20% of rows — and only
// two columns — cross the wire).

#include <cstdio>

#include "bench/perf_util.h"
#include "core/optimizer.h"
#include "frontend/parser.h"
#include "workloads/benchmark_apps.h"
#include "workloads/wilos_samples.h"

int main() {
  eqsql::bench::PrintHeader(
      "Figure 8: Selection (20% selectivity), original vs transformed");
  std::printf("%10s %14s %14s %14s %14s %8s\n", "rows", "orig ms",
              "eqsql ms", "orig KB", "eqsql KB", "speedup");

  auto program = eqsql::bench::ValueOrDie(
      eqsql::frontend::ParseProgram(eqsql::workloads::SelectionProgram()),
      "parse");
  eqsql::core::OptimizeOptions options;
  options.transform.table_keys = {{"project", "id"}};
  eqsql::core::EqSqlOptimizer optimizer(options);
  auto optimized = eqsql::bench::ValueOrDie(
      optimizer.Optimize(program, "unfinished"), "optimize");
  if (!optimized.any_extracted()) {
    std::fprintf(stderr, "selection did not extract\n");
    return 1;
  }

  for (int rows : {1000, 5000, 20000, 50000, 100000}) {
    eqsql::storage::Database db;
    eqsql::bench::CheckOk(
        eqsql::workloads::SetupSelectionDatabase(&db, rows, 20), "setup");
    auto original =
        eqsql::bench::RunInterpreted(program, "unfinished", &db);
    auto rewritten = eqsql::bench::RunInterpreted(optimized.program,
                                                  "unfinished", &db);
    if (original.result != rewritten.result) {
      std::fprintf(stderr, "MISMATCH at %d rows\n", rows);
      return 1;
    }
    std::printf("%10d %14.3f %14.3f %14.1f %14.1f %7.2fx\n", rows,
                original.ms, rewritten.ms, original.bytes / 1024.0,
                rewritten.bytes / 1024.0, original.ms / rewritten.ms);
  }
  std::printf("\nExtracted SQL: %s\n",
              optimized.outcomes[0].sql.empty()
                  ? "(none)"
                  : optimized.outcomes[0].sql[0].c_str());
  return 0;
}
