#ifndef EQSQL_CORE_PLAN_CACHE_H_
#define EQSQL_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/optimizer.h"
#include "obs/metrics.h"
#include "ra/ra_node.h"

namespace eqsql::core {

struct ExtractionPlan;  // core/alternative_selector.h

/// Counters for one PlanCache. A snapshot is taken under the cache
/// mutex, so the numbers in one snapshot are mutually consistent.
struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  /// Lines dropped by InvalidateTable (DDL-driven, not LRU pressure).
  int64_t invalidations = 0;

  double hit_ratio() const {
    int64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(lookups);
  }
};

/// A thread-safe LRU cache memoizing the two expensive front halves of
/// the request path, keyed by a 64-bit digest of the request text:
///
///   1. SQL text        -> parsed relational-algebra plan (GetOrParseSql)
///   2. program source  -> full parse -> analyze -> transform -> rewrite
///      + entry + opts     extraction result        (GetOrOptimize)
///
/// Plans are shared_ptr<const RaNode> and OptimizeResults are published
/// as shared_ptr<const OptimizeResult>; both are immutable after
/// construction, so N sessions can execute the same cached plan
/// concurrently while it is being evicted by an (N+1)-th — the
/// shared_ptr keeps the entry alive past eviction.
///
/// Locking discipline: one mutex guards the map + LRU list + stats, and
/// is held only for lookups and insertions — never across a parse or an
/// optimize. Two sessions missing on the same key may therefore both
/// compute the entry (a benign "stampede": the pipeline is deterministic
/// so both compute identical values, and the second insert just
/// refreshes the line). This trades a rare duplicate computation for
/// never serializing misses behind one another.
class PlanCache {
 public:
  /// `capacity` is the maximum number of resident entries across both
  /// entry kinds; least-recently-used lines are evicted beyond it.
  explicit PlanCache(size_t capacity = 256);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `sql`, parsing and inserting on miss.
  /// Parse errors are returned and never cached (an erroring request
  /// should not poison the cache nor pin a line).
  Result<ra::RaNodePtr> GetOrParseSql(std::string_view sql);

  /// Returns the cached extraction result for (`source`, `function`)
  /// under `options`, running the full EqSqlOptimizer pipeline on miss.
  /// The options participate in the key, so sessions with different
  /// dialects or rule ablations never alias each other's entries.
  Result<std::shared_ptr<const OptimizeResult>> GetOrOptimize(
      const std::string& source, const std::string& function,
      const OptimizeOptions& options);

  /// Computes a full selection (AlternativeSelector output).
  using SelectFn =
      std::function<Result<std::shared_ptr<const ExtractionPlan>>()>;

  /// Returns the cached alternative-selection plan for (`source`,
  /// `function`, `options`), running `compute` on miss. A resident line
  /// is only served while its recorded statistics epoch equals
  /// `stats_epoch`; a mismatch (the database changed — a table grew, an
  /// index appeared) counts as an invalidation and re-selects, so the
  /// chosen alternative tracks live data. The OptimizeResult half of
  /// the work stays warm: `compute` typically calls GetOrOptimize,
  /// which keys without the epoch.
  Result<std::shared_ptr<const ExtractionPlan>> GetOrSelect(
      const std::string& source, const std::string& function,
      const OptimizeOptions& options, uint64_t stats_epoch,
      const SelectFn& compute);

  PlanCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  /// Mixes `salt` into every lookup key. The server salts its cache
  /// with the database's shard configuration so entries computed under
  /// one sharding can never alias a differently-configured server's
  /// (e.g. if a cache is ever shared or serialized across servers).
  /// Changing the salt effectively empties the cache. Not thread-safe:
  /// set before concurrent use.
  void set_key_salt(uint64_t salt) { key_salt_ = salt; }

  /// Mirrors every stat increment into plan_cache.* counters of
  /// `metrics` (hits, misses, insertions, evictions, invalidations).
  /// Handles are resolved here once; increments are lock-free, so the
  /// registry mutex is never taken while the cache mutex is held. Not
  /// thread-safe: set before concurrent use.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Drops every line that references table `name` (case-insensitive):
  /// SQL entries record their scanned tables; program entries match by
  /// source-text mention (conservative — a false positive only costs a
  /// recomputation). Called by Session DDL (temp-table CREATE/DROP) so
  /// cached plans can never alias a renamed/reshaped table.
  void InvalidateTable(const std::string& name);

  /// Digest of a SQL request (FNV-1a over the text, namespaced so SQL
  /// and program entries cannot collide on equal text).
  static uint64_t DigestSql(std::string_view sql);

  /// Digest of an extraction request: source, entry function, and a
  /// fingerprint of every option that changes the pipeline's output.
  static uint64_t DigestProgram(std::string_view source,
                                std::string_view function,
                                const OptimizeOptions& options);

 private:
  struct Entry {
    uint64_t key = 0;
    ra::RaNodePtr plan;                               // SQL entries
    std::shared_ptr<const OptimizeResult> optimized;  // program entries
    std::shared_ptr<const ExtractionPlan> selected;   // selection entries
    /// Database statistics epoch the selection was priced under
    /// (selection entries only); a lookup under a different epoch
    /// invalidates the line.
    uint64_t stats_epoch = 0;
    /// Lowercased names of tables the plan scans (SQL entries), for
    /// InvalidateTable.
    std::vector<std::string> tables;
    /// Lowercased program source (program entries), for conservative
    /// InvalidateTable matching by mention.
    std::string source_lower;
  };

  /// Post-mixes key_salt_ into a pure digest.
  uint64_t Salted(uint64_t digest) const;

  /// Looks up `key`, promoting the line to most-recently-used. Returns
  /// an owning copy of the entry payloads (never a reference — the line
  /// may be evicted the instant the mutex is released).
  bool Lookup(uint64_t key, Entry* out);

  /// Inserts (or refreshes) `entry`, evicting LRU lines beyond capacity.
  void Insert(Entry entry);

  const size_t capacity_;
  uint64_t key_salt_ = 0;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_insertions_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_invalidations_ = nullptr;
};

}  // namespace eqsql::core

#endif  // EQSQL_CORE_PLAN_CACHE_H_
