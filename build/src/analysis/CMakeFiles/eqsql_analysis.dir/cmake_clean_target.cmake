file(REMOVE_RECURSE
  "libeqsql_analysis.a"
)
