// Partial optimization and limitations (paper Sec. 5.4, Fig. 7): shows
// (a) a loop where one variable extracts and another (a dependent
// aggregation) cannot — the tool rewrites what it can and keeps the
// rest of the code intact; and (b) constructs that block extraction
// entirely, with the precondition that failed.
//
//   ./build/examples/partial_optimization

#include <cstdio>

#include "core/optimizer.h"
#include "frontend/parser.h"

namespace {

void Show(const char* title, const char* src, const char* function) {
  std::printf("=== %s ===\n%s\n", title, src);
  eqsql::core::OptimizeOptions options;
  options.transform.table_keys = {{"orders", "id"}};
  eqsql::core::EqSqlOptimizer optimizer(options);
  auto program = eqsql::frontend::ParseProgram(src);
  if (!program.ok()) {
    std::printf("parse error: %s\n\n", program.status().ToString().c_str());
    return;
  }
  auto result = optimizer.Optimize(*program, function);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  for (const eqsql::core::VarOutcome& o : result->outcomes) {
    if (o.extracted) {
      std::printf("* '%s' extracted: %s\n", o.var.c_str(),
                  o.sql.empty() ? "" : o.sql[0].c_str());
    } else {
      std::printf("* '%s' NOT extracted: %s\n", o.var.c_str(),
                  o.reason.c_str());
    }
  }
  std::printf("--- rewritten ---\n%s\n", result->program.ToString().c_str());
}

}  // namespace

int main() {
  // Paper Figure 7: agg is a clean accumulator; weighted depends on agg
  // across iterations, violating precondition P2.
  Show("dependent aggregation (Figure 7)", R"(
func report() {
  agg = 0;
  weighted = 0;
  rows = executeQuery("SELECT * FROM orders AS o");
  for (o : rows) {
    agg = agg + o.amount;
    weighted = weighted + agg;
  }
  return pair(agg, weighted);
}
)", "report");

  // Sec. 2: unconditional loop exits block conversion.
  Show("break in loop (Sec. 2 restriction)", R"(
func firstBig() {
  total = 0;
  rows = executeQuery("SELECT * FROM orders AS o");
  for (o : rows) {
    if (o.amount > 1000) { break; }
    total = total + o.amount;
  }
  return total;
}
)", "firstBig");

  // App. B argmax extension: the companion variable of a max update is
  // P2-blocked but lifts via ORDER BY ... LIMIT 1.
  Show("dependent aggregation rescued: argmax (App. B)", R"(
func biggestOrder() {
  best = 0;
  customer = "none";
  rows = executeQuery("SELECT * FROM orders AS o");
  for (o : rows) {
    if (o.amount > best) {
      best = o.amount;
      customer = o.buyer;
    }
  }
  return pair(customer, best);
}
)", "biggestOrder");

  // Updates inside the loop are preserved; the aggregate still lifts.
  Show("database update kept intact (Experiment 1 discussion)", R"(
func auditTotal() {
  total = 0;
  rows = executeQuery("SELECT * FROM orders AS o");
  for (o : rows) {
    total = total + o.amount;
    executeUpdate("INSERT INTO audit_log VALUES o");
  }
  return total;
}
)", "auditTotal");
  return 0;
}
