# Empty compiler generated dependencies file for eqsql_rewrite.
# This may be replaced when dependencies are built.
