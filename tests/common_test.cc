#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace eqsql {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "unexpected token");
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_EQ(StatusCodeToString(StatusCode::kPreconditionFailed),
            "PreconditionFailed");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kRuntimeError), "RuntimeError");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  EQSQL_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(-4).ok());
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(ParsePositive(5).value_or(-1), 5);
  EXPECT_EQ(ParsePositive(0).value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"a"}, ", "), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, StrSplit) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToUpper("from"), "FROM");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "were"));
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("select *", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
}

TEST(StringsTest, SqlEscape) {
  EXPECT_EQ(SqlEscape("o'brien"), "o''brien");
  EXPECT_EQ(SqlEscape("plain"), "plain");
}

}  // namespace
}  // namespace eqsql
