// Ablation over the transformation rule set (DESIGN.md experiment A1):
// disables one rule at a time and reports which of the headline
// extractions survive. This quantifies each rule's contribution —
// e.g. without T2 nothing with a conditional extracts; without T5.1 no
// scalar aggregate extracts; without T7 the star-schema report stays
// imperative.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/optimizer.h"
#include "frontend/parser.h"
#include "workloads/benchmark_apps.h"
#include "workloads/wilos_samples.h"

namespace {

struct Scenario {
  const char* name;
  std::string source;
  std::string function;
};

}  // namespace

int main() {
  eqsql::bench::PrintHeader("Ablation: per-rule contribution");

  std::vector<Scenario> scenarios = {
      {"selection(T2+T1)", eqsql::workloads::SelectionProgram(),
       "unfinished"},
      {"aggregation(T5.1)", eqsql::workloads::MatosoProgram(),
       "findMaxScore"},
      {"join(T4)", eqsql::workloads::JoinProgram(), "userRoles"},
      {"star-schema(T7)", eqsql::workloads::JobPortalProgram(),
       "jobReport"},
  };
  // The group-by scenario comes from the Wilos corpus (sample 13).
  for (const auto& s : eqsql::workloads::WilosSamples()) {
    if (s.index == 13) {
      scenarios.push_back({"group-by(T5.2)", s.source, s.function});
    }
  }

  std::vector<std::string> rule_sets = {"(none)", "T1",   "T2",  "T4",
                                        "T5.1",   "T5.2", "T7",  "EXISTS"};

  std::printf("%-14s", "disabled");
  for (const Scenario& s : scenarios) std::printf(" %18s", s.name);
  std::printf("\n");

  for (const std::string& disabled : rule_sets) {
    eqsql::core::OptimizeOptions options;
    options.transform.table_keys = eqsql::workloads::WilosTableKeys();
    options.transform.table_keys["wilosuser"] = "id";
    if (disabled != "(none)") {
      options.transform.disabled_rules = {disabled};
    }
    eqsql::core::EqSqlOptimizer optimizer(options);
    std::printf("%-14s", disabled.c_str());
    for (const Scenario& s : scenarios) {
      auto program = eqsql::bench::ValueOrDie(
          eqsql::frontend::ParseProgram(s.source), "parse");
      auto result = optimizer.Optimize(program, s.function);
      bool ok = result.ok() && result->any_extracted();
      std::printf(" %18s", ok ? "extracted" : "FAILS");
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: each column is one headline workload; a FAILS entry "
      "shows the disabled rule is load-bearing for it.\n");
  return 0;
}
