# Empty dependencies file for eqsql_interp.
# This may be replaced when dependencies are built.
