#include <gtest/gtest.h>

#include "core/cost_estimator.h"
#include "sql/parser.h"

namespace eqsql::core {
namespace {

CostEstimator MakeEstimator(int64_t rows) {
  TableStats stats;
  stats.table_rows = {{"t", rows},      {"applicants", rows},
                      {"details", rows}, {"role", rows / 40 + 1}};
  return CostEstimator(stats, net::CostModel());
}

ra::RaNodePtr Q(const char* sql) { return *sql::ParseSql(sql); }

TEST(CostEstimatorTest, SelectionShrinksCardinalityAndBytes) {
  CostEstimator est = MakeEstimator(30000);
  CostEstimate scan = est.EstimateQuery(Q("SELECT * FROM t"));
  CostEstimate filtered =
      est.EstimateQuery(Q("SELECT t.a AS a FROM t WHERE t.v > 10"));
  EXPECT_LT(filtered.cardinality, scan.cardinality);
  EXPECT_LT(filtered.bytes, scan.bytes);
  EXPECT_LT(filtered.Milliseconds(est.model()),
            scan.Milliseconds(est.model()));
}

TEST(CostEstimatorTest, PointPredicateEstimatesOneRow) {
  CostEstimator est = MakeEstimator(100000);
  CostEstimate lookup =
      est.EstimateQuery(Q("SELECT * FROM t WHERE t.id = 7"));
  EXPECT_DOUBLE_EQ(lookup.cardinality, 1.0);
  EXPECT_LT(lookup.rows_processed, 10.0);
}

TEST(CostEstimatorTest, ScalarAggregateShipsOneRow) {
  CostEstimator est = MakeEstimator(50000);
  CostEstimate agg = est.EstimateQuery(Q("SELECT MAX(t.v) AS m FROM t"));
  EXPECT_DOUBLE_EQ(agg.cardinality, 1.0);
  // Still processes the whole table server-side.
  EXPECT_GE(agg.rows_processed, 50000.0);
}

TEST(CostEstimatorTest, LoopPaysPerRowRoundTrips) {
  CostEstimator est = MakeEstimator(1000);
  CostEstimate loop =
      est.EstimateLoop(Q("SELECT * FROM applicants"), /*queries_per_row=*/4);
  EXPECT_EQ(loop.round_trips, 1 + 1000 * 4);
  CostEstimate apply = est.EstimateQuery(
      Q("SELECT * FROM applicants AS a OUTER APPLY (SELECT d.phone AS p "
        "FROM details AS d WHERE d.aid = a.id)"));
  EXPECT_EQ(apply.round_trips, 1);
  // The App. C decision: one apply query beats N*4 round trips.
  EXPECT_LT(apply.Milliseconds(est.model()),
            loop.Milliseconds(est.model()));
}

TEST(CostEstimatorTest, RewriteWinsTracksScale) {
  // Star-schema rewrite should win at any nontrivial scale...
  CostEstimator big = MakeEstimator(1000);
  ra::RaNodePtr apply = Q(
      "SELECT * FROM applicants AS a OUTER APPLY (SELECT d.phone AS p FROM "
      "details AS d WHERE d.aid = a.id)");
  ra::RaNodePtr outer = Q("SELECT * FROM applicants");
  EXPECT_TRUE(big.RewriteWins(apply, outer, 4));
  // ...and an aggregate over the loop's own query should win too (no
  // extra per-row queries, but the whole table stops crossing the wire).
  CostEstimator est = MakeEstimator(100000);
  EXPECT_TRUE(est.RewriteWins(Q("SELECT MAX(t.v) AS m FROM t"),
                              Q("SELECT * FROM t"), 0));
}

TEST(CostEstimatorTest, GroupByJoinCheaperThanPerGroupQueries) {
  CostEstimator est = MakeEstimator(40000);
  ra::RaNodePtr grouped = Q(
      "SELECT r.id, COUNT(t.id) AS c FROM role AS r LEFT OUTER JOIN t ON "
      "t.role_id = r.id GROUP BY r.id");
  ra::RaNodePtr outer = Q("SELECT * FROM role AS r");
  EXPECT_TRUE(est.RewriteWins(grouped, outer, 1));
}

TEST(CostEstimatorTest, UnknownTableUsesDefaults) {
  CostEstimator est(TableStats{}, net::CostModel());
  CostEstimate scan = est.EstimateQuery(Q("SELECT * FROM mystery"));
  EXPECT_GT(scan.cardinality, 0);
  EXPECT_GT(scan.bytes, 0);
}

}  // namespace
}  // namespace eqsql::core
