#ifndef EQSQL_STORAGE_TABLE_H_
#define EQSQL_STORAGE_TABLE_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"

namespace eqsql::storage {

/// An in-memory heap table, hash-partitioned across N shards. Each row
/// carries a table-wide insertion sequence number; a full scan
/// reassembles rows in sequence order, so the observable row order is
/// insertion order regardless of the shard count. This matters because
/// the paper's π operator is defined to preserve input order — and it
/// is what makes results shard-count-invariant (tests/
/// shard_invariance_test.cc proves it at 1, 2, and 8 shards).
///
/// Placement: when a unique key is declared, a row lives in the shard
/// its key value hashes to (so uniqueness is checkable per shard and a
/// point lookup touches exactly one shard); otherwise rows are placed
/// round-robin by sequence number.
///
/// Concurrency discipline (a topology lock over the shard vector, plus
/// one reader-writer lock per shard):
///  * Write methods (Insert, Clear, DeclareUniqueKey, SetShardCount,
///    ForEachRowExclusive) are internally synchronized and assume the
///    calling thread holds none of this table's locks. Insert, Clear
///    and ForEachRowExclusive take the topology lock shared, then the
///    shard locks they need in ascending shard order.
///    DeclareUniqueKey/SetShardCount take the topology lock exclusive:
///    they replace the shards_ vector itself, and the shared topology
///    hold on every other path is what keeps a concurrent Insert from
///    touching (or blocking on) a Shard about to be freed.
///  * Read methods (rows, shard_slots, LookupByKey, GetByKey) take no
///    locks. Concurrent readers must exclude writers by holding the
///    topology lock and the shard locks shared — net::Connection does
///    this via storage::ReadGuard around every query; single-threaded
///    setup code needs no locks.
class Table {
 public:
  /// One stored row plus its table-wide insertion sequence number.
  struct Slot {
    size_t seq = 0;
    catalog::Row row;
  };

  Table(std::string name, catalog::Schema schema, size_t shard_count = 1)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        shards_(std::max<size_t>(1, shard_count)) {
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  const std::string& name() const { return name_; }
  const catalog::Schema& schema() const { return schema_; }
  size_t shard_count() const { return shards_.size(); }
  size_t row_count() const { return size_.load(std::memory_order_acquire); }

  /// All rows in insertion order (gathered across shards). Returns a
  /// fresh vector: shards own their slots and there is no contiguous
  /// backing array to reference.
  std::vector<catalog::Row> rows() const;

  /// Appends a row; errors if arity does not match the schema or the
  /// declared unique key is violated. Takes exactly one shard lock.
  Status Insert(catalog::Row row);

  /// Declares column `column` as a unique key, re-partitions rows by
  /// key hash, and builds per-shard indexes. Errors if existing data
  /// violates uniqueness. Rule T4.1/T5.2 require the outer query's
  /// relation to have a key (paper Sec. 5.1).
  Status DeclareUniqueKey(const std::string& column);

  /// Name of the declared unique key column, if any.
  std::optional<std::string> unique_key() const { return unique_key_; }

  /// Point lookup via the unique-key index; returns the row's sequence
  /// number (its position in rows()) or nullopt. Touches one shard.
  std::optional<size_t> LookupByKey(const catalog::Value& key) const;

  /// Point lookup returning the row itself; nullopt if absent / no key.
  std::optional<catalog::Row> GetByKey(const catalog::Value& key) const;

  void Clear();

  /// Re-partitions existing rows across `n` shards (shard-count change
  /// at runtime, e.g. rebalancing a long-lived temp table). Takes every
  /// old shard lock exclusively; scan order is unaffected because order
  /// is defined by sequence numbers, not placement.
  Status SetShardCount(size_t n);

  /// The shard a row with key value `key` lives in (key-hash placement).
  size_t ShardOfKey(const catalog::Value& key) const;

  /// Applies `fn` to every row, shard by shard in ascending order,
  /// holding each shard's lock exclusively while its rows are visited.
  /// `fn` may mutate the row in place but must preserve arity and must
  /// not change the unique-key column (the key index maps keys to
  /// slots). An error aborts the walk; prior shards stay applied
  /// (statement-level, not transactional — like MySQL's non-atomic
  /// multi-row UPDATE on MyISAM, the paper's evaluation default).
  Status ForEachRowExclusive(
      const std::function<Status(catalog::Row* row)>& fn);

  /// Shard `i`'s lock. Exposed so ReadGuard can pin scans, DML-style
  /// writers can scope their exclusion, and tests can prove lock
  /// independence across shards.
  std::shared_mutex& shard_mutex(size_t i) const { return shards_[i]->mu; }

  /// The topology lock guarding the shards_ vector itself. External
  /// lockers (ReadGuard) hold it shared for as long as they hold any
  /// shard lock; it is always acquired before shard locks.
  std::shared_mutex& topology_mutex() const { return topology_mu_; }

  /// Shard `i`'s slots (seq + row). Readers must hold shard_mutex(i)
  /// shared in concurrent settings. Slot order within a shard is
  /// unspecified; order across the table is by Slot::seq.
  const std::vector<Slot>& shard_slots(size_t i) const {
    return shards_[i]->slots;
  }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::vector<Slot> slots;
    /// key value -> index into `slots` (only when a unique key is
    /// declared; keys hash-place into exactly one shard).
    std::unordered_map<catalog::Value, size_t, catalog::ValueHash> index;
  };

  /// Re-places every row under the exclusive topology lock. Validates
  /// placement (including uniqueness) before moving any row, so a
  /// failure leaves the table untouched. `new_count` of 0 keeps the
  /// current shard count (used by DeclareUniqueKey).
  Status Repartition(size_t new_count, const std::string* new_key);

  std::string name_;
  catalog::Schema schema_;
  /// Guards the shards_ vector itself (not row data): shared by every
  /// path that dereferences shards_, exclusive while Repartition
  /// rebuilds it and frees the old Shard objects. Acquired before any
  /// shard lock.
  mutable std::shared_mutex topology_mu_;
  /// unique_ptr keeps Shard addresses (and their mutexes) stable if the
  /// vector itself is rebuilt by SetShardCount.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::optional<std::string> unique_key_;
  size_t key_index_col_ = 0;
  /// Next insertion sequence number. Sequence numbers are dense
  /// (0..row_count-1): they are allocated only after validation
  /// succeeds, and rows are never deleted individually (Clear resets).
  std::atomic<size_t> next_seq_{0};
  std::atomic<size_t> size_{0};
};

}  // namespace eqsql::storage

#endif  // EQSQL_STORAGE_TABLE_H_
