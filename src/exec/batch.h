#ifndef EQSQL_EXEC_BATCH_H_
#define EQSQL_EXEC_BATCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "ra/scalar_expr.h"

namespace eqsql::exec {

/// Rows per column batch. 1024 keeps one batch's columns inside the
/// cache working set while amortizing per-batch dispatch to noise
/// (DuckDB-style DataChunk sizing).
inline constexpr size_t kBatchCapacity = 1024;

/// One scan chunk flowing through the vectorized operators: up to
/// kBatchCapacity rows materialized from a shard's visible MVCC
/// versions, parallel to their insertion sequence numbers, plus the
/// chunk's accumulated wire size. Rows are copies — version pointers
/// must not outlive the producing cursor's pin, since Vacuum retires
/// superseded versions concurrently.
struct Batch {
  std::vector<size_t> seqs;
  std::vector<catalog::Row> rows;
  size_t wire_bytes = 0;

  size_t size() const { return rows.size(); }
};

/// A column of evaluation results for one batch, in lane (row) order.
/// Typed tags are the fast path: a kInt / kBool vector holds only
/// non-null, error-free lanes, so kernels run tight loops over
/// primitive arrays. Anything else — NULLs, strings, doubles, mixed
/// runtime types, or per-lane evaluation errors — uses kBoxed, where
/// boxed[i] carries the lane's Value and errs[i] (allocated lazily on
/// the first error) its evaluation failure.
struct Vec {
  enum class Tag { kBoxed, kInt, kBool };

  Tag tag = Tag::kBoxed;
  size_t n = 0;
  std::vector<int64_t> ints;           // tag == kInt
  std::vector<uint8_t> bools;          // tag == kBool (0 / 1)
  std::vector<catalog::Value> boxed;   // tag == kBoxed
  std::vector<Status> errs;            // empty, or one per boxed lane
  bool has_err = false;

  /// Lane value. On boxed vectors callers must check ErrAt(i) first: an
  /// erroring lane's boxed slot holds a NULL placeholder.
  catalog::Value At(size_t i) const {
    switch (tag) {
      case Tag::kInt:
        return catalog::Value::Int(ints[i]);
      case Tag::kBool:
        return catalog::Value::Bool(bools[i] != 0);
      case Tag::kBoxed:
        break;
    }
    return boxed[i];
  }

  bool ErrAt(size_t i) const { return has_err && !errs[i].ok(); }
  const Status& ErrStatus(size_t i) const { return errs[i]; }

  void ResetInt(size_t size) {
    tag = Tag::kInt;
    n = size;
    ints.resize(size);
    bools.clear();
    boxed.clear();
    errs.clear();
    has_err = false;
  }
  void ResetBool(size_t size) {
    tag = Tag::kBool;
    n = size;
    bools.assign(size, 0);
    ints.clear();
    boxed.clear();
    errs.clear();
    has_err = false;
  }
  void ResetBoxed(size_t size) {
    tag = Tag::kBoxed;
    n = size;
    boxed.assign(size, catalog::Value::Null());
    ints.clear();
    bools.clear();
    errs.clear();
    has_err = false;
  }
  void SetErr(size_t i, Status s) {
    if (!has_err) {
      errs.assign(n, Status::OK());
      has_err = true;
    }
    errs[i] = std::move(s);
  }
};

/// A scalar expression compiled against one fixed input schema: column
/// references become positional indices and '?' parameters become
/// constants, so batch evaluation never resolves a name, never walks a
/// frame stack, and dispatches once per batch per node instead of once
/// per row. Lane errors follow the row engine's lazy-evaluation
/// semantics exactly: AND masks right-hand errors behind a boolean
/// FALSE left side, OR behind TRUE, and CASE surfaces only the taken
/// branch's error — so batch and row execution select the same error
/// on the same row.
///
/// Compile returns nullptr when the expression cannot run columnar —
/// an unresolved column (a correlated outer reference), an EXISTS /
/// NOT EXISTS subquery, or an unbound parameter — and the caller falls
/// back to the row engine, preserving its semantics verbatim.
class CompiledExpr {
 public:
  using ParamLookup = std::function<Result<catalog::Value>(int)>;

  static std::unique_ptr<CompiledExpr> Compile(const ra::ScalarExprPtr& expr,
                                               const catalog::Schema& schema,
                                               const ParamLookup& params);

  /// Evaluates over rows[0..n), writing one lane per row into `out`.
  /// Thread-safe: a compiled tree is immutable and may be evaluated by
  /// many shard tasks at once.
  void Eval(const catalog::Row* rows, size_t n, Vec* out) const;

 private:
  CompiledExpr() = default;

  ra::ScalarOp op_ = ra::ScalarOp::kLiteral;
  size_t col_ = 0;               // kColumnRef: positional index
  catalog::Value constant_;      // kLiteral (parameters fold to this)
  std::vector<std::unique_ptr<CompiledExpr>> kids_;
};

/// Appends to `sel` the lane indices whose value in `v` is boolean
/// TRUE — the filter's selection vector. Error lanes never select;
/// callers that must surface errors walk the vector themselves.
void AppendTruthySelection(const Vec& v, std::vector<uint32_t>* sel);

}  // namespace eqsql::exec

#endif  // EQSQL_EXEC_BATCH_H_
