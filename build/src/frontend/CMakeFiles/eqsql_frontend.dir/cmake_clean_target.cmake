file(REMOVE_RECURSE
  "libeqsql_frontend.a"
)
