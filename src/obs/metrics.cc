#include "obs/metrics.h"

#include <functional>
#include <sstream>
#include <thread>

namespace eqsql::obs {

namespace {

/// Minimal JSON string escaping; metric names are ASCII identifiers but
/// escaping keeps the output well-formed for any input.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

size_t Counter::StripeIndex() {
  // One hash per thread, cached: threads scatter across stripes and a
  // given thread always hits the same cell (good locality, no ordering
  // requirement — cells only ever sum).
  static thread_local const size_t stripe =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kStripes;
  return stripe;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  size_t bucket = 0;
  while (bucket + 1 < kBuckets &&
         value > (int64_t{1} << static_cast<int>(bucket))) {
    ++bucket;
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    int64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      out.buckets.emplace_back(int64_t{1} << static_cast<int>(i), n);
    }
  }
  return out;
}

int64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count <= 0 || buckets.empty()) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based: ceil(q * count).
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t seen = 0;
  for (const auto& [bound, n] : buckets) {
    seen += n;
    if (seen >= rank) return bound < max ? bound : max;
  }
  return max;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Copy the handle pointers under the mutex, then read the metrics
  // outside it: reads are racy-by-design (relaxed) against concurrent
  // recorders, and the registry mutex stays a leaf that protects only
  // the maps.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      counters.emplace_back(name, c.get());
    }
    histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  MetricsSnapshot out;
  for (const auto& [name, c] : counters) out.counters[name] = c->Value();
  for (const auto& [name, h] : histograms) {
    out.histograms[name] = h->Snapshot();
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"max\":" << h.max << ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [bound, n] : h.buckets) {
      if (!bfirst) out << ",";
      bfirst = false;
      out << "[" << bound << "," << n << "]";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " = " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    out << name << " = count " << h.count << ", sum " << h.sum << ", max "
        << h.max;
    if (h.count > 0) out << ", mean " << (h.sum / h.count);
    out << "\n";
  }
  return out.str();
}

}  // namespace eqsql::obs
