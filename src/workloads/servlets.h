#ifndef EQSQL_WORKLOADS_SERVLETS_H_
#define EQSQL_WORKLOADS_SERVLETS_H_

#include <map>
#include <string>
#include <vector>

namespace eqsql::workloads {

/// One servlet for the keyword-search experiment (paper Experiment 3):
/// a form handler that runs queries and prints the fetched data.
struct Servlet {
  std::string name;
  std::string function;
  std::string source;
  /// Ground truth: can all printed data be covered by extracted queries?
  bool expect_complete;
};

/// RuBiS (Rice University bidding system, ebay.com-like): 17 servlets,
/// all of which the paper's tool fully handles (17/17).
std::vector<Servlet> RubisServlets();

/// RuBBoS (bulletin board, slashdot.org-like): 16 servlets (16/16).
std::vector<Servlet> RubbosServlets();

/// AcadPortal (IIT Bombay academic portal): 79 servlets, 58 of which
/// extract fully (58/79); the rest use unsupported operations.
std::vector<Servlet> AcadPortalServlets();

/// Unique-key metadata for every table referenced by the servlet
/// corpora (rules T4/T5.2 need keys; extraction itself is static).
std::map<std::string, std::string> ServletTableKeys();

}  // namespace eqsql::workloads

#endif  // EQSQL_WORKLOADS_SERVLETS_H_
