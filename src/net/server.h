#ifndef EQSQL_NET_SERVER_H_
#define EQSQL_NET_SERVER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/alternative_selector.h"
#include "core/optimizer.h"
#include "exec/exec_mode.h"
#include "core/plan_cache.h"
#include "net/api.h"
#include "net/connection.h"
#include "net/cost_model.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "storage/database.h"

namespace eqsql::net {

class Scheduler;
class Session;

struct ServerOptions {
  /// Capacity of the shared plan/extraction cache (entries).
  size_t plan_cache_capacity = 512;
  /// Cost model handed to every session's connection.
  CostModel cost_model;
  /// Pipeline options used by Session::OptimizeCached. Part of the
  /// cache key, so changing them between sessions is safe (entries
  /// never alias across different options).
  core::OptimizeOptions optimize;
  /// Storage configuration: `database.shard_count` hash partitions per
  /// table (0 = hardware concurrency). Also salts the plan-cache keys.
  storage::DatabaseOptions database;
  /// Worker threads in the shared shard-execution pool. 0 = hardware
  /// concurrency minus one (at least 1). Submitting sessions always
  /// help drain the pool, so even 1 worker cannot deadlock progress.
  size_t exec_threads = 0;
  /// Minimum table row count before per-shard parallel operators engage
  /// (forwarded to every session's Executor).
  size_t parallel_threshold = 512;
  /// Execution engine for every session and scheduler worker link:
  /// vectorized batch-at-a-time by default, row-at-a-time as the
  /// runtime fallback (--exec-mode=row / EQSQL_EXEC_MODE=row). The two
  /// engines produce byte-identical results; only speed and the
  /// exec.batch.* observability differ.
  exec::ExecMode exec_mode = exec::DefaultExecMode();
  /// Worker threads in the request scheduler (the execution engine
  /// behind Session::Submit/Execute). 0 = default (2).
  size_t scheduler_workers = 0;
  /// Bound of the scheduler's admission queue; a full queue rejects
  /// submissions with kOverloaded instead of blocking the producer.
  size_t scheduler_queue_capacity = 256;
  /// Always-on sampled tracing: every admitted request gets a trace id,
  /// and every N-th one (1 = all) is captured — full span tree plus
  /// operator profile — into the server's bounded trace ring
  /// (SHOW PROFILES / SHOW TRACES / eqsql --dump-profiles). 0 disables
  /// sampling; when 0, the EQSQL_TRACE_SAMPLE environment variable
  /// supplies a default. Sampling never touches the simulated clock or
  /// any layout-invariant counter.
  size_t trace_sample = 0;
  /// Capacity of the sampled-trace ring buffer (records retained).
  size_t trace_ring_capacity = 256;
  /// Requests whose total latency (queue wait + execution wall time)
  /// meets or exceeds this many milliseconds append a structured JSON
  /// line to the slow-query log. <= 0 disables.
  double slow_query_ms = 0;
  /// File the slow-query log flushes to on server shutdown (empty =
  /// in-memory only; lines stay inspectable via Server::slow_log()).
  std::string slow_query_log_path;
};

/// Server-wide aggregate counters. Closed sessions fold their exact
/// stats in when destroyed; live (unclosed) sessions and the
/// scheduler's worker links contribute the snapshot their owner thread
/// last published after a completed operation (Connection::ApproxStats).
/// A snapshot taken after workers join is therefore exact, and one
/// taken mid-flight is complete up to each link's last finished
/// operation — never zero for a link that has already done work.
struct ServerStats {
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  /// Sum of every closed session's ConnectionStats, every live
  /// session's last published snapshot, and every scheduler worker
  /// link's snapshot (scheduler-executed work lands on the worker's
  /// connection, not the submitting session's).
  ConnectionStats totals;
  /// Longest simulated time across links (closed and live sessions plus
  /// scheduler worker links). Each link simulates an independent client
  /// connection, so totals.simulated_ms is the *serialized* cost of the
  /// work while max_session_simulated_ms is the *concurrent* makespan —
  /// their ratio is the architectural speedup the benchmark reports.
  double max_session_simulated_ms = 0.0;
  core::PlanCacheStats plan_cache;
};

/// A concurrent multi-session server: one shared storage::Database
/// (reader-writer locked via Connection) plus one shared core::PlanCache
/// that memoizes parse -> optimize -> extract across sessions.
///
/// Thread model: Connect() and stats() may be called from any thread.
/// Each Session must be driven by one thread at a time (it wraps a
/// Connection, which debug-asserts single-thread ownership); N sessions
/// on N worker threads execute queries concurrently under shared locks.
class Server {
 public:
  explicit Server(ServerOptions options = ServerOptions());
  /// Drains the scheduler (in-flight requests finish, queued requests
  /// fail with kShuttingDown) before tearing anything else down.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The shared database. Populate it before spawning workers, or from
  /// workers via Connection's DML paths (which take the exclusive lock).
  storage::Database* db() { return &db_; }

  core::PlanCache* plan_cache() { return &plan_cache_; }
  exec::WorkerPool* worker_pool() { return &pool_; }
  const ServerOptions& options() const { return options_; }

  /// The request scheduler behind Session::Submit/Execute (exposed for
  /// shutdown control and the scheduler test suite's dispatch hook).
  Scheduler* scheduler() { return scheduler_.get(); }

  /// The server-wide metrics registry: plan cache, worker pool,
  /// storage scans, per-session net counters, and extraction pipeline
  /// metrics all land here. Snapshot() is safe from any thread.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// The bounded ring of sampled request traces (ServerOptions::
  /// trace_sample) and the structured slow-query log. Safe from any
  /// thread.
  obs::TraceRing* trace_ring() { return &trace_ring_; }
  obs::SlowQueryLog* slow_log() { return &slow_log_; }

  /// Opens a session against the shared database. The session may be
  /// handed to a worker thread before first use; it folds its stats
  /// back into the server when destroyed.
  std::unique_ptr<Session> Connect();

  /// Cost-based rewrite selection (Cobra): enumerates and prices the
  /// execution alternatives for (source, function) — full SQL
  /// extraction, the batching rewrite, the interpreted original —
  /// against live table statistics, returning the ranked plan with the
  /// cheapest feasible strategy chosen. Cached in the shared plan cache
  /// and re-priced whenever the database's stats epoch moves (table
  /// growth or new indexes can flip the winner). Thread-safe.
  Result<std::shared_ptr<const core::ExtractionPlan>> GetOrSelectPlan(
      const std::string& source, const std::string& function);

  /// Snapshot of the server-wide aggregates (closed sessions + cache).
  ServerStats stats() const;

 private:
  friend class Session;

  /// Folds a closing session's counters into the aggregate and drops
  /// it from the live-session map.
  void CloseSession(int64_t id, const ConnectionStats& session_stats);

  ServerOptions options_;
  /// Declared before pool_ and db_: destroyed last, so worker threads
  /// and in-flight sessions can touch metric handles until they join.
  obs::MetricsRegistry metrics_;
  storage::Database db_;
  core::PlanCache plan_cache_;
  exec::WorkerPool pool_;

  mutable std::mutex mu_;  // guards the aggregate counters below
  int64_t sessions_opened_ = 0;
  int64_t sessions_closed_ = 0;
  ConnectionStats totals_;
  double max_session_simulated_ms_ = 0.0;
  /// Connections of open sessions, for live stats fold-in. A Session
  /// unregisters in its destructor before its Connection dies, so every
  /// pointer here is valid whenever mu_ is held.
  std::unordered_map<int64_t, const Connection*> live_sessions_;

  /// Sampled-trace sink + slow-query sink. Declared before scheduler_
  /// (workers push records until they join).
  obs::TraceRing trace_ring_;
  obs::SlowQueryLog slow_log_;

  /// Declared last: destroyed first, so Shutdown() joins the scheduler
  /// workers while the database, pools, and metrics they touch are all
  /// still alive.
  std::unique_ptr<Scheduler> scheduler_;
};

/// One client session: the handle through which requests enter the
/// server. Submit() hands a Request to the server's scheduler and
/// returns a std::future<Outcome>; Execute() is the blocking wrapper.
/// Execution happens on the scheduler's worker threads against the
/// shared database and plan cache — the session's own Connection only
/// carries client-side simulated cost (ChargeClientOps) and serves the
/// legacy direct path. Single-threaded by contract (see Connection);
/// open one session per client thread.
class Session : public Client {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int64_t id() const { return id_; }

  /// Submits one request to the server's scheduler. Non-blocking: on
  /// admission the future resolves when a worker finishes the request;
  /// on rejection (kOverloaded queue-full backpressure, kShuttingDown
  /// drain) it is already ready. "SHOW METRICS" answers with every
  /// counter plus <histogram>.count/.p50/.p99/.max rows, without
  /// touching storage. Requests that carry no TxnContext are stamped
  /// with this session's, so BEGIN/COMMIT/ROLLBACK and the statements
  /// between them belong to one transaction no matter which scheduler
  /// worker executes each of them. May be called from the session's
  /// owner thread; the returned future may be waited anywhere.
  std::future<Outcome> Submit(Request req);

  /// Blocking wrapper: Submit + wait.
  Outcome Execute(Request req);

  /// net::Client: lets interpreted programs drive this session like a
  /// direct connection — every statement goes through the scheduler.
  Outcome Perform(Request req) override { return Execute(std::move(req)); }
  void ChargeClientOps(int64_t ops) override { conn_.ChargeClientOps(ops); }

  /// Full extraction pipeline through the shared cache: repeated
  /// (source, function) requests under the server's optimize options
  /// skip parse, analysis, transformation, and rewriting.
  Result<std::shared_ptr<const core::OptimizeResult>> OptimizeCached(
      const std::string& source, const std::string& function);

  /// Cost-based alternative selection for (source, function) through
  /// the server's cache — see Server::GetOrSelectPlan. The CLI uses
  /// this to pick which strategy --run executes.
  Result<std::shared_ptr<const core::ExtractionPlan>> SelectPlan(
      const std::string& source, const std::string& function);

  /// The EXPLAIN EXTRACTION payload for (source, function) under the
  /// server's optimize options: per cursor loop P1-P3 verdicts, fired
  /// rules, emitted SQL, and the ranked cost-priced alternatives with
  /// the chosen strategy marked (text + JSON). Resolved through the
  /// shared plan cache, so repeated requests are free.
  Result<Explain> ExplainExtraction(const std::string& source,
                                    const std::string& function);

  /// Temp-table DDL with plan-cache invalidation: any cached plan or
  /// extraction referencing `name` is dropped before the registry
  /// changes, so no session can execute a plan that aliases the old
  /// table after the DDL. Prefer these over the raw Connection calls
  /// whenever the same name may be recreated with a different shape.
  Status CreateTempTable(const std::string& name, catalog::Schema schema,
                         std::vector<catalog::Row> rows) override;
  void DropTempTable(const std::string& name) override;

  /// The underlying client-side connection, for callers that need the
  /// raw blocking API (direct interpreter runs, temp tables, tracing).
  /// Work done here executes on the calling thread, bypassing the
  /// scheduler's admission queue.
  Connection* connection() { return &conn_; }
  const ConnectionStats& stats() const { return conn_.stats(); }

 private:
  friend class Server;
  Session(Server* server, int64_t id)
      : server_(server), id_(id), conn_(&server->db_,
                                        server->options_.cost_model) {
    conn_.set_worker_pool(&server->pool_);
    conn_.set_parallel_threshold(server->options_.parallel_threshold);
    conn_.set_exec_mode(server->options_.exec_mode);
    conn_.set_metrics(&server->metrics_);
    // Direct connection() calls and scheduler-executed requests share
    // one transaction context (~Connection rolls back anything left
    // open, so a dropped session never stalls the GC watermark).
    conn_.set_txn_context(txn_ctx_);
  }

  Server* server_;
  int64_t id_;
  /// This session's transaction state, shared with conn_ and stamped
  /// onto every Submit()ed request. Declared before conn_ so the
  /// context outlives the connection's destructor-time rollback.
  std::shared_ptr<TxnContext> txn_ctx_ = std::make_shared<TxnContext>();
  Connection conn_;
};

}  // namespace eqsql::net

#endif  // EQSQL_NET_SERVER_H_
