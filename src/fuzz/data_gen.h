#ifndef EQSQL_FUZZ_DATA_GEN_H_
#define EQSQL_FUZZ_DATA_GEN_H_

#include <string>
#include <vector>

#include "fuzz/rng.h"
#include "fuzz/scenario.h"

namespace eqsql::fuzz {

/// How one generated column's values are drawn.
struct ColumnGen {
  enum class Kind {
    kSequential,  // 0, 1, 2, ... (unique-key columns)
    kInt,         // uniform or skewed integers in [lo, hi]
    kString,      // prefix + k with k in [0, distinct)
  };
  catalog::Column column;
  Kind kind = Kind::kInt;
  bool nullable = false;  // cells NULL with DataOptions::null_percent
  int64_t lo = 0;
  int64_t hi = 100;
  std::string prefix = "s";
  int64_t distinct = 8;
};

/// Knobs for the random data generator.
struct DataOptions {
  int max_rows = 40;
  /// NULL probability (percent) for cells of nullable columns.
  int null_percent = 20;
  /// Probability (percent) that a table's value columns are skewed:
  /// ~80% of cells collapse onto a single value (duplicate-heavy keys,
  /// hot groups).
  int skew_percent = 15;
};

/// Draws a row count biased toward the boundary cases the paper's
/// equivalence argument must survive: empty tables, singletons, and a
/// bulk tail up to max_rows.
int PickRowCount(Rng* rng, const DataOptions& opts);

/// Fills `spec->rows` with `row_count` rows drawn per `cols` (which
/// also defines spec->columns). Sequential columns count 0..n-1 and are
/// never NULL; other columns follow their domain, nullability, and the
/// table-level skew coin flipped here.
void GenerateRows(Rng* rng, const DataOptions& opts,
                  const std::vector<ColumnGen>& cols, int row_count,
                  TableSpec* spec);

}  // namespace eqsql::fuzz

#endif  // EQSQL_FUZZ_DATA_GEN_H_
