// Engine micro-benchmarks (DESIGN.md experiment A2): operator
// throughput of the in-memory engine that stands in for MySQL. These
// numbers sanity-check the cost model's server term and document the
// substrate's raw speed.
//
// Besides the google-benchmark operator suite, a self-timed "batch
// phase" compares the row and vectorized engines head to head on the
// same plans, checks their ResultSets are byte-identical, and GATES
// the vectorized filter and group-by evaluation speedup at >= 1.5x —
// the PR-7 acceptance number. With --json FILE the phase's
// measurements land in a machine-readable artifact
// ({"bench":"exec_micro","batch_phase":{...,"pass":true}}) that
// scripts/verify.sh greps; a failed gate exits non-zero.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/exec_mode.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace {

using eqsql::catalog::DataType;
using eqsql::catalog::Schema;
using eqsql::catalog::Value;

/// Builds a `data(id, grp, v, name)` table with `n` rows.
std::unique_ptr<eqsql::storage::Database> MakeDb(int64_t n) {
  auto db = std::make_unique<eqsql::storage::Database>();
  auto table = *db->CreateTable(
      "data", Schema({{"id", DataType::kInt64},
                      {"grp", DataType::kInt64},
                      {"v", DataType::kInt64},
                      {"name", DataType::kString}}));
  for (int64_t i = 0; i < n; ++i) {
    (void)table->Insert({Value::Int(i), Value::Int(i % 64),
                         Value::Int((i * 2654435761) % 10000),
                         Value::String("row" + std::to_string(i))});
  }
  (void)table->DeclareUniqueKey("id");
  return db;
}

void RunSql(benchmark::State& state, const char* sql) {
  auto db = MakeDb(state.range(0));
  auto plan = *eqsql::sql::ParseSql(sql);
  eqsql::exec::Executor ex(db.get());
  for (auto _ : state) {
    auto rs = ex.Execute(plan);
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Scan(benchmark::State& state) {
  RunSql(state, "SELECT * FROM data AS d");
}
BENCHMARK(BM_Scan)->Arg(1000)->Arg(100000);

void BM_Filter(benchmark::State& state) {
  RunSql(state, "SELECT d.id AS id FROM data AS d WHERE d.v < 2000");
}
BENCHMARK(BM_Filter)->Arg(1000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  RunSql(state,
         "SELECT a.id AS id FROM data AS a JOIN data AS b ON a.id = b.id");
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(100000);

void BM_GroupBy(benchmark::State& state) {
  RunSql(state,
         "SELECT d.grp, MAX(d.v) AS mx, COUNT(*) AS c FROM data AS d "
         "GROUP BY d.grp");
}
BENCHMARK(BM_GroupBy)->Arg(1000)->Arg(100000);

void BM_SortLimit(benchmark::State& state) {
  RunSql(state,
         "SELECT d.id AS id FROM data AS d ORDER BY d.v DESC LIMIT 10");
}
BENCHMARK(BM_SortLimit)->Arg(1000)->Arg(100000);

void BM_ParseSql(benchmark::State& state) {
  const char* sql =
      "SELECT a.id, MAX(b.v) AS mx FROM data AS a LEFT OUTER JOIN data AS "
      "b ON a.id = b.grp WHERE a.v > 10 GROUP BY a.id ORDER BY a.id "
      "LIMIT 100";
  for (auto _ : state) {
    auto plan = eqsql::sql::ParseSql(sql);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ParseSql);

// ---------------------------------------------------------------------------
// Batch phase: row engine vs vectorized engine on identical plans.

struct BatchMeasurement {
  const char* label;
  const char* sql;
  double row_ns = 0;     // best-of-N wall time, row engine
  double vector_ns = 0;  // best-of-N wall time, vectorized engine
  double speedup() const { return vector_ns > 0 ? row_ns / vector_ns : 0; }
};

/// Best-of-`reps` wall time for one plan in one mode. Also returns the
/// last run's ResultSet so callers can diff the engines' outputs.
double TimeSql(eqsql::storage::Database* db, const eqsql::ra::RaNodePtr& plan,
               eqsql::exec::ExecMode mode, int reps,
               eqsql::exec::ResultSet* out) {
  eqsql::exec::Executor ex(db);
  ex.set_exec_mode(mode);
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    auto rs = ex.Execute(plan);
    auto t1 = std::chrono::steady_clock::now();
    if (!rs.ok()) {
      std::fprintf(stderr, "batch phase: %s\n", rs.status().ToString().c_str());
      std::exit(1);
    }
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    if (r == 0 || ns < best) best = ns;
    if (r == reps - 1) *out = *std::move(rs);
  }
  return best;
}

bool SameResults(const eqsql::exec::ResultSet& a,
                 const eqsql::exec::ResultSet& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i].size() != b.rows[i].size()) return false;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      if (a.rows[i][j].ToString() != b.rows[i][j].ToString()) return false;
    }
  }
  return true;
}

/// Runs the row-vs-vector comparison and writes the optional JSON
/// artifact. Returns false when a result mismatch or a gate failure
/// should fail the binary.
bool RunBatchPhase(const char* json_path) {
  constexpr int64_t kRows = 200000;
  constexpr int kReps = 7;
  // The gate covers the stages where vectorization does real work —
  // predicate and fold evaluation in tight typed loops. The plain scan
  // is reported ungated: both engines bulk-copy rows out of MVCC
  // version chains, so its delta measures chunking overhead, not
  // evaluation.
  constexpr double kGate = 1.5;
  auto db = MakeDb(kRows);
  BatchMeasurement runs[] = {
      {"scan", "SELECT * FROM data AS d"},
      {"filter", "SELECT d.id AS id FROM data AS d WHERE d.v < 2000"},
      {"groupby",
       "SELECT d.grp, MAX(d.v) AS mx, COUNT(*) AS c FROM data AS d "
       "GROUP BY d.grp"},
  };
  std::printf("\n=== batch phase: row vs vector, %lld rows ===\n",
              static_cast<long long>(kRows));
  std::printf("%10s %14s %14s %9s\n", "op", "row ms", "vector ms", "speedup");
  bool pass = true;
  for (BatchMeasurement& m : runs) {
    auto plan = *eqsql::sql::ParseSql(m.sql);
    eqsql::exec::ResultSet row_rs, vec_rs;
    m.row_ns = TimeSql(db.get(), plan, eqsql::exec::ExecMode::kRow, kReps,
                       &row_rs);
    m.vector_ns = TimeSql(db.get(), plan, eqsql::exec::ExecMode::kVector,
                          kReps, &vec_rs);
    if (!SameResults(row_rs, vec_rs)) {
      std::fprintf(stderr, "batch phase: %s results diverge across engines\n",
                   m.label);
      return false;
    }
    const bool gated =
        std::strcmp(m.label, "filter") == 0 ||
        std::strcmp(m.label, "groupby") == 0;
    const bool ok = !gated || m.speedup() >= kGate;
    if (!ok) pass = false;
    std::printf("%10s %14.3f %14.3f %8.2fx%s\n", m.label, m.row_ns / 1e6,
                m.vector_ns / 1e6, m.speedup(),
                gated ? (ok ? "" : "  << below gate") : "  (ungated)");
  }
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return false;
    }
    std::fprintf(f, "{\"bench\":\"exec_micro\",\"batch_phase\":{\"rows\":%lld",
                 static_cast<long long>(kRows));
    for (const BatchMeasurement& m : runs) {
      std::fprintf(f,
                   ",\"%s_row_ns\":%.0f,\"%s_vector_ns\":%.0f,"
                   "\"%s_speedup\":%.3f",
                   m.label, m.row_ns, m.label, m.vector_ns, m.label,
                   m.speedup());
    }
    std::fprintf(f, ",\"gate\":%.1f,\"pass\":%s},\"provenance\":%s}\n", kGate,
                 pass ? "true" : "false",
                 eqsql::bench::ProvenanceJson("row+vector",
                                              db->shard_count())
                     .c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  if (!pass) {
    std::fprintf(stderr,
                 "batch phase: vectorized speedup below the %.1fx gate\n",
                 kGate);
  }
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json (ours) before handing argv to google-benchmark, which
  // rejects flags it does not know.
  const char* json_path = nullptr;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return RunBatchPhase(json_path) ? 0 : 1;
}
