file(REMOVE_RECURSE
  "CMakeFiles/eqsql_ra.dir/ra_node.cc.o"
  "CMakeFiles/eqsql_ra.dir/ra_node.cc.o.d"
  "CMakeFiles/eqsql_ra.dir/scalar_expr.cc.o"
  "CMakeFiles/eqsql_ra.dir/scalar_expr.cc.o.d"
  "libeqsql_ra.a"
  "libeqsql_ra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqsql_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
