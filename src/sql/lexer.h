#ifndef EQSQL_SQL_LEXER_H_
#define EQSQL_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace eqsql::sql {

/// SQL token kinds. Keywords are recognized case-insensitively and
/// carried as kKeyword with upper-cased text.
enum class TokenKind {
  kEnd,
  kKeyword,     // SELECT, FROM, WHERE, ...
  kIdentifier,  // table / column names (possibly qualified via kDot)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kQuestion,    // positional parameter
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,          // =
  kNe,          // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kConcat,      // ||
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // raw text (keywords upper-cased, strings unquoted)
  double number = 0;  // numeric literals
  size_t offset = 0;  // byte offset into the input, for diagnostics
};

/// Tokenizes SQL text. Recognized keywords include the full subset used
/// by the parser and generator (SELECT, FROM, WHERE, GROUP, BY, ORDER,
/// JOIN, LEFT, OUTER, APPLY, EXISTS, CASE, ...).
Result<std::vector<Token>> TokenizeSql(std::string_view input);

}  // namespace eqsql::sql

#endif  // EQSQL_SQL_LEXER_H_
