#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sql/generator.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace eqsql::sql {
namespace {

using catalog::DataType;
using catalog::Schema;
using catalog::Value;
using ra::RaOp;

TEST(SqlLexerTest, BasicTokens) {
  auto tokens = TokenizeSql("SELECT a.b, 'it''s', 3.5, 42, ? FROM t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "a");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDot);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*tokens)[5].text, "it's");
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kDoubleLiteral);
  EXPECT_EQ((*tokens)[9].kind, TokenKind::kIntLiteral);
  EXPECT_EQ((*tokens)[11].kind, TokenKind::kQuestion);
}

TEST(SqlLexerTest, OperatorsAndErrors) {
  auto tokens = TokenizeSql("a <= b <> c != d || e >= f");
  ASSERT_TRUE(tokens.ok());
  EXPECT_FALSE(TokenizeSql("a | b").ok());
  EXPECT_FALSE(TokenizeSql("'unterminated").ok());
  EXPECT_FALSE(TokenizeSql("a # b").ok());
}

TEST(SqlLexerTest, KeywordsCaseInsensitive) {
  auto tokens = TokenizeSql("select FROM wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(SqlParserTest, SelectStarWhere) {
  auto q = ParseSql("SELECT * FROM board AS b WHERE b.rnd_id = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->op(), RaOp::kSelect);
  EXPECT_EQ((*q)->child(0)->op(), RaOp::kScan);
  EXPECT_EQ((*q)->child(0)->alias(), "b");
}

TEST(SqlParserTest, HqlStyleQuery) {
  auto q = ParseSql("from Board as b where b.rnd_id = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->op(), RaOp::kSelect);
  EXPECT_EQ((*q)->child(0)->table_name(), "Board");
}

TEST(SqlParserTest, ProjectionAliases) {
  auto q = ParseSql("SELECT b.p1 AS x, b.p1 + b.p2 FROM board b");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ((*q)->op(), RaOp::kProject);
  EXPECT_EQ((*q)->project_items()[0].name, "x");
  EXPECT_EQ((*q)->project_items()[1].name, "col1");
}

TEST(SqlParserTest, ParameterNumbering) {
  auto q = ParseSql("SELECT * FROM t WHERE t.a = ? AND t.b = ?");
  ASSERT_TRUE(q.ok());
  std::string s = (*q)->ToString();
  EXPECT_NE(s.find("(param 0)"), std::string::npos);
  EXPECT_NE(s.find("(param 1)"), std::string::npos);
}

TEST(SqlParserTest, GroupByAggregates) {
  auto q = ParseSql(
      "SELECT t.g, MAX(t.v) AS mx, COUNT(*) AS c FROM t GROUP BY t.g");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ((*q)->op(), RaOp::kProject);
  auto gb = (*q)->child(0);
  ASSERT_EQ(gb->op(), RaOp::kGroupBy);
  EXPECT_EQ(gb->group_keys().size(), 1u);
  ASSERT_EQ(gb->aggregates().size(), 2u);
  EXPECT_EQ(gb->aggregates()[0].func, ra::AggFunc::kMax);
  EXPECT_EQ(gb->aggregates()[1].func, ra::AggFunc::kCountStar);
}

TEST(SqlParserTest, ScalarAggregateNoGroupBy) {
  auto q = ParseSql("SELECT MAX(t.v) AS m FROM t WHERE t.x > 0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ((*q)->op(), RaOp::kProject);
  EXPECT_EQ((*q)->child(0)->op(), RaOp::kGroupBy);
  EXPECT_TRUE((*q)->child(0)->group_keys().empty());
}

TEST(SqlParserTest, NonAggNotInGroupByRejected) {
  auto q = ParseSql("SELECT t.g, t.h, MAX(t.v) FROM t GROUP BY t.g");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
}

TEST(SqlParserTest, Joins) {
  auto q = ParseSql(
      "SELECT * FROM wuser AS u JOIN role AS r ON u.role_id = r.id");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->op(), RaOp::kJoin);

  auto lo = ParseSql(
      "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x");
  ASSERT_TRUE(lo.ok()) << lo.status().ToString();
  EXPECT_EQ((*lo)->op(), RaOp::kLeftOuterJoin);

  auto lj = ParseSql("SELECT * FROM a LEFT JOIN b ON a.x = b.x");
  ASSERT_TRUE(lj.ok());
  EXPECT_EQ((*lj)->op(), RaOp::kLeftOuterJoin);
}

TEST(SqlParserTest, OuterApply) {
  auto q = ParseSql(
      "SELECT * FROM applicants AS a OUTER APPLY "
      "(SELECT d.phone AS phone FROM details AS d WHERE d.id = a.id)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->op(), RaOp::kOuterApply);
  EXPECT_EQ((*q)->right()->op(), RaOp::kProject);
}

TEST(SqlParserTest, OrderByLimitDistinct) {
  auto q = ParseSql(
      "SELECT DISTINCT t.a FROM t ORDER BY t.a DESC, t.b LIMIT 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ((*q)->op(), RaOp::kLimit);
  EXPECT_EQ((*q)->limit(), 10);
  ASSERT_EQ((*q)->child(0)->op(), RaOp::kDedup);
  auto proj = (*q)->child(0)->child(0);
  ASSERT_EQ(proj->op(), RaOp::kProject);
  auto sort = proj->child(0);
  ASSERT_EQ(sort->op(), RaOp::kSort);
  EXPECT_FALSE(sort->sort_keys()[0].ascending);
  EXPECT_TRUE(sort->sort_keys()[1].ascending);
}

TEST(SqlParserTest, ExistsSubquery) {
  auto q = ParseSql(
      "SELECT * FROM role AS r WHERE EXISTS "
      "(SELECT * FROM wuser AS u WHERE u.role_id = r.id)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->predicate()->op(), ra::ScalarOp::kExists);

  auto nq = ParseSql(
      "SELECT * FROM role AS r WHERE NOT EXISTS "
      "(SELECT * FROM wuser AS u WHERE u.role_id = r.id)");
  ASSERT_TRUE(nq.ok());
  EXPECT_EQ((*nq)->predicate()->op(), ra::ScalarOp::kNotExists);
}

TEST(SqlParserTest, GreatestCaseIsNull) {
  auto q = ParseSql(
      "SELECT GREATEST(t.a, t.b, t.c) AS g, "
      "CASE WHEN t.a > 0 THEN 1 ELSE 0 END AS c "
      "FROM t WHERE t.x IS NOT NULL");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(SqlParserTest, DerivedTable) {
  auto q = ParseSql(
      "SELECT dt.v FROM (SELECT t.v AS v FROM t) AS dt WHERE dt.v > 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(SqlParserTest, DerivedTableWithoutSelectListRejected) {
  auto q = ParseSql("SELECT * FROM (SELECT * FROM t) AS dt");
  EXPECT_FALSE(q.ok());
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t extra garbage").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t LIMIT x").ok());
}

// --- end-to-end: parse then execute ---------------------------------------

class SqlExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = *db_.CreateTable("scores", Schema({{"id", DataType::kInt64},
                                                {"grp", DataType::kInt64},
                                                {"v", DataType::kInt64}}));
    int64_t data[][3] = {{1, 1, 10}, {2, 1, 30}, {3, 2, 20}, {4, 2, 5}};
    for (auto& d : data) {
      ASSERT_TRUE(
          t->Insert({Value::Int(d[0]), Value::Int(d[1]), Value::Int(d[2])})
              .ok());
    }
  }

  exec::ResultSet Run(const std::string& sql,
                      std::vector<Value> params = {}) {
    auto q = ParseSql(sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    exec::Executor ex(&db_);
    auto rs = ex.Execute(*q, params);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return std::move(*rs);
  }

  storage::Database db_;
};

TEST_F(SqlExecTest, SelectWhere) {
  auto rs = Run("SELECT s.v FROM scores AS s WHERE s.grp = 1");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 10);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 30);
}

TEST_F(SqlExecTest, GroupByMax) {
  auto rs =
      Run("SELECT s.grp, MAX(s.v) AS mx FROM scores AS s GROUP BY s.grp");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 30);
  EXPECT_EQ(rs.rows[1][1].AsInt(), 20);
}

TEST_F(SqlExecTest, ParameterBinding) {
  auto rs = Run("SELECT s.id FROM scores AS s WHERE s.grp = ?",
                {Value::Int(2)});
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 3);
}

TEST_F(SqlExecTest, OrderByDescLimit) {
  auto rs = Run("SELECT s.id FROM scores AS s ORDER BY s.v DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 3);
}

TEST_F(SqlExecTest, ScalarAggregateEmptyInput) {
  auto rs = Run("SELECT MAX(s.v) AS m FROM scores AS s WHERE s.grp = 99");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

// --- generator -------------------------------------------------------------

TEST(SqlGeneratorTest, SimpleSelect) {
  auto q = ParseSql("SELECT b.p1 AS x FROM board AS b WHERE b.rnd_id = 1");
  ASSERT_TRUE(q.ok());
  auto sql = GenerateSql(*q);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(*sql,
            "SELECT b.p1 AS x FROM board AS b WHERE (b.rnd_id = 1)");
}

TEST(SqlGeneratorTest, GroupByInlinesInnerProject) {
  // γ_max(score)(π_score=GREATEST(...)(σ(scan))) flattens to one block.
  auto score = ra::ScalarExpr::Nary(
      ra::ScalarOp::kGreatest,
      {ra::ScalarExpr::Column("b.p1"), ra::ScalarExpr::Column("b.p2")});
  auto plan = ra::RaNode::GroupBy(
      ra::RaNode::Project(
          ra::RaNode::Select(
              ra::RaNode::Scan("board", "b"),
              ra::ScalarExpr::Binary(ra::ScalarOp::kEq,
                                     ra::ScalarExpr::Column("b.rnd_id"),
                                     ra::ScalarExpr::Literal(Value::Int(1)))),
          {{score, "score"}}),
      {}, {{ra::AggFunc::kMax, ra::ScalarExpr::Column("score"), "scoreMax"}});
  auto sql = GenerateSql(plan);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(*sql,
            "SELECT MAX(GREATEST(b.p1, b.p2)) AS scoreMax FROM board AS b "
            "WHERE (b.rnd_id = 1)");
}

TEST(SqlGeneratorTest, CaseWhenDialectExpandsGreatest) {
  auto score = ra::ScalarExpr::Nary(
      ra::ScalarOp::kGreatest,
      {ra::ScalarExpr::Column("a"), ra::ScalarExpr::Column("b")});
  auto plan = ra::RaNode::Project(ra::RaNode::Scan("t"), {{score, "g"}});
  auto sql = GenerateSql(plan, Dialect::kCaseWhen);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "SELECT CASE WHEN a >= b THEN a ELSE b END AS g FROM t");
}

TEST(SqlGeneratorTest, PostgresLateralForOuterApply) {
  auto inner = ra::RaNode::Project(
      ra::RaNode::Select(
          ra::RaNode::Scan("d"),
          ra::ScalarExpr::Binary(ra::ScalarOp::kEq,
                                 ra::ScalarExpr::Column("d.id"),
                                 ra::ScalarExpr::Column("a.id"))),
      {{ra::ScalarExpr::Column("d.phone"), "phone"}});
  auto plan = ra::RaNode::OuterApply(ra::RaNode::Scan("a"), inner);
  auto sql_pg = GenerateSql(plan, Dialect::kPostgres);
  ASSERT_TRUE(sql_pg.ok());
  EXPECT_NE(sql_pg->find("LEFT JOIN LATERAL"), std::string::npos);
  auto sql_def = GenerateSql(plan, Dialect::kDefault);
  ASSERT_TRUE(sql_def.ok());
  EXPECT_NE(sql_def->find("OUTER APPLY"), std::string::npos);
}

/// Round-trip property: generated kDefault SQL re-parses, and both plans
/// produce identical results.
class SqlRoundTripTest : public SqlExecTest {};

TEST_F(SqlRoundTripTest, RoundTripPreservesSemantics) {
  const char* queries[] = {
      "SELECT s.v AS v FROM scores AS s WHERE s.grp = 1",
      "SELECT s.grp, MAX(s.v) AS mx FROM scores AS s GROUP BY s.grp",
      "SELECT DISTINCT s.grp AS g FROM scores AS s",
      "SELECT s.id AS id FROM scores AS s ORDER BY s.v DESC LIMIT 2",
      "SELECT MAX(s.v) AS m FROM scores AS s",
      "SELECT s.id AS id FROM scores AS s WHERE EXISTS "
      "(SELECT t.id AS x FROM scores AS t WHERE t.grp = s.grp AND t.v > 25)",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    auto q1 = ParseSql(text);
    ASSERT_TRUE(q1.ok()) << q1.status().ToString();
    auto sql = GenerateSql(*q1);
    ASSERT_TRUE(sql.ok()) << sql.status().ToString();
    auto q2 = ParseSql(*sql);
    ASSERT_TRUE(q2.ok()) << "regenerated: " << *sql << "\n"
                         << q2.status().ToString();
    exec::Executor ex(&db_);
    auto r1 = ex.Execute(*q1);
    auto r2 = ex.Execute(*q2);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << "regenerated: " << *sql << "\n"
                         << r2.status().ToString();
    ASSERT_EQ(r1->rows.size(), r2->rows.size()) << "regenerated: " << *sql;
    for (size_t i = 0; i < r1->rows.size(); ++i) {
      EXPECT_EQ(catalog::RowToString(r1->rows[i]),
                catalog::RowToString(r2->rows[i]));
    }
  }
}

}  // namespace
}  // namespace eqsql::sql
