#include <gtest/gtest.h>

#include "analysis/loop_analysis.h"
#include "frontend/parser.h"

namespace eqsql::analysis {
namespace {

using frontend::ParseProgram;
using frontend::StmtPtr;

/// Parses a one-function program whose first for-each loop's body we
/// analyze.
struct LoopFixture {
  frontend::Program program;
  const frontend::Stmt* loop = nullptr;

  static LoopFixture FromSource(const char* src) {
    LoopFixture fx;
    auto p = ParseProgram(src);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    fx.program = std::move(*p);
    for (const StmtPtr& s : fx.program.functions[0].body) {
      if (s->kind() == frontend::StmtKind::kForEach) fx.loop = s.get();
    }
    EXPECT_NE(fx.loop, nullptr);
    return fx;
  }

  LoopBodyInfo Analyze() const {
    return AnalyzeLoopBody(loop->body(), loop->target());
  }
};

TEST(EffectsTest, AssignReadsAndWrites) {
  auto p = ParseProgram("func f() { x = y + z.field; }");
  ASSERT_TRUE(p.ok());
  StmtEffects eff = ComputeStmtEffects(*p->functions[0].body[0]);
  EXPECT_EQ(eff.writes, (std::set<std::string>{"x"}));
  EXPECT_EQ(eff.reads, (std::set<std::string>{"y", "z"}));
}

TEST(EffectsTest, CollectionMutationWritesReceiver) {
  auto p = ParseProgram("func f() { names.append(r.name); }");
  ASSERT_TRUE(p.ok());
  StmtEffects eff = ComputeStmtEffects(*p->functions[0].body[0]);
  EXPECT_TRUE(eff.writes.count("names"));
  EXPECT_TRUE(eff.reads.count("names"));
  EXPECT_TRUE(eff.reads.count("r"));
}

TEST(EffectsTest, DbAndOutputEffects) {
  auto p = ParseProgram(R"(func f() {
    rows = executeQuery("SELECT * FROM t");
    executeUpdate("DELETE FROM t");
    print(x);
  })");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(ComputeStmtEffects(*p->functions[0].body[0]).reads_db);
  EXPECT_TRUE(ComputeStmtEffects(*p->functions[0].body[1]).writes_db);
  // Prints are preprocessed into appends to __out (paper App. B).
  StmtEffects print_eff = ComputeStmtEffects(*p->functions[0].body[2]);
  EXPECT_FALSE(print_eff.writes_output);
  EXPECT_TRUE(print_eff.writes.count(kOutputVar));
  EXPECT_TRUE(print_eff.reads.count("x"));
}

TEST(EffectsTest, UnknownCallFlagged) {
  auto p = ParseProgram("func f() { x = mystery(y); z = max(a, b); }");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(ComputeStmtEffects(*p->functions[0].body[0]).has_unknown_call);
  EXPECT_FALSE(ComputeStmtEffects(*p->functions[0].body[1]).has_unknown_call);
}

TEST(LoopAnalysisTest, AccumulatorIsLoopCarried) {
  // Figure 7(a) of the paper: agg accumulates, temps do not carry.
  auto fx = LoopFixture::FromSource(R"(func f() {
    agg = 0;
    for (t : rows) {
      tmp = t.x * 2;
      agg = agg + tmp;
    }
    return agg;
  })");
  LoopBodyInfo info = fx.Analyze();
  EXPECT_TRUE(info.loop_carried.count("agg"));
  EXPECT_FALSE(info.loop_carried.count("tmp"));  // assigned before read
  EXPECT_FALSE(info.loop_carried.count("t"));    // cursor excluded
}

TEST(LoopAnalysisTest, ConditionalAssignStillCarries) {
  auto fx = LoopFixture::FromSource(R"(func f() {
    m = 0;
    for (t : rows) {
      if (t.v > m) { m = t.v; }
    }
    return m;
  })");
  LoopBodyInfo info = fx.Analyze();
  EXPECT_TRUE(info.loop_carried.count("m"));
}

TEST(LoopAnalysisTest, BranchMustAssignIntersection) {
  // x assigned in only one branch: still upward exposed when read later.
  auto fx = LoopFixture::FromSource(R"(func f() {
    x = 0; out = 0;
    for (t : rows) {
      if (t.v > 0) { x = t.v; }
      out = out + x;
    }
    return out;
  })");
  LoopBodyInfo info = fx.Analyze();
  EXPECT_TRUE(info.loop_carried.count("x"));
  EXPECT_TRUE(info.loop_carried.count("out"));
}

TEST(LoopAnalysisTest, PreconditionsPassForCleanAggregate) {
  auto fx = LoopFixture::FromSource(R"(func f() {
    agg = 0;
    for (t : rows) { agg = agg + t.x; }
    return agg;
  })");
  LoopBodyInfo info = fx.Analyze();
  auto pre = CheckFoldPreconditions(info, "agg");
  EXPECT_TRUE(pre.ok) << pre.failure;
}

TEST(LoopAnalysisTest, P1FailsForNonAccumulator) {
  // v = t.x does not read previous v: no cycle, P1 fails.
  auto fx = LoopFixture::FromSource(R"(func f() {
    v = 0;
    for (t : rows) { v = t.x; }
    return v;
  })");
  LoopBodyInfo info = fx.Analyze();
  auto pre = CheckFoldPreconditions(info, "v");
  EXPECT_FALSE(pre.ok);
  EXPECT_NE(pre.failure.find("P1"), std::string::npos);
}

TEST(LoopAnalysisTest, P2FailsForDependentAggregate) {
  // Figure 7(c): dummyVal depends on agg, which itself carries.
  auto fx = LoopFixture::FromSource(R"(func f() {
    agg = 0; dummyVal = 0;
    for (t : rows) {
      agg = agg + t.x;
      dummyVal = dummyVal + agg;
    }
    return dummyVal;
  })");
  LoopBodyInfo info = fx.Analyze();
  // agg itself is fine.
  EXPECT_TRUE(CheckFoldPreconditions(info, "agg").ok);
  auto pre = CheckFoldPreconditions(info, "dummyVal");
  EXPECT_FALSE(pre.ok);
  EXPECT_NE(pre.failure.find("P2"), std::string::npos);
}

TEST(LoopAnalysisTest, P3FailsForDbWrite) {
  auto fx = LoopFixture::FromSource(R"(func f() {
    agg = 0;
    for (t : rows) {
      agg = agg + scalar(executeUpdate("UPDATE t SET x = 1"));
    }
    return agg;
  })");
  LoopBodyInfo info = fx.Analyze();
  auto pre = CheckFoldPreconditions(info, "agg");
  EXPECT_FALSE(pre.ok);
  EXPECT_NE(pre.failure.find("P3"), std::string::npos);
}

TEST(LoopAnalysisTest, DbWriteOutsideSliceDoesNotBlock) {
  // The paper: "our tool partially optimizes such code fragments by
  // keeping update statements intact ... provided the update statements
  // do not introduce a dependency".
  auto fx = LoopFixture::FromSource(R"(func f() {
    agg = 0;
    for (t : rows) {
      agg = agg + t.x;
      executeUpdate("UPDATE log SET cnt = 1");
    }
    return agg;
  })");
  LoopBodyInfo info = fx.Analyze();
  auto pre = CheckFoldPreconditions(info, "agg");
  EXPECT_TRUE(pre.ok) << pre.failure;
}

TEST(LoopAnalysisTest, BreakBlocksConversion) {
  auto fx = LoopFixture::FromSource(R"(func f() {
    agg = 0;
    for (t : rows) {
      if (t.x > 10) { break; }
      agg = agg + t.x;
    }
    return agg;
  })");
  LoopBodyInfo info = fx.Analyze();
  EXPECT_TRUE(info.has_break);
  EXPECT_FALSE(CheckFoldPreconditions(info, "agg").ok);
}

TEST(LoopAnalysisTest, NestedBreakDoesNotBlockOuter) {
  auto fx = LoopFixture::FromSource(R"(func f() {
    agg = 0;
    for (t : rows) {
      for (u : inner) {
        if (u.x > 0) { break; }
      }
      agg = agg + t.x;
    }
    return agg;
  })");
  LoopBodyInfo info = fx.Analyze();
  EXPECT_FALSE(info.has_break);  // break exits the inner loop only
  EXPECT_TRUE(CheckFoldPreconditions(info, "agg").ok);
}

TEST(LoopAnalysisTest, SliceContainsControlPredicates) {
  auto fx = LoopFixture::FromSource(R"(func f() {
    m = 0; other = 0;
    for (t : rows) {
      if (t.v > m) { m = t.v; }
      other = other + 1;
    }
    return m;
  })");
  LoopBodyInfo info = fx.Analyze();
  Slice slice = ComputeSlice(info, "m");
  // Slice of m: the if and its assignment, but not `other`.
  bool contains_other = false;
  for (const frontend::Stmt* s : slice.stmts) {
    if (s->kind() == frontend::StmtKind::kAssign && s->target() == "other") {
      contains_other = true;
    }
  }
  EXPECT_FALSE(contains_other);
  EXPECT_TRUE(slice.vars.count("m"));
  EXPECT_TRUE(slice.vars.count("t"));
}

TEST(LoopAnalysisTest, CollectionAppendCarries) {
  auto fx = LoopFixture::FromSource(R"(func f() {
    names = list();
    for (r : rows) { names.append(r.name); }
    return names;
  })");
  LoopBodyInfo info = fx.Analyze();
  EXPECT_TRUE(info.loop_carried.count("names"));
  EXPECT_TRUE(CheckFoldPreconditions(info, "names").ok);
}

}  // namespace
}  // namespace eqsql::analysis
