# Empty compiler generated dependencies file for eqsql_frontend.
# This may be replaced when dependencies are built.
