file(REMOVE_RECURSE
  "CMakeFiles/eqsql_catalog.dir/schema.cc.o"
  "CMakeFiles/eqsql_catalog.dir/schema.cc.o.d"
  "CMakeFiles/eqsql_catalog.dir/value.cc.o"
  "CMakeFiles/eqsql_catalog.dir/value.cc.o.d"
  "libeqsql_catalog.a"
  "libeqsql_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqsql_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
