file(REMOVE_RECURSE
  "CMakeFiles/eqsql_storage.dir/database.cc.o"
  "CMakeFiles/eqsql_storage.dir/database.cc.o.d"
  "CMakeFiles/eqsql_storage.dir/table.cc.o"
  "CMakeFiles/eqsql_storage.dir/table.cc.o.d"
  "libeqsql_storage.a"
  "libeqsql_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqsql_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
