#include "sql/parser.h"

#include <optional>
#include <vector>

#include "common/strings.h"
#include "sql/dml.h"
#include "sql/lexer.h"

namespace eqsql::sql {

using ra::AggFunc;
using ra::AggregateSpec;
using ra::ProjectItem;
using ra::RaNode;
using ra::RaNodePtr;
using ra::ScalarExpr;
using ra::ScalarExprPtr;
using ra::ScalarOp;
using ra::SortKey;

namespace {

/// One parsed SELECT-list entry.
struct SelectItem {
  bool star = false;
  ScalarExprPtr expr;       // non-aggregate expression
  std::string alias;        // explicit AS alias ("" if absent)
  bool is_agg = false;
  AggFunc agg_func = AggFunc::kCount;
  ScalarExprPtr agg_arg;    // null for COUNT(*)
  std::string raw_name;     // default output name when no alias
};

std::optional<AggFunc> AggFromKeyword(const std::string& kw) {
  if (kw == "COUNT") return AggFunc::kCount;
  if (kw == "SUM") return AggFunc::kSum;
  if (kw == "MIN") return AggFunc::kMin;
  if (kw == "MAX") return AggFunc::kMax;
  if (kw == "AVG") return AggFunc::kAvg;
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<RaNodePtr> ParseTopLevel() {
    EQSQL_ASSIGN_OR_RETURN(RaNodePtr plan, ParseQuery());
    if (!AtEnd()) {
      return Status::ParseError("trailing input after query: '" +
                                Peek().text + "'");
    }
    return plan;
  }

  Result<DmlStatement> ParseDmlTopLevel() {
    DmlStatement stmt;
    if (MatchKeyword("INSERT")) {
      stmt.kind = DmlStatement::Kind::kInsert;
      EQSQL_RETURN_IF_ERROR(ExpectKeyword("INTO"));
      EQSQL_ASSIGN_OR_RETURN(stmt.table, ParseBareIdentifier("table name"));
      EQSQL_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
      EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      do {
        EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr value, ParseExpr());
        stmt.insert_values.push_back(std::move(value));
      } while (Match(TokenKind::kComma));
      EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    } else if (MatchKeyword("UPDATE")) {
      stmt.kind = DmlStatement::Kind::kUpdate;
      EQSQL_ASSIGN_OR_RETURN(stmt.table, ParseBareIdentifier("table name"));
      EQSQL_RETURN_IF_ERROR(ExpectKeyword("SET"));
      do {
        EQSQL_ASSIGN_OR_RETURN(std::string col,
                               ParseBareIdentifier("column name"));
        EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='"));
        EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr value, ParseExpr());
        stmt.assignments.emplace_back(std::move(col), std::move(value));
      } while (Match(TokenKind::kComma));
      if (MatchKeyword("WHERE")) {
        EQSQL_ASSIGN_OR_RETURN(stmt.predicate, ParseExpr());
      }
    } else if (MatchKeyword("DELETE")) {
      stmt.kind = DmlStatement::Kind::kDelete;
      EQSQL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
      EQSQL_ASSIGN_OR_RETURN(stmt.table, ParseBareIdentifier("table name"));
      if (MatchKeyword("WHERE")) {
        EQSQL_ASSIGN_OR_RETURN(stmt.predicate, ParseExpr());
      }
    } else if (MatchKeyword("CREATE")) {
      stmt.kind = DmlStatement::Kind::kCreateIndex;
      EQSQL_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
      EQSQL_ASSIGN_OR_RETURN(stmt.index_name,
                             ParseBareIdentifier("index name"));
      EQSQL_RETURN_IF_ERROR(ExpectKeyword("ON"));
      EQSQL_ASSIGN_OR_RETURN(stmt.table, ParseBareIdentifier("table name"));
      EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      do {
        EQSQL_ASSIGN_OR_RETURN(std::string col,
                               ParseBareIdentifier("column name"));
        stmt.index_columns.push_back(std::move(col));
      } while (Match(TokenKind::kComma));
      EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    } else {
      return Status::ParseError(
          "expected INSERT, UPDATE, DELETE or CREATE INDEX before '" +
          Peek().text + "'");
    }
    if (!AtEnd()) {
      return Status::ParseError("trailing input after statement: '" +
                                Peek().text + "'");
    }
    return stmt;
  }

 private:
  // --- token helpers ------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool CheckKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kKeyword && t.text == kw;
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::ParseError("expected " + std::string(kw) + " before '" +
                              Peek().text + "'");
  }
  Status Expect(TokenKind kind, std::string_view what) {
    if (Match(kind)) return Status::OK();
    return Status::ParseError("expected " + std::string(what) + " before '" +
                              Peek().text + "'");
  }

  Result<std::string> ParseBareIdentifier(std::string_view what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected " + std::string(what) +
                                " before '" + Peek().text + "'");
    }
    return Advance().text;
  }

  // --- query --------------------------------------------------------------
  Result<RaNodePtr> ParseQuery() {
    // pending_aggs_ must be scoped per SELECT: a derived-table or APPLY
    // subquery parsed mid-FROM must not see the enclosing query's
    // aggregates (or leak its own into the enclosing BuildGroupBy).
    std::vector<AggregateSpec> enclosing = std::move(pending_aggs_);
    pending_aggs_.clear();
    Result<RaNodePtr> plan = ParseQueryScoped();
    pending_aggs_ = std::move(enclosing);
    return plan;
  }

  Result<RaNodePtr> ParseQueryScoped() {
    if (CheckKeyword("FROM")) return ParseHqlQuery();
    EQSQL_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    bool distinct = MatchKeyword("DISTINCT");

    std::vector<SelectItem> items;
    if (Match(TokenKind::kStar)) {
      SelectItem star;
      star.star = true;
      items.push_back(std::move(star));
    } else {
      do {
        EQSQL_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        items.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }

    EQSQL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    EQSQL_ASSIGN_OR_RETURN(RaNodePtr plan, ParseFrom());

    if (MatchKeyword("WHERE")) {
      EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr pred, ParseExpr());
      plan = RaNode::Select(std::move(plan), std::move(pred));
    }

    std::vector<ScalarExprPtr> group_keys;
    bool has_group_by = false;
    if (MatchKeyword("GROUP")) {
      EQSQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      has_group_by = true;
      do {
        EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr key, ParseExpr());
        group_keys.push_back(std::move(key));
      } while (Match(TokenKind::kComma));
    }

    bool has_agg = !pending_aggs_.empty();

    std::vector<ProjectItem> agg_proj;
    if (has_agg || has_group_by) {
      EQSQL_ASSIGN_OR_RETURN(
          plan, BuildGroupBy(std::move(plan), items, group_keys, &agg_proj));
    }

    if (MatchKeyword("ORDER")) {
      EQSQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      std::vector<SortKey> keys;
      do {
        SortKey key;
        EQSQL_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          key.ascending = false;
        } else {
          MatchKeyword("ASC");
        }
        keys.push_back(std::move(key));
      } while (Match(TokenKind::kComma));
      // With grouping, ORDER BY keys must reference GroupBy outputs, so
      // the sort sits between GroupBy and the final projection.
      plan = RaNode::Sort(std::move(plan), std::move(keys));
    }

    if (has_agg || has_group_by) {
      plan = RaNode::Project(std::move(plan), std::move(agg_proj));
    } else if (!(items.size() == 1 && items[0].star)) {
      std::vector<ProjectItem> proj;
      for (size_t i = 0; i < items.size(); ++i) {
        proj.push_back({items[i].expr, OutputName(items[i], i)});
      }
      plan = RaNode::Project(std::move(plan), std::move(proj));
    }

    if (distinct) plan = RaNode::Dedup(std::move(plan));

    if (MatchKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Status::ParseError("expected integer after LIMIT");
      }
      int64_t n = static_cast<int64_t>(Advance().number);
      plan = RaNode::Limit(std::move(plan), n);
    }
    return plan;
  }

  /// HQL-style "FROM Board AS b WHERE ..." == SELECT * FROM ...
  Result<RaNodePtr> ParseHqlQuery() {
    EQSQL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    EQSQL_ASSIGN_OR_RETURN(RaNodePtr plan, ParseTableRef());
    if (MatchKeyword("WHERE")) {
      EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr pred, ParseExpr());
      plan = RaNode::Select(std::move(plan), std::move(pred));
    }
    return plan;
  }

  static std::string OutputName(const SelectItem& item, size_t index) {
    if (!item.alias.empty()) return item.alias;
    if (!item.raw_name.empty()) return item.raw_name;
    return "col" + std::to_string(index);
  }

  /// Builds the GroupBy node from parsed select items, GROUP BY keys,
  /// and the pending aggregates collected while parsing expressions.
  /// Emits the final projection items (applied above any ORDER BY) into
  /// `proj_out`.
  Result<RaNodePtr> BuildGroupBy(RaNodePtr input,
                                 const std::vector<SelectItem>& items,
                                 const std::vector<ScalarExprPtr>& keys,
                                 std::vector<ProjectItem>* proj_out) {
    std::vector<std::string> key_names;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i]->op() == ScalarOp::kColumnRef) {
        key_names.push_back(keys[i]->column_name());
      } else {
        key_names.push_back("key" + std::to_string(i));
      }
    }
    for (size_t i = 0; i < items.size(); ++i) {
      const SelectItem& item = items[i];
      if (item.star) {
        return Status::ParseError("SELECT * cannot be mixed with GROUP BY");
      }
      if (item.is_agg) {
        // Aggregate placeholders resolve against the GroupBy output.
        proj_out->push_back({item.expr, OutputName(item, i)});
        continue;
      }
      // Non-aggregate item must match a group key.
      bool matched = false;
      for (size_t k = 0; k < keys.size(); ++k) {
        if (item.expr->Equals(*keys[k])) {
          proj_out->push_back({ScalarExpr::Column(key_names[k]),
                               OutputName(item, i)});
          matched = true;
          break;
        }
      }
      if (!matched) {
        return Status::ParseError(
            "non-aggregate SELECT item must appear in GROUP BY: " +
            item.expr->ToString());
      }
    }
    return RaNode::GroupBy(std::move(input), keys,
                           std::move(pending_aggs_));
  }

  // --- FROM clause ----------------------------------------------------------
  Result<RaNodePtr> ParseFrom() {
    EQSQL_ASSIGN_OR_RETURN(RaNodePtr plan, ParseTableRef());
    while (true) {
      if (MatchKeyword("JOIN") ||
          (CheckKeyword("INNER") && CheckKeyword("JOIN", 1) &&
           (Advance(), Advance(), true))) {
        EQSQL_ASSIGN_OR_RETURN(RaNodePtr right, ParseTableRef());
        EQSQL_RETURN_IF_ERROR(ExpectKeyword("ON"));
        EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr pred, ParseExpr());
        plan = RaNode::Join(std::move(plan), std::move(right),
                            std::move(pred));
        continue;
      }
      if (CheckKeyword("LEFT")) {
        Advance();
        MatchKeyword("OUTER");
        EQSQL_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        EQSQL_ASSIGN_OR_RETURN(RaNodePtr right, ParseTableRef());
        EQSQL_RETURN_IF_ERROR(ExpectKeyword("ON"));
        EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr pred, ParseExpr());
        plan = RaNode::LeftOuterJoin(std::move(plan), std::move(right),
                                     std::move(pred));
        continue;
      }
      if (CheckKeyword("OUTER") && CheckKeyword("APPLY", 1)) {
        Advance();
        Advance();
        EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        EQSQL_ASSIGN_OR_RETURN(RaNodePtr inner, ParseQuery());
        EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        plan = RaNode::OuterApply(std::move(plan), std::move(inner));
        continue;
      }
      break;
    }
    return plan;
  }

  Result<RaNodePtr> ParseTableRef() {
    if (Match(TokenKind::kLParen)) {
      EQSQL_ASSIGN_OR_RETURN(RaNodePtr sub, ParseQuery());
      EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      MatchKeyword("AS");
      if (Peek().kind != TokenKind::kIdentifier) {
        return Status::ParseError("derived table requires an alias");
      }
      std::string alias = Advance().text;
      return RenameDerived(std::move(sub), alias);
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected table name before '" + Peek().text +
                                "'");
    }
    std::string table = Advance().text;
    std::string alias;
    if (MatchKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Status::ParseError("expected alias after AS");
      }
      alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier) {
      alias = Advance().text;  // implicit alias: "board b"
    }
    return RaNode::Scan(std::move(table), std::move(alias));
  }

  /// Wraps a derived-table subquery in a Project that requalifies its
  /// output columns as "alias.name". The subquery must expose explicit
  /// output names (Project or GroupBy at its root, possibly under
  /// Sort/Dedup/Limit).
  Result<RaNodePtr> RenameDerived(RaNodePtr sub, const std::string& alias) {
    EQSQL_ASSIGN_OR_RETURN(std::vector<std::string> names, OutputNames(sub));
    std::vector<ProjectItem> items;
    for (const std::string& name : names) {
      size_t dot = name.rfind('.');
      std::string bare =
          dot == std::string::npos ? name : name.substr(dot + 1);
      items.push_back({ScalarExpr::Column(name), alias + "." + bare});
    }
    return RaNode::Project(std::move(sub), std::move(items));
  }

  static Result<std::vector<std::string>> OutputNames(const RaNodePtr& node) {
    switch (node->op()) {
      case ra::RaOp::kProject: {
        std::vector<std::string> names;
        for (const ProjectItem& item : node->project_items()) {
          names.push_back(item.name);
        }
        return names;
      }
      case ra::RaOp::kGroupBy: {
        std::vector<std::string> names;
        const auto& keys = node->group_keys();
        for (size_t i = 0; i < keys.size(); ++i) {
          names.push_back(keys[i]->op() == ScalarOp::kColumnRef
                              ? keys[i]->column_name()
                              : "key" + std::to_string(i));
        }
        for (const AggregateSpec& agg : node->aggregates()) {
          names.push_back(agg.name);
        }
        return names;
      }
      case ra::RaOp::kSort:
      case ra::RaOp::kDedup:
      case ra::RaOp::kLimit:
      case ra::RaOp::kSelect:
        return OutputNames(node->child(0));
      default:
        return Status::ParseError(
            "derived table requires an explicit select list");
    }
  }

  // --- select items ---------------------------------------------------------
  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    size_t aggs_before = pending_aggs_.size();
    EQSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    item.is_agg = pending_aggs_.size() > aggs_before;
    if (item.expr->op() == ScalarOp::kColumnRef &&
        !IsAggPlaceholder(item.expr->column_name())) {
      item.raw_name = item.expr->column_name();
    }
    if (item.is_agg && item.expr->op() == ScalarOp::kColumnRef) {
      // A bare aggregate call: default name is the function, lowercased.
      item.raw_name =
          AsciiToLower(std::string(ra::AggFuncToString(
              pending_aggs_.back().func)));
      size_t paren = item.raw_name.find('(');
      if (paren != std::string::npos) item.raw_name.resize(paren);
    }
    if (MatchKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Status::ParseError("expected alias after AS");
      }
      item.alias = Advance().text;
    }
    return item;
  }

  static bool IsAggPlaceholder(const std::string& name) {
    return name.rfind("__agg", 0) == 0;
  }

  // --- expressions ------------------------------------------------------
  Result<ScalarExprPtr> ParseExpr() { return ParseOr(); }

  Result<ScalarExprPtr> ParseOr() {
    EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseAnd());
      lhs = ScalarExpr::Binary(ScalarOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExprPtr> ParseAnd() {
    EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseNot());
    while (MatchKeyword("AND")) {
      EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseNot());
      lhs = ScalarExpr::Binary(ScalarOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExprPtr> ParseNot() {
    if (CheckKeyword("NOT") && CheckKeyword("EXISTS", 1)) {
      Advance();
      return ParseExists(/*negated=*/true);
    }
    if (MatchKeyword("NOT")) {
      EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr operand, ParseNot());
      return ScalarExpr::Unary(ScalarOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ScalarExprPtr> ParseComparison() {
    EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL postfix.
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      EQSQL_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      ScalarExprPtr test = ScalarExpr::Unary(ScalarOp::kIsNull, std::move(lhs));
      if (negated) test = ScalarExpr::Unary(ScalarOp::kNot, std::move(test));
      return test;
    }
    ScalarOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = ScalarOp::kEq; break;
      case TokenKind::kNe: op = ScalarOp::kNe; break;
      case TokenKind::kLt: op = ScalarOp::kLt; break;
      case TokenKind::kLe: op = ScalarOp::kLe; break;
      case TokenKind::kGt: op = ScalarOp::kGt; break;
      case TokenKind::kGe: op = ScalarOp::kGe; break;
      default:
        return lhs;
    }
    Advance();
    EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseAdditive());
    return ScalarExpr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<ScalarExprPtr> ParseAdditive() {
    EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseMultiplicative());
    while (true) {
      ScalarOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = ScalarOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = ScalarOp::kSub;
      } else if (Peek().kind == TokenKind::kConcat) {
        op = ScalarOp::kConcat;
      } else {
        return lhs;
      }
      Advance();
      EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseMultiplicative());
      lhs = ScalarExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ScalarExprPtr> ParseMultiplicative() {
    EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseUnary());
    while (true) {
      ScalarOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = ScalarOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = ScalarOp::kDiv;
      } else if (Peek().kind == TokenKind::kPercent) {
        op = ScalarOp::kMod;
      } else {
        return lhs;
      }
      Advance();
      EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseUnary());
      lhs = ScalarExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ScalarExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr operand, ParseUnary());
      return ScalarExpr::Unary(ScalarOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ScalarExprPtr> ParseExists(bool negated) {
    EQSQL_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    EQSQL_ASSIGN_OR_RETURN(RaNodePtr sub, ParseQuery());
    EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return ScalarExpr::Exists(std::move(sub), negated);
  }

  Result<ScalarExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral: {
        int64_t v = static_cast<int64_t>(Advance().number);
        return ScalarExpr::Literal(catalog::Value::Int(v));
      }
      case TokenKind::kDoubleLiteral:
        return ScalarExpr::Literal(catalog::Value::Double(Advance().number));
      case TokenKind::kStringLiteral:
        return ScalarExpr::Literal(catalog::Value::String(Advance().text));
      case TokenKind::kQuestion:
        Advance();
        return ScalarExpr::Parameter(next_param_++);
      case TokenKind::kLParen: {
        Advance();
        EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr inner, ParseExpr());
        EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kKeyword: {
        if (t.text == "NULL") {
          Advance();
          return ScalarExpr::Literal(catalog::Value::Null());
        }
        if (t.text == "TRUE" || t.text == "FALSE") {
          bool v = t.text == "TRUE";
          Advance();
          return ScalarExpr::Literal(catalog::Value::Bool(v));
        }
        if (t.text == "EXISTS") return ParseExists(/*negated=*/false);
        if (std::optional<AggFunc> agg = AggFromKeyword(t.text);
            agg.has_value() && Peek(1).kind == TokenKind::kLParen) {
          Advance();  // keyword
          Advance();  // '('
          AggregateSpec spec;
          spec.func = *agg;
          if (*agg == AggFunc::kCount && Match(TokenKind::kStar)) {
            spec.func = AggFunc::kCountStar;
          } else {
            EQSQL_ASSIGN_OR_RETURN(spec.arg, ParseExpr());
          }
          EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          spec.name = "__agg" + std::to_string(pending_aggs_.size());
          pending_aggs_.push_back(spec);
          return ScalarExpr::Column(spec.name);
        }
        if (t.text == "GREATEST" || t.text == "LEAST") {
          bool greatest = t.text == "GREATEST";
          Advance();
          EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
          std::vector<ScalarExprPtr> args;
          do {
            EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (Match(TokenKind::kComma));
          EQSQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          return ScalarExpr::Nary(
              greatest ? ScalarOp::kGreatest : ScalarOp::kLeast,
              std::move(args));
        }
        if (t.text == "CASE") {
          Advance();
          EQSQL_RETURN_IF_ERROR(ExpectKeyword("WHEN"));
          EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr cond, ParseExpr());
          EQSQL_RETURN_IF_ERROR(ExpectKeyword("THEN"));
          EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr then_v, ParseExpr());
          EQSQL_RETURN_IF_ERROR(ExpectKeyword("ELSE"));
          EQSQL_ASSIGN_OR_RETURN(ScalarExprPtr else_v, ParseExpr());
          EQSQL_RETURN_IF_ERROR(ExpectKeyword("END"));
          return ScalarExpr::Case(std::move(cond), std::move(then_v),
                                  std::move(else_v));
        }
        return Status::ParseError("unexpected keyword '" + t.text +
                                  "' in expression");
      }
      case TokenKind::kIdentifier: {
        std::string name = Advance().text;
        while (Match(TokenKind::kDot)) {
          if (Peek().kind != TokenKind::kIdentifier) {
            return Status::ParseError("expected identifier after '.'");
          }
          name += "." + Advance().text;
        }
        return ScalarExpr::Column(std::move(name));
      }
      default:
        return Status::ParseError("unexpected token '" + t.text +
                                  "' in expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_ = 0;
  std::vector<AggregateSpec> pending_aggs_;
};

}  // namespace

Result<RaNodePtr> ParseSql(std::string_view input) {
  EQSQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeSql(input));
  Parser parser(std::move(tokens));
  return parser.ParseTopLevel();
}

Result<DmlStatement> ParseDml(std::string_view input) {
  EQSQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeSql(input));
  Parser parser(std::move(tokens));
  return parser.ParseDmlTopLevel();
}

}  // namespace eqsql::sql
