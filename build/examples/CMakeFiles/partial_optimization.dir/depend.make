# Empty dependencies file for partial_optimization.
# This may be replaced when dependencies are built.
