#include "rules/ra_utils.h"

#include <map>

#include "common/strings.h"

namespace eqsql::rules {

using ra::ProjectItem;
using ra::RaNode;
using ra::RaNodePtr;
using ra::RaOp;
using ra::ScalarExpr;
using ra::ScalarExprPtr;
using ra::ScalarOp;

Result<std::string> QualifyAttr(const RaNodePtr& query,
                                const std::string& attr) {
  switch (query->op()) {
    case RaOp::kScan:
      return query->alias() + "." + attr;
    case RaOp::kProject: {
      for (const ProjectItem& item : query->project_items()) {
        if (item.name == attr) return item.name;
        size_t dot = item.name.rfind('.');
        if (dot != std::string::npos &&
            item.name.compare(dot + 1, std::string::npos, attr) == 0) {
          return item.name;
        }
      }
      return Status::NotFound("attribute '" + attr +
                              "' not found in projection");
    }
    case RaOp::kGroupBy: {
      for (const ra::ScalarExprPtr& key : query->group_keys()) {
        if (key->op() == ScalarOp::kColumnRef) {
          const std::string& name = key->column_name();
          if (name == attr) return name;
          size_t dot = name.rfind('.');
          if (dot != std::string::npos &&
              name.compare(dot + 1, std::string::npos, attr) == 0) {
            return name;
          }
        }
      }
      for (const ra::AggregateSpec& agg : query->aggregates()) {
        if (agg.name == attr) return agg.name;
      }
      return Status::NotFound("attribute '" + attr +
                              "' not found in group-by output");
    }
    case RaOp::kSelect:
    case RaOp::kSort:
    case RaOp::kDedup:
    case RaOp::kLimit:
      return QualifyAttr(query->child(0), attr);
    case RaOp::kJoin:
    case RaOp::kLeftOuterJoin:
    case RaOp::kOuterApply: {
      Result<std::string> left = QualifyAttr(query->left(), attr);
      Result<std::string> right = QualifyAttr(query->right(), attr);
      if (left.ok() && right.ok()) {
        return Status::InvalidArgument("attribute '" + attr +
                                       "' is ambiguous across a join");
      }
      if (left.ok()) return left;
      if (right.ok()) return right;
      return Status::NotFound("attribute '" + attr + "' not found");
    }
  }
  return Status::Internal("QualifyAttr: unknown operator");
}

namespace {

ScalarExprPtr RewriteScalar(
    const ScalarExprPtr& expr,
    const std::function<ScalarExprPtr(const ScalarExprPtr&)>& fn);

RaNodePtr RewriteExprsImpl(
    const RaNodePtr& node,
    const std::function<ScalarExprPtr(const ScalarExprPtr&)>& fn) {
  std::vector<RaNodePtr> kids;
  bool changed = false;
  for (const RaNodePtr& c : node->children()) {
    RaNodePtr nc = RewriteExprsImpl(c, fn);
    changed |= (nc != c);
    kids.push_back(std::move(nc));
  }
  ScalarExprPtr pred = node->predicate() != nullptr
                           ? RewriteScalar(node->predicate(), fn)
                           : nullptr;
  changed |= (pred != node->predicate());

  switch (node->op()) {
    case RaOp::kScan:
      return node;
    case RaOp::kSelect:
      if (!changed) return node;
      return RaNode::Select(kids[0], pred);
    case RaOp::kProject: {
      std::vector<ProjectItem> items;
      for (const ProjectItem& item : node->project_items()) {
        ScalarExprPtr e = RewriteScalar(item.expr, fn);
        changed |= (e != item.expr);
        items.push_back({std::move(e), item.name});
      }
      if (!changed) return node;
      return RaNode::Project(kids[0], std::move(items));
    }
    case RaOp::kJoin:
      if (!changed) return node;
      return RaNode::Join(kids[0], kids[1], pred);
    case RaOp::kLeftOuterJoin:
      if (!changed) return node;
      return RaNode::LeftOuterJoin(kids[0], kids[1], pred);
    case RaOp::kOuterApply:
      if (!changed) return node;
      return RaNode::OuterApply(kids[0], kids[1]);
    case RaOp::kGroupBy: {
      std::vector<ScalarExprPtr> keys;
      for (const ScalarExprPtr& key : node->group_keys()) {
        ScalarExprPtr e = RewriteScalar(key, fn);
        changed |= (e != key);
        keys.push_back(std::move(e));
      }
      std::vector<ra::AggregateSpec> aggs;
      for (const ra::AggregateSpec& agg : node->aggregates()) {
        ScalarExprPtr arg =
            agg.arg != nullptr ? RewriteScalar(agg.arg, fn) : nullptr;
        changed |= (arg != agg.arg);
        aggs.push_back({agg.func, std::move(arg), agg.name});
      }
      if (!changed) return node;
      return RaNode::GroupBy(kids[0], std::move(keys), std::move(aggs));
    }
    case RaOp::kSort: {
      std::vector<ra::SortKey> keys;
      for (const ra::SortKey& key : node->sort_keys()) {
        ScalarExprPtr e = RewriteScalar(key.expr, fn);
        changed |= (e != key.expr);
        keys.push_back({std::move(e), key.ascending});
      }
      if (!changed) return node;
      return RaNode::Sort(kids[0], std::move(keys));
    }
    case RaOp::kDedup:
      if (!changed) return node;
      return RaNode::Dedup(kids[0]);
    case RaOp::kLimit:
      if (!changed) return node;
      return RaNode::Limit(kids[0], node->limit());
  }
  return node;
}

ScalarExprPtr RewriteScalar(
    const ScalarExprPtr& expr,
    const std::function<ScalarExprPtr(const ScalarExprPtr&)>& fn) {
  if (expr == nullptr) return nullptr;
  ScalarExprPtr direct = fn(expr);
  if (direct != nullptr) return direct;
  if (expr->op() == ScalarOp::kExists || expr->op() == ScalarOp::kNotExists) {
    RaNodePtr sub = RewriteExprsImpl(expr->subquery(), fn);
    if (sub == expr->subquery()) return expr;
    return ScalarExpr::Exists(sub, expr->op() == ScalarOp::kNotExists);
  }
  if (expr->children().empty()) return expr;
  std::vector<ScalarExprPtr> kids;
  bool changed = false;
  for (const ScalarExprPtr& c : expr->children()) {
    ScalarExprPtr nc = RewriteScalar(c, fn);
    changed |= (nc != c);
    kids.push_back(std::move(nc));
  }
  if (!changed) return expr;
  return ScalarExpr::Nary(expr->op(), std::move(kids));
}

}  // namespace

RaNodePtr RewriteExprs(
    const RaNodePtr& node,
    const std::function<ScalarExprPtr(const ScalarExprPtr&)>& fn) {
  return RewriteExprsImpl(node, fn);
}

RaNodePtr BindParameters(const RaNodePtr& node,
                         const std::vector<ScalarExprPtr>& bindings) {
  return RewriteExprs(node, [&](const ScalarExprPtr& e) -> ScalarExprPtr {
    if (e->op() == ScalarOp::kParameter) {
      int i = e->parameter_index();
      if (i >= 0 && static_cast<size_t>(i) < bindings.size() &&
          bindings[i] != nullptr) {
        return bindings[i];
      }
    }
    return nullptr;
  });
}

RaNodePtr ShiftParameters(const RaNodePtr& node, int offset) {
  if (offset == 0) return node;
  return RewriteExprs(node, [&](const ScalarExprPtr& e) -> ScalarExprPtr {
    if (e->op() == ScalarOp::kParameter) {
      return ScalarExpr::Parameter(e->parameter_index() + offset);
    }
    return nullptr;
  });
}

bool ReferencesVars(const ScalarExprPtr& expr,
                    const std::set<std::string>& vars) {
  std::vector<std::string> refs;
  ra::CollectColumnRefs(expr, &refs);
  for (const std::string& r : refs) {
    size_t dot = r.find('.');
    if (dot != std::string::npos && vars.count(r.substr(0, dot)) > 0) {
      return true;
    }
  }
  return false;
}

namespace {

void SplitConjunctsImpl(const ScalarExprPtr& pred,
                        std::vector<ScalarExprPtr>* out) {
  if (pred == nullptr) return;
  if (pred->op() == ScalarOp::kAnd) {
    SplitConjunctsImpl(pred->child(0), out);
    SplitConjunctsImpl(pred->child(1), out);
    return;
  }
  out->push_back(pred);
}

}  // namespace

bool ResolvesIn(const RaNodePtr& query, const std::string& name) {
  size_t dot = name.rfind('.');
  std::string bare = dot == std::string::npos ? name : name.substr(dot + 1);
  Result<std::string> qualified = QualifyAttr(query, bare);
  if (!qualified.ok()) return false;
  // A qualified spelling must match the query's own qualification;
  // an unqualified one resolves if the bare attribute is found.
  return dot == std::string::npos || *qualified == name;
}

RaNodePtr ExtractCorrelatedConjuncts(const RaNodePtr& query,
                                     std::vector<ScalarExprPtr>* extracted) {
  if (query->op() == RaOp::kSelect) {
    RaNodePtr child = ExtractCorrelatedConjuncts(query->child(0), extracted);
    std::vector<ScalarExprPtr> conjuncts;
    SplitConjunctsImpl(query->predicate(), &conjuncts);
    std::vector<ScalarExprPtr> kept;
    for (const ScalarExprPtr& c : conjuncts) {
      std::vector<std::string> refs;
      ra::CollectColumnRefs(c, &refs);
      bool correlated = false;
      for (const std::string& r : refs) {
        if (!ResolvesIn(child, r)) correlated = true;
      }
      if (correlated) {
        extracted->push_back(c);
      } else {
        kept.push_back(c);
      }
    }
    if (kept.empty()) return child;
    return RaNode::Select(child, ScalarExpr::MakeAnd(std::move(kept)));
  }
  if (query->op() == RaOp::kProject) {
    RaNodePtr child = ExtractCorrelatedConjuncts(query->child(0), extracted);
    if (child == query->child(0)) return query;
    return RaNode::Project(child, query->project_items());
  }
  return query;
}

Result<std::string> PrimaryScanKey(
    const RaNodePtr& query, const std::map<std::string, std::string>& keys) {
  const RaNode* cur = query.get();
  while (cur->op() != RaOp::kScan) {
    if (cur->children().empty()) {
      return Status::NotFound("no base scan under query");
    }
    cur = cur->child(0).get();
  }
  auto it = keys.find(AsciiToLower(cur->table_name()));
  if (it == keys.end()) {
    return Status::NotFound("no unique key declared for table " +
                            cur->table_name());
  }
  return cur->alias() + "." + it->second;
}

}  // namespace eqsql::rules
