#include "storage/shard_guard.h"

#include <algorithm>

#include "common/strings.h"

namespace eqsql::storage {

ReadGuard ReadGuard::Acquire(const Database& db,
                             const std::vector<std::string>& tables) {
  std::vector<std::string> keys;
  keys.reserve(tables.size());
  for (const std::string& t : tables) keys.push_back(AsciiToLower(t));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  ReadGuard guard;
  for (std::string& key : keys) {
    std::shared_ptr<const Table> table = db.SnapshotTable(key);
    if (table == nullptr) continue;  // execution reports kNotFound later
    guard.keys_.push_back(std::move(key));
    guard.tables_.push_back(std::move(table));
  }
  // All snapshots taken (registry lock released each time); now lock —
  // canonical order: by sorted table name; within a table the topology
  // lock (shared, so shard_count/shard_mutex are stable and no
  // repartition can free the mutexes while we hold them), then shards
  // in ascending index order.
  for (const auto& table : guard.tables_) {
    guard.topology_locks_.emplace_back(table->topology_mutex());
    for (size_t i = 0; i < table->shard_count(); ++i) {
      guard.locks_.emplace_back(table->shard_mutex(i));
    }
  }
  return guard;
}

const Table* ReadGuard::Find(const std::string& name) const {
  std::string key = AsciiToLower(name);
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return tables_[i].get();
  }
  return nullptr;
}

}  // namespace eqsql::storage
