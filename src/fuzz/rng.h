#ifndef EQSQL_FUZZ_RNG_H_
#define EQSQL_FUZZ_RNG_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace eqsql::fuzz {

/// Deterministic splitmix64 stream for the fuzz subsystem. Every
/// generated program, schema, and row derives from one of these, so a
/// (seed, iteration) pair replays bit-identically across runs and
/// platforms — the harness's replay and corpus features depend on it.
/// Never mix in std::mt19937 / rand(): their streams are not pinned by
/// the C++ standard.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = SplitMix64(state_);
    state_ += 0x9e3779b97f4a7c15ULL;
    return z;
  }

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform index in [0, n).
  size_t Index(size_t n) { return static_cast<size_t>(Next() % n); }

  /// True with probability percent/100.
  bool Percent(int percent) {
    return static_cast<int>(Next() % 100) < percent;
  }

  /// Picks an element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Index(v.size())];
  }

  /// Picks an index according to non-negative weights (at least one
  /// weight must be positive).
  size_t PickWeighted(const std::vector<int>& weights) {
    int64_t total = 0;
    for (int w : weights) total += w;
    int64_t roll = Range(0, total - 1);
    for (size_t i = 0; i < weights.size(); ++i) {
      roll -= weights[i];
      if (roll < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent sub-stream (e.g. one per table) that does
  /// not perturb this stream's position.
  Rng Fork(uint64_t tag) const { return Rng(SplitMix64(state_ ^ tag)); }

 private:
  uint64_t state_;
};

}  // namespace eqsql::fuzz

#endif  // EQSQL_FUZZ_RNG_H_
