#ifndef EQSQL_FRONTEND_LEXER_H_
#define EQSQL_FRONTEND_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "frontend/ast.h"

namespace eqsql::frontend {

/// ImpLang token kinds.
enum class TokKind {
  kEnd,
  kIdent,
  kKeyword,   // func if else for while return print break true false null
  kIntLit,
  kDoubleLit,
  kStringLit,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace,
  kComma, kSemi, kColon, kDot,
  kAssign,   // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr, kBang,
  kQuestion,
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0;
  SourceLoc loc;
};

/// Tokenizes ImpLang source. Supports // line comments and /* block */
/// comments; string literals use double quotes with backslash escapes.
Result<std::vector<Tok>> TokenizeImp(std::string_view input);

}  // namespace eqsql::frontend

#endif  // EQSQL_FRONTEND_LEXER_H_
