#ifndef EQSQL_RULES_TRANSFORM_H_
#define EQSQL_RULES_TRANSFORM_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dir/dnode.h"

namespace eqsql::rules {

/// Options steering rule application.
struct TransformOptions {
  /// Declared unique keys: lowercase table name → key column. Rules T4.1
  /// and T5.2 require the outer query's base table to have a key
  /// (paper Sec. 5.1).
  std::map<std::string, std::string> table_keys;
  /// Keyword-search mode (paper Experiment 3): result ordering is not
  /// relevant, so list folds are treated as multiset folds (rule T4.3)
  /// and no key/sort is required.
  bool ignore_ordering = false;
  /// Rule names ("T1", "T2", "T3", "T4", "T5.1", "T5.2", "T6", "T7",
  /// "EXISTS") to disable — used by the ablation benchmark.
  std::set<std::string> disabled_rules;
};

/// Applies the F-IR transformation rules (paper Sec. 5.1 and App. B) to
/// fixpoint, bottom-up. The rule set is confluent and terminating
/// (Sec. 5.3): every rule pushes computation from the folding function
/// into the query.
///
/// Outcomes per fold:
///  * collection folds become kQuery nodes (T1/T4/T5.2/T7),
///  * scalar-aggregation folds become scalar expressions over
///    kScalar(kQuery) combined with their initial value (T5.1 + T6),
///  * folds over correlated queries are left intact for the enclosing
///    fold's rule (T4/T5.2) to consume,
///  * anything else stays a fold (extraction fails for that variable).
class Transformer {
 public:
  Transformer(dir::DagContext* ctx, TransformOptions opts)
      : ctx_(ctx), opts_(std::move(opts)) {}

  /// Transforms `node`; returns the rewritten ee-DAG expression.
  dir::DNodePtr Transform(const dir::DNodePtr& node);

  /// Names of rules applied during the last Transform, in order.
  const std::vector<std::string>& applied_rules() const { return applied_; }

 private:
  bool Enabled(const std::string& rule) const {
    return opts_.disabled_rules.count(rule) == 0;
  }
  std::set<std::string> OuterVars() const {
    return std::set<std::string>(var_stack_.begin(), var_stack_.end());
  }

  dir::DNodePtr Rewrite(const dir::DNodePtr& node);
  dir::DNodePtr TransformFold(dir::DNodePtr fold);

  // Individual rules; each returns null when it does not apply.
  dir::DNodePtr TryPredicatePush(const dir::DNodePtr& fold);      // T2
  dir::DNodePtr TryScalarAggregate(const dir::DNodePtr& fold);    // T5.1+T6
  dir::DNodePtr TryExistsPattern(const dir::DNodePtr& fold);      // App. B
  dir::DNodePtr TrySimpleCollect(const dir::DNodePtr& fold);      // T1+T3
  dir::DNodePtr TryJoinIdentification(const dir::DNodePtr& fold); // T4
  dir::DNodePtr TryGroupBy(const dir::DNodePtr& fold);            // T5.2
  dir::DNodePtr TryOuterApply(const dir::DNodePtr& fold);         // T7

  dir::DagContext* ctx_;
  TransformOptions opts_;
  std::vector<std::string> applied_;
  std::vector<std::string> var_stack_;
};

}  // namespace eqsql::rules

#endif  // EQSQL_RULES_TRANSFORM_H_
