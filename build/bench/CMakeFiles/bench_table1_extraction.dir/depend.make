# Empty dependencies file for bench_table1_extraction.
# This may be replaced when dependencies are built.
