#include "net/server.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/strings.h"
#include "core/alternative_selector.h"
#include "frontend/parser.h"
#include "net/scheduler.h"
#include "net/table_stats.h"
#include "obs/explain.h"

namespace eqsql::net {

namespace {

size_t ResolveExecThreads(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 1;
}

/// ServerOptions::trace_sample of 0 defers to EQSQL_TRACE_SAMPLE, the
/// same pattern exec_mode uses with EQSQL_EXEC_MODE. Unparsable values
/// keep sampling off.
size_t ResolveTraceSample(size_t requested) {
  if (requested != 0) return requested;
  const char* env = std::getenv("EQSQL_TRACE_SAMPLE");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<size_t>(v);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      db_(options_.database),
      plan_cache_(options_.plan_cache_capacity),
      pool_(ResolveExecThreads(options_.exec_threads)),
      trace_ring_(options_.trace_ring_capacity),
      slow_log_(1024, options_.slow_query_log_path) {
  options_.trace_sample = ResolveTraceSample(options_.trace_sample);
  // Salt cache keys with the shard configuration: a plan cached under
  // one sharding can never alias a differently-configured server's.
  plan_cache_.set_key_salt(
      SplitMix64(0x5ca1ab1e ^ static_cast<uint64_t>(db_.shard_count())));
  // One registry serves every layer. The optimizer pointer is
  // deliberately NOT part of the plan-cache fingerprint (see
  // OptimizeOptions::metrics), so cached extractions are shared whether
  // or not metrics are on.
  plan_cache_.set_metrics(&metrics_);
  pool_.set_metrics(&metrics_);
  db_.set_metrics(&metrics_);
  options_.optimize.metrics = &metrics_;
  // Last: the scheduler's workers touch everything above, so it is the
  // final member built and (being declared last) the first destroyed.
  SchedulerOptions sched;
  sched.workers = options_.scheduler_workers;
  sched.queue_capacity = options_.scheduler_queue_capacity;
  scheduler_ = std::make_unique<Scheduler>(this, sched);
}

Server::~Server() {
  scheduler_->Shutdown();
  // Workers have joined; anything they logged is buffered. Flush to the
  // configured path (no-op when unset).
  slow_log_.Flush();
}

std::unique_ptr<Session> Server::Connect() {
  int64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = ++sessions_opened_;
  }
  auto session = std::unique_ptr<Session>(new Session(this, id));
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_sessions_[id] = &session->conn_;
  }
  return session;
}

void Server::CloseSession(int64_t id, const ConnectionStats& session_stats) {
  std::lock_guard<std::mutex> lock(mu_);
  live_sessions_.erase(id);
  ++sessions_closed_;
  totals_.queries_executed += session_stats.queries_executed;
  totals_.round_trips += session_stats.round_trips;
  totals_.rows_transferred += session_stats.rows_transferred;
  totals_.bytes_transferred += session_stats.bytes_transferred;
  totals_.simulated_ms += session_stats.simulated_ms;
  max_session_simulated_ms_ =
      std::max(max_session_simulated_ms_, session_stats.simulated_ms);
}

ServerStats Server::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.sessions_opened = sessions_opened_;
    out.sessions_closed = sessions_closed_;
    out.totals = totals_;
    out.max_session_simulated_ms = max_session_simulated_ms_;
    // Live sessions contribute the snapshot their owner thread last
    // published (complete up to the last finished operation).
    for (const auto& [id, conn] : live_sessions_) {
      ConnectionStats live = conn->ApproxStats();
      out.totals.queries_executed += live.queries_executed;
      out.totals.round_trips += live.round_trips;
      out.totals.rows_transferred += live.rows_transferred;
      out.totals.bytes_transferred += live.bytes_transferred;
      out.totals.simulated_ms += live.simulated_ms;
      out.max_session_simulated_ms =
          std::max(out.max_session_simulated_ms, live.simulated_ms);
    }
  }
  // Scheduler worker links: requests submitted through Session::Submit
  // execute on these connections, so server totals would undercount
  // without them. Workers never "close", so there is no double count
  // with the closed-session aggregate above.
  if (scheduler_ != nullptr) {
    for (const ConnectionStats& link : scheduler_->WorkerStats()) {
      out.totals.queries_executed += link.queries_executed;
      out.totals.round_trips += link.round_trips;
      out.totals.rows_transferred += link.rows_transferred;
      out.totals.bytes_transferred += link.bytes_transferred;
      out.totals.simulated_ms += link.simulated_ms;
      out.max_session_simulated_ms =
          std::max(out.max_session_simulated_ms, link.simulated_ms);
    }
  }
  out.plan_cache = plan_cache_.stats();
  return out;
}

Result<std::shared_ptr<const core::ExtractionPlan>> Server::GetOrSelectPlan(
    const std::string& source, const std::string& function) {
  const uint64_t epoch = db_.StatsEpoch();
  return plan_cache_.GetOrSelect(
      source, function, options_.optimize, epoch,
      [&]() -> Result<std::shared_ptr<const core::ExtractionPlan>> {
        // The expensive half (parse -> analyze -> transform -> rewrite)
        // keys WITHOUT the stats epoch, so re-pricing after data growth
        // reuses the cached extraction and only redoes the costing.
        EQSQL_ASSIGN_OR_RETURN(
            std::shared_ptr<const core::OptimizeResult> optimized,
            plan_cache_.GetOrOptimize(source, function, options_.optimize));
        // Re-parse the ORIGINAL program for loop-shape probing (the
        // optimized copy has its loops rewritten away). The Program
        // only needs to outlive Select below.
        Result<frontend::Program> program = frontend::ParseProgram(source);
        const frontend::Function* original =
            program.ok() ? program->Find(function) : nullptr;
        core::AlternativeSelector selector(GatherTableStats(&db_),
                                           options_.cost_model);
        core::ExtractionPlan plan = selector.Select(
            optimized, original,
            [this](const std::string& sql) {
              return plan_cache_.GetOrParseSql(sql);
            },
            epoch);
        return std::make_shared<const core::ExtractionPlan>(std::move(plan));
      });
}

Session::~Session() { server_->CloseSession(id_, conn_.stats()); }

std::future<Outcome> Session::Submit(Request req) {
  if (req.txn == nullptr) req.txn = txn_ctx_;
  return server_->scheduler_->Submit(std::move(req));
}

Outcome Session::Execute(Request req) { return Submit(std::move(req)).get(); }

Result<Explain> Session::ExplainExtraction(const std::string& source,
                                           const std::string& function) {
  return Execute(Request::ExplainExtraction(source, function)).TakeExplain();
}

Result<std::shared_ptr<const core::ExtractionPlan>> Session::SelectPlan(
    const std::string& source, const std::string& function) {
  return server_->GetOrSelectPlan(source, function);
}

Result<std::shared_ptr<const core::OptimizeResult>> Session::OptimizeCached(
    const std::string& source, const std::string& function) {
  return server_->plan_cache_.GetOrOptimize(source, function,
                                            server_->options_.optimize);
}

Status Session::CreateTempTable(const std::string& name,
                                catalog::Schema schema,
                                std::vector<catalog::Row> rows) {
  // Invalidate on BOTH sides of the registry mutation. Before: a plan
  // computed against the old shape must not survive into the build.
  // After: a racing session can parse and re-insert a plan against the
  // old registry entry in the window between the first invalidation
  // and PublishTable; the second invalidation sweeps that stale entry
  // out once the new table is visible.
  server_->plan_cache_.InvalidateTable(name);
  Status status =
      conn_.CreateTempTable(name, std::move(schema), std::move(rows));
  server_->plan_cache_.InvalidateTable(name);
  return status;
}

void Session::DropTempTable(const std::string& name) {
  // Same invalidate-mutate-invalidate bracket as CreateTempTable.
  server_->plan_cache_.InvalidateTable(name);
  conn_.DropTempTable(name);
  server_->plan_cache_.InvalidateTable(name);
}

}  // namespace eqsql::net
