#include "workloads/wilos_samples.h"

#include <map>

#include "common/hash.h"

namespace eqsql::workloads {

namespace {

/// Deterministic pseudo-random generator (splitmix64) so every run of
/// the benchmarks sees identical data. Next() advances the canonical
/// splitmix64 stream: the i-th draw is SplitMix64(seed + i*golden).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = SplitMix64(state_);
    state_ += 0x9e3779b97f4a7c15ULL;
    return z;
  }
  int64_t Range(int64_t lo, int64_t hi) {  // inclusive bounds
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(
                                                  hi - lo + 1));
  }
 private:
  uint64_t state_;
};

std::vector<WilosSample> BuildSamples() {
  std::vector<WilosSample> samples;
  auto add = [&](int index, std::string location, std::string qbs,
                 std::string paper, bool expect, bool batching,
                 std::string function, std::string source) {
    samples.push_back(WilosSample{index, std::move(location), std::move(qbs),
                                  std::move(paper), expect, batching,
                                  std::move(function), std::move(source)});
  };

  add(1, "ActivityService (401)", "-", "<1", true, false, "sample1", R"(
func sample1(pid) {
  result = list();
  activities = executeQuery("SELECT * FROM activity AS a");
  for (a : activities) {
    if (a.project_id == pid) {
      result.append(a);
    }
  }
  return result;
}
)");

  add(2, "ActivityService (328)", "-", "<1", true, false, "sample2", R"(
func sample2() {
  names = list();
  activities = executeQuery("SELECT * FROM activity AS a");
  for (a : activities) {
    names.append(a.name);
  }
  return names;
}
)");

  add(3, "Guidance Service (140)", "-", "<1", true, false, "sample3", R"(
func sample3(aid) {
  result = list();
  guides = executeQuery("SELECT * FROM guidance AS g");
  for (g : guides) {
    if (g.activity_id == aid && g.gtype == 1) {
      result.append(g);
    }
  }
  return result;
}
)");

  add(4, "Guidance Service (154)", "-", "<1", true, false, "sample4", R"(
func sample4() {
  texts = list();
  guides = executeQuery("SELECT * FROM guidance AS g");
  for (g : guides) {
    if (g.gtype == 2) {
      texts.append(g.text);
    }
  }
  return texts;
}
)");

  // Polymorphic type comparison: not handled (paper Sec. 7.1).
  add(5, "ProjectService (266)", "-", "-", false, false, "sample5", R"(
func sample5() {
  result = list();
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    if (instanceOf(p, "ConcreteProject")) {
      result.append(p.name);
    }
  }
  return result;
}
)");

  add(6, "ProjectService (297)", "19", "<1", true, false, "sample6", R"(
func sample6() {
  unfinished = list();
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    if (p.finished == 0) {
      unfinished.append(p);
    }
  }
  return unfinished;
}
)");

  // Selection using a custom comparator: not handled.
  add(7, "ProjectService (338)", "-", "-", false, false, "sample7", R"(
func sample7() {
  result = list();
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    if (compareWithPolicy(p.name)) {
      result.append(p);
    }
  }
  return result;
}
)");

  add(8, "ProjectService (394)", "21", "<2", true, true, "sample8", R"(
func sample8() {
  result = list();
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    acts = executeQuery(
        "SELECT * FROM activity AS a WHERE a.project_id = ?", p.id);
    for (a : acts) {
      result.append(pair(p.name, a.name));
    }
  }
  return result;
}
)");

  add(9, "ProjectService (410)", "39", "<1", true, false, "sample9", R"(
func sample9() {
  n = 0;
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    if (p.finished == 1) {
      n = n + 1;
    }
  }
  return n;
}
)");

  add(10, "ProjectService (248)", "150", "<1", true, false, "sample10", R"(
func sample10(pid) {
  found = false;
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    if (p.id == pid && p.finished == 0) {
      found = true;
    }
  }
  return found;
}
)");

  add(11, "AffectedtoDao (13)", "72", "<2", true, true, "sample11", R"(
func sample11() {
  result = list();
  parts = executeQuery("SELECT * FROM participant AS pt");
  for (pt : parts) {
    users = executeQuery("SELECT * FROM wuser AS u WHERE u.id = ?",
                         pt.user_id);
    for (u : users) {
      result.append(u.login);
    }
  }
  return result;
}
)");

  // Retrieving the i'th element of a list: not handled (Sec. 5.4).
  add(12, "ConcreteActivityDao (139)", "-", "-", false, false, "sample12", R"(
func sample12() {
  result = list();
  activities = executeQuery("SELECT * FROM activity AS a");
  for (a : activities) {
    result.append(result.get(0));
  }
  return result;
}
)");

  add(13, "ConcreteActivityService (133)", "-", "X", true, false,
      "sample13", R"(
func sample13() {
  result = list();
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    total = 0;
    acts = executeQuery(
        "SELECT * FROM activity AS a WHERE a.project_id = ?", p.id);
    for (a : acts) {
      total = total + a.effort;
    }
    result.append(pair(p.name, total));
  }
  return result;
}
)");

  add(14, "ConcreteRoleAffectationService (55)", "310", "X", true, false,
      "sample14", R"(
func sample14() {
  result = list();
  users = executeQuery("SELECT * FROM wuser AS u");
  roles = executeQuery("SELECT * FROM role AS r");
  for (u : users) {
    for (r : roles) {
      if (u.role_id == r.id) {
        result.append(pair(u.login, r.name));
      }
    }
  }
  return result;
}
)");

  // Paged fetching with a while loop: EqSQL targets cursor loops only;
  // batching handles it via loop splitting (Experiment 2).
  add(15, "ConcreteRoleDescriptorService (181)", "290", "-", false, true,
      "sample15", R"(
func sample15(npages) {
  result = list();
  page = 0;
  while (page < npages) {
    rows = executeQuery("SELECT * FROM role AS r WHERE r.id = ?", page);
    for (r : rows) {
      result.append(r.name);
    }
    page = page + 1;
  }
  return result;
}
)");

  // Unconditional loop exit: not handled (Sec. 2).
  add(16, "ConcreteWorkBreakdownElementService(55)", "-", "-", false, false,
      "sample16", R"(
func sample16() {
  total = 0;
  products = executeQuery("SELECT * FROM workproduct AS w");
  for (w : products) {
    if (w.state == 3) {
      break;
    }
    total = total + w.size;
  }
  return total;
}
)");

  add(17, "ConcreteWorkProductDescriptorService(236)", "284", "-", false,
      true, "sample17", R"(
func sample17(n) {
  i = 0;
  names = list();
  while (i < n) {
    rows = executeQuery("SELECT * FROM workproduct AS w WHERE w.id = ?", i);
    for (w : rows) {
      names.append(w.name);
    }
    i = i + 1;
  }
  return names;
}
)");

  add(18, "IterationService (103)", "-", "<1", true, false, "sample18", R"(
func sample18() {
  longest = 0;
  activities = executeQuery("SELECT * FROM activity AS a");
  for (a : activities) {
    if (a.effort > longest) {
      longest = a.effort;
    }
  }
  return longest;
}
)");

  add(19, "LoginService (103)", "125", "<2", true, false, "sample19", R"(
func sample19(who) {
  result = list();
  users = executeQuery("SELECT * FROM wuser AS u");
  for (u : users) {
    if (u.login == who) {
      result.append(u);
    }
  }
  return result;
}
)");

  add(20, "LoginService (83)", "164", "<2", true, false, "sample20", R"(
func sample20(who) {
  valid = false;
  users = executeQuery("SELECT * FROM wuser AS u");
  for (u : users) {
    if (u.login == who && u.score > 0) {
      valid = true;
    }
  }
  return valid;
}
)");

  add(21, "ParticipantBean (1079)", "31", "<2", true, false, "sample21", R"(
func sample21() {
  mails = list();
  users = executeQuery("SELECT * FROM wuser AS u");
  for (u : users) {
    mails.append(u.login + "@wilos.org");
  }
  return mails;
}
)");

  // Cursor-position state across a while loop: not handled; batching's
  // loop splitting applies.
  add(22, "ParticipantBean (681)", "121", "-", false, true, "sample22", R"(
func sample22(n) {
  i = 0;
  names = list();
  while (i < n) {
    rows = executeQuery("SELECT * FROM participant AS pt WHERE pt.id = ?", i);
    for (pt : rows) {
      names.append(pt.role_desc);
    }
    i = i + 2;
  }
  return names;
}
)");

  add(23, "ParticipantService (146)", "281", "X", true, false, "sample23",
      R"(
func sample23() {
  result = list();
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    members = 0;
    parts = executeQuery(
        "SELECT * FROM participant AS pt WHERE pt.project_id = ?", p.id);
    for (pt : parts) {
      members = members + 1;
    }
    result.append(pair(p.id, members));
  }
  return result;
}
)");

  add(24, "ParticipantService (119", "301", "<2", true, true, "sample24", R"(
func sample24() {
  result = list();
  parts = executeQuery("SELECT * FROM participant AS pt");
  for (pt : parts) {
    projs = executeQuery("SELECT * FROM project AS p WHERE p.id = ?",
                         pt.project_id);
    for (p : projs) {
      result.append(p.name);
    }
  }
  return result;
}
)");

  // Dependent aggregation (paper Fig. 7(c)): P2 fails.
  add(25, "ParticipantService (266)", "260", "-", false, false, "sample25",
      R"(
func sample25() {
  running = 0;
  weighted = 0;
  parts = executeQuery("SELECT * FROM participant AS pt");
  for (pt : parts) {
    running = running + pt.user_id;
    weighted = weighted + running;
  }
  return weighted;
}
)");

  add(26, "PhaseService (98)", "-", "<2", true, false, "sample26", R"(
func sample26(pid) {
  first = 999999;
  phases = executeQuery("SELECT * FROM phase AS ph");
  for (ph : phases) {
    if (ph.project_id == pid) {
      if (ph.ord < first) {
        first = ph.ord;
      }
    }
  }
  return first;
}
)");

  add(27, "ProcessBean (248)", "82", "<2", true, false, "sample27", R"(
func sample27() {
  states = set();
  products = executeQuery("SELECT * FROM workproduct AS w");
  for (w : products) {
    states.insert(w.state);
  }
  return states;
}
)");

  add(28, "ProcessManagerBean (243)", "50", "<2", true, false, "sample28",
      R"(
func sample28() {
  pending = 0;
  products = executeQuery("SELECT * FROM workproduct AS w");
  for (w : products) {
    if (w.state == 0) {
      pending = pending + 1;
    }
  }
  return pending;
}
)");

  // Early return from the loop: unconditional exit, not handled.
  add(29, "RoleDao (15)", "-", "-", false, false, "sample29", R"(
func sample29(rid) {
  roles = executeQuery("SELECT * FROM role AS r");
  for (r : roles) {
    if (r.id == rid) {
      return r.name;
    }
  }
  return "none";
}
)");

  add(30, "RoleService (15)", "150", "X", true, true, "sample30", R"(
func sample30() {
  result = list();
  users = executeQuery("SELECT * FROM wuser AS u");
  for (u : users) {
    roles = executeQuery("SELECT * FROM role AS r WHERE r.id = ?",
                         u.role_id);
    for (r : roles) {
      result.append(pair(u.login, r.name));
    }
  }
  return result;
}
)");

  add(31, "WilosUserBean (717)", "23", "X", true, false, "sample31", R"(
func sample31() {
  active = list();
  users = executeQuery("SELECT * FROM wuser AS u");
  for (u : users) {
    if (u.score > 10) {
      active.append(pair(u.id, u.login));
    }
  }
  return active;
}
)");

  add(32, "WorkProductsExpTableBean (990)", "52", "X", true, false,
      "sample32", R"(
func sample32() {
  products = executeQuery("SELECT * FROM workproduct AS w");
  for (w : products) {
    if (w.state == 1) {
      print(w.name);
    }
  }
}
)");

  add(33, "WorkProductsExpTableBean (974)", "50", "X", true, false,
      "sample33", R"(
func sample33() {
  result = list();
  projects = executeQuery("SELECT * FROM project AS p");
  for (p : projects) {
    n = 0;
    products = executeQuery(
        "SELECT * FROM workproduct AS w WHERE w.project_id = ?", p.id);
    for (w : products) {
      n = n + 1;
    }
    result.append(pair(p.name, n));
  }
  return result;
}
)");

  return samples;
}

}  // namespace

const std::vector<WilosSample>& WilosSamples() {
  static const std::vector<WilosSample>* kSamples =
      new std::vector<WilosSample>(BuildSamples());
  return *kSamples;
}

std::map<std::string, std::string> WilosTableKeys() {
  return {{"project", "id"},     {"activity", "id"}, {"wuser", "id"},
          {"role", "id"},        {"participant", "id"}, {"phase", "id"},
          {"workproduct", "id"}, {"guidance", "id"},    {"board", "id"},
          {"applicants", "id"},  {"details", "id"},     {"feedback1", "id"},
          {"feedback2", "id"},   {"education", "id"}};
}

Status SetupWilosDatabase(storage::Database* db, int scale) {
  using catalog::DataType;
  using catalog::Schema;
  using catalog::Value;
  Rng rng(42);

  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * project,
      db->CreateTable("project", Schema({{"id", DataType::kInt64},
                                         {"name", DataType::kString},
                                         {"finished", DataType::kInt64},
                                         {"lead_id", DataType::kInt64}})));
  for (int64_t i = 0; i < scale; ++i) {
    EQSQL_RETURN_IF_ERROR(project->Insert(
        {Value::Int(i), Value::String("project" + std::to_string(i)),
         Value::Int(rng.Range(0, 1)), Value::Int(rng.Range(0, scale - 1))}));
  }
  EQSQL_RETURN_IF_ERROR(project->DeclareUniqueKey("id"));

  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * activity,
      db->CreateTable("activity", Schema({{"id", DataType::kInt64},
                                          {"project_id", DataType::kInt64},
                                          {"name", DataType::kString},
                                          {"state", DataType::kInt64},
                                          {"effort", DataType::kInt64}})));
  for (int64_t i = 0; i < 2 * scale; ++i) {
    EQSQL_RETURN_IF_ERROR(activity->Insert(
        {Value::Int(i), Value::Int(rng.Range(0, scale - 1)),
         Value::String("activity" + std::to_string(i)),
         Value::Int(rng.Range(0, 3)), Value::Int(rng.Range(1, 100))}));
  }
  EQSQL_RETURN_IF_ERROR(activity->DeclareUniqueKey("id"));

  int64_t roles = scale >= 80 ? scale / 40 : 2;
  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * role,
      db->CreateTable("role", Schema({{"id", DataType::kInt64},
                                      {"name", DataType::kString}})));
  for (int64_t i = 0; i < roles; ++i) {
    EQSQL_RETURN_IF_ERROR(role->Insert(
        {Value::Int(i), Value::String("role" + std::to_string(i))}));
  }
  EQSQL_RETURN_IF_ERROR(role->DeclareUniqueKey("id"));

  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * wuser,
      db->CreateTable("wuser", Schema({{"id", DataType::kInt64},
                                       {"login", DataType::kString},
                                       {"role_id", DataType::kInt64},
                                       {"score", DataType::kInt64}})));
  for (int64_t i = 0; i < scale; ++i) {
    EQSQL_RETURN_IF_ERROR(wuser->Insert(
        {Value::Int(i), Value::String("user" + std::to_string(i)),
         Value::Int(rng.Range(0, roles - 1)), Value::Int(rng.Range(0, 50))}));
  }
  EQSQL_RETURN_IF_ERROR(wuser->DeclareUniqueKey("id"));

  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * participant,
      db->CreateTable("participant",
                      Schema({{"id", DataType::kInt64},
                              {"project_id", DataType::kInt64},
                              {"user_id", DataType::kInt64},
                              {"role_desc", DataType::kString}})));
  for (int64_t i = 0; i < 2 * scale; ++i) {
    EQSQL_RETURN_IF_ERROR(participant->Insert(
        {Value::Int(i), Value::Int(rng.Range(0, scale - 1)),
         Value::Int(rng.Range(0, scale - 1)),
         Value::String("desc" + std::to_string(i % 7))}));
  }
  EQSQL_RETURN_IF_ERROR(participant->DeclareUniqueKey("id"));

  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * phase,
      db->CreateTable("phase", Schema({{"id", DataType::kInt64},
                                       {"project_id", DataType::kInt64},
                                       {"name", DataType::kString},
                                       {"ord", DataType::kInt64}})));
  for (int64_t i = 0; i < scale; ++i) {
    EQSQL_RETURN_IF_ERROR(phase->Insert(
        {Value::Int(i), Value::Int(rng.Range(0, scale - 1)),
         Value::String("phase" + std::to_string(i)),
         Value::Int(rng.Range(1, 9))}));
  }
  EQSQL_RETURN_IF_ERROR(phase->DeclareUniqueKey("id"));

  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * workproduct,
      db->CreateTable("workproduct",
                      Schema({{"id", DataType::kInt64},
                              {"project_id", DataType::kInt64},
                              {"name", DataType::kString},
                              {"state", DataType::kInt64},
                              {"size", DataType::kInt64}})));
  for (int64_t i = 0; i < scale; ++i) {
    EQSQL_RETURN_IF_ERROR(workproduct->Insert(
        {Value::Int(i), Value::Int(rng.Range(0, scale - 1)),
         Value::String("wp" + std::to_string(i)),
         Value::Int(rng.Range(0, 3)), Value::Int(rng.Range(1, 1000))}));
  }
  EQSQL_RETURN_IF_ERROR(workproduct->DeclareUniqueKey("id"));

  EQSQL_ASSIGN_OR_RETURN(
      storage::Table * guidance,
      db->CreateTable("guidance", Schema({{"id", DataType::kInt64},
                                          {"activity_id", DataType::kInt64},
                                          {"gtype", DataType::kInt64},
                                          {"text", DataType::kString}})));
  for (int64_t i = 0; i < scale; ++i) {
    EQSQL_RETURN_IF_ERROR(guidance->Insert(
        {Value::Int(i), Value::Int(rng.Range(0, 2 * scale - 1)),
         Value::Int(rng.Range(0, 2)),
         Value::String("guidance text " + std::to_string(i))}));
  }
  EQSQL_RETURN_IF_ERROR(guidance->DeclareUniqueKey("id"));

  return Status::OK();
}

}  // namespace eqsql::workloads
