#include "fuzz/program_gen.h"

#include <algorithm>
#include <utility>

namespace eqsql::fuzz {

using catalog::DataType;

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kFilterCollect: return "filter_collect";
    case Family::kScalarAgg: return "scalar_agg";
    case Family::kMaxMin: return "maxmin";
    case Family::kExists: return "exists";
    case Family::kJoin: return "join";
    case Family::kGroupBy: return "groupby";
    case Family::kArgmax: return "argmax";
    case Family::kApply: return "apply";
    case Family::kPrint: return "print";
    case Family::kBreak: return "break";
    case Family::kPartial: return "partial";
    case Family::kMultiAgg: return "multi_agg";
    case Family::kConcat: return "concat";
    case Family::kCorrExists: return "corr_exists";
    case Family::kDml: return "dml";
    case Family::kTxn: return "txn";
    case Family::kIndex: return "index";
    case Family::kBatch: return "batch";
  }
  return "?";
}

namespace {

std::vector<int> Weights(const GenOptions& o) {
  return {o.w_filter_collect, o.w_scalar_agg, o.w_maxmin,  o.w_exists,
          o.w_join,           o.w_groupby,    o.w_argmax,  o.w_apply,
          o.w_print,          o.w_break,      o.w_partial, o.w_multi,
          o.w_concat,         o.w_corr_exists, o.w_dml,    o.w_txn,
          o.w_index,          o.w_batch};
}

constexpr Family kFamilies[] = {
    Family::kFilterCollect, Family::kScalarAgg, Family::kMaxMin,
    Family::kExists,        Family::kJoin,      Family::kGroupBy,
    Family::kArgmax,        Family::kApply,     Family::kPrint,
    Family::kBreak,         Family::kPartial,   Family::kMultiAgg,
    Family::kConcat,        Family::kCorrExists, Family::kDml,
    Family::kTxn,           Family::kIndex,     Family::kBatch,
};

bool NeedsDim(Family f) {
  return f == Family::kJoin || f == Family::kGroupBy ||
         f == Family::kApply || f == Family::kCorrExists ||
         f == Family::kBatch;
}

/// One string column's value domain ("<prefix>0" .. "<prefix>k").
struct StrCol {
  std::string name;
  std::string prefix;
  int64_t distinct = 6;
};

/// The fact table's randomized column roster. Columns are grouped by
/// the semantic role the renderers need:
///  * notnull_ints — arithmetic fold targets. Imperative `s = s + r.x`
///    poisons the sum with NULL while SQL's SUM skips NULLs, so folds
///    must accumulate NOT NULL columns to be equivalence-comparable
///    (mirrors the paper's Java ints, which cannot be null).
///  * nullable_ints — predicate / max-min material, where NULL handling
///    differences between ImpLang and SQL are exactly what the oracle
///    should probe.
///  * strings — equality predicates, projections, string folds.
struct FactShape {
  std::vector<std::string> notnull_ints;
  std::vector<std::string> nullable_ints;
  std::vector<StrCol> strings;
  bool has_key = true;
};

FactShape MakeFactShape(Rng* rng) {
  FactShape shape;
  // Anchor columns keep hand-reading easy; extras randomize the width.
  shape.notnull_ints.push_back("w");
  for (int i = 2, n = static_cast<int>(rng->Range(1, 3)); i <= n; ++i) {
    shape.notnull_ints.push_back("w" + std::to_string(i));
  }
  shape.nullable_ints.push_back("v");
  if (rng->Percent(35)) shape.nullable_ints.push_back("v2");
  shape.strings.push_back({"name", "n", rng->Range(3, 8)});
  if (rng->Percent(30)) {
    shape.strings.push_back({"label", "L", rng->Range(2, 5)});
  }
  shape.has_key = !rng->Percent(6);
  return shape;
}

/// The dimension table: t1(id key, u, tag [, z...]).
TableSpec MakeDim(Rng* rng, const DataOptions& data) {
  TableSpec spec;
  spec.name = "t1";
  spec.unique_key = "id";
  std::vector<ColumnGen> cols(3);
  cols[0].column = {"id", DataType::kInt64};
  cols[0].kind = ColumnGen::Kind::kSequential;
  cols[1].column = {"u", DataType::kInt64};
  cols[1].lo = 0;
  cols[1].hi = rng->Range(10, 40);
  cols[2].column = {"tag", DataType::kString};
  cols[2].kind = ColumnGen::Kind::kString;
  cols[2].prefix = "g";
  cols[2].distinct = rng->Range(3, 6);
  if (rng->Percent(25)) {  // shape-only padding the programs never read
    ColumnGen pad;
    pad.column = {"z", DataType::kInt64};
    pad.lo = -5;
    pad.hi = 5;
    cols.push_back(pad);
  }
  // Dimensions stay small so joins/group-bys see many-to-one fan-in.
  DataOptions dim_data = data;
  dim_data.max_rows = std::max(2, data.max_rows / 6);
  GenerateRows(rng, dim_data, cols, PickRowCount(rng, dim_data), &spec);
  return spec;
}

/// The fact table: t0(id [key], fk, <shape columns> [, pad]).
TableSpec MakeFact(Rng* rng, const DataOptions& data, const FactShape& shape,
                   int64_t dim_rows) {
  TableSpec spec;
  spec.name = "t0";
  spec.unique_key = shape.has_key ? "id" : "";
  std::vector<ColumnGen> cols;
  {
    ColumnGen id;
    id.column = {"id", DataType::kInt64};
    id.kind = ColumnGen::Kind::kSequential;
    cols.push_back(id);
  }
  {
    ColumnGen fk;
    fk.column = {"fk", DataType::kInt64};
    fk.lo = 0;
    fk.hi = std::max<int64_t>(dim_rows + 1, 2);  // dangling refs too
    fk.nullable = rng->Percent(25);
    cols.push_back(fk);
  }
  for (const std::string& name : shape.nullable_ints) {
    ColumnGen c;
    c.column = {name, DataType::kInt64};
    c.lo = -20;
    c.hi = 100;
    c.nullable = rng->Percent(60);
    cols.push_back(c);
  }
  for (const std::string& name : shape.notnull_ints) {
    ColumnGen c;
    c.column = {name, DataType::kInt64};
    c.lo = 0;
    c.hi = 50;
    cols.push_back(c);
  }
  for (const StrCol& sc : shape.strings) {
    ColumnGen c;
    c.column = {sc.name, DataType::kString};
    c.kind = ColumnGen::Kind::kString;
    c.prefix = sc.prefix;
    c.distinct = sc.distinct;
    cols.push_back(c);
  }
  if (rng->Percent(20)) {  // padding column the program never touches
    ColumnGen pad;
    pad.column = {"pad", DataType::kInt64};
    pad.lo = 0;
    pad.hi = 9;
    pad.nullable = rng->Percent(50);
    cols.push_back(pad);
  }
  GenerateRows(rng, data, cols, PickRowCount(rng, data), &spec);
  return spec;
}

/// A random integer value column of either nullability.
const std::string& AnyIntCol(Rng* rng, const FactShape& shape) {
  if (rng->Percent(55)) return rng->Pick(shape.nullable_ints);
  return rng->Pick(shape.notnull_ints);
}

/// A random comparison over fact-table cursor `r`.
std::string FactPredicate(Rng* rng, const FactShape& shape,
                          const std::string& r) {
  static const std::vector<std::string> ops = {">", "<", ">=",
                                               "<=", "==", "!="};
  auto atom = [&]() -> std::string {
    int roll = static_cast<int>(rng->Range(0, 9));
    if (roll < 2) {
      const StrCol& sc = rng->Pick(shape.strings);
      return r + "." + sc.name + " " + (rng->Percent(50) ? "==" : "!=") +
             " \"" + sc.prefix + std::to_string(rng->Range(0, sc.distinct)) +
             "\"";
    }
    const std::string& col = AnyIntCol(rng, shape);
    return r + "." + col + " " + rng->Pick(ops) + " " +
           std::to_string(rng->Range(-5, 105));
  };
  std::string pred = atom();
  if (rng->Percent(25)) {
    // Parenthesized so callers can conjoin with a join-key equality
    // without `&&`/`||` precedence widening the predicate.
    pred = "(" + pred + (rng->Percent(50) ? " && " : " || ") + atom() + ")";
  }
  return pred;
}

/// A random per-row projection over cursor `r`. Scalars only when
/// `scalar_only` (set elements and print arguments).
std::string FactProjection(Rng* rng, const FactShape& shape,
                           const std::string& r, bool scalar_only) {
  const std::string& str = shape.strings[0].name;
  const std::string& nn = rng->Pick(shape.notnull_ints);
  int roll = static_cast<int>(rng->Range(0, scalar_only ? 4 : 5));
  switch (roll) {
    case 0: return r + "." + str;
    case 1: return r + "." + rng->Pick(shape.nullable_ints);
    case 2: return r + "." + nn;
    case 3: return r + "." + shape.nullable_ints[0] + " + " + r + "." + nn;
    case 4: return r + "." + nn + " * 2";
    default:
      return "pair(" + r + "." + str + ", " + r + "." +
             shape.nullable_ints[0] + ")";
  }
}

std::string Guarded(const std::string& pred, const std::string& stmt) {
  return "    if (" + pred + ") { " + stmt + " }\n";
}

std::string Scan(const std::string& handle, const std::string& alias,
                 const std::string& table) {
  return "  " + handle + " = executeQuery(\"SELECT * FROM " + table +
         " AS " + alias + "\");\n";
}

// --- family renderers ----------------------------------------------------
// Each returns the body of `func f() { ... }` for its family.

std::string GenFilterCollect(Rng* rng, const FactShape& shape) {
  bool use_set = rng->Percent(25);
  bool guarded = rng->Percent(80);
  std::string s = "  out = " + std::string(use_set ? "set()" : "list()") +
                  ";\n" + Scan("rows", "r", "t0");
  std::string append = std::string("out.") +
                       (use_set ? "insert" : "append") + "(" +
                       FactProjection(rng, shape, "r", use_set) + ");";
  s += "  for (r : rows) {\n";
  s += guarded ? Guarded(FactPredicate(rng, shape, "r"), append)
               : "    " + append + "\n";
  s += "  }\n  return out;\n";
  return s;
}

std::string GenScalarAgg(Rng* rng, const FactShape& shape) {
  bool is_count = rng->Percent(40);
  const std::string& col = rng->Pick(shape.notnull_ints);
  std::string init = std::to_string(rng->Range(-10, 10));
  std::string update = is_count ? "s = s + 1;" : "s = s + r." + col + ";";
  std::string s = "  s = " + init + ";\n" + Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  s += rng->Percent(80) ? Guarded(FactPredicate(rng, shape, "r"), update)
                        : "    " + update + "\n";
  s += "  }\n  return s;\n";
  return s;
}

std::string GenMaxMin(Rng* rng, const FactShape& shape) {
  bool is_max = rng->Percent(50);
  bool builtin = rng->Percent(40);
  const std::string& col = AnyIntCol(rng, shape);
  std::string init = std::to_string(rng->Range(-30, 60));
  std::string s = "  m = " + init + ";\n" + Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  if (builtin) {
    s += "    m = " + std::string(is_max ? "max" : "min") + "(m, r." + col +
         ");\n";
  } else {
    s += Guarded("r." + col + (is_max ? " > m" : " < m"),
                 "m = r." + col + ";");
  }
  s += "  }\n  return m;\n";
  return s;
}

std::string GenExists(Rng* rng, const FactShape& shape) {
  bool negated = rng->Percent(30);  // NOT EXISTS shape
  std::string s = "  found = " + std::string(negated ? "true" : "false") +
                  ";\n" + Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  s += Guarded(FactPredicate(rng, shape, "r"),
               negated ? "found = false;" : "found = true;");
  s += "  }\n  return found;\n";
  return s;
}

std::string GenJoin(Rng* rng, const FactShape& shape) {
  std::string pred = "a.fk == b.id";
  if (rng->Percent(40)) pred += " && " + FactPredicate(rng, shape, "a");
  std::string proj = rng->Percent(50)
                         ? "pair(a." + shape.strings[0].name + ", b.tag)"
                         : "pair(a." + shape.nullable_ints[0] + ", b.u)";
  std::string s = "  out = list();\n" + Scan("as", "a", "t0") +
                  Scan("bs", "b", "t1");
  s += "  for (a : as) {\n    for (b : bs) {\n";
  s += "      if (" + pred + ") { out.append(" + proj + "); }\n";
  s += "    }\n  }\n  return out;\n";
  return s;
}

std::string GenGroupBy(Rng* rng, const FactShape& shape) {
  int kind = static_cast<int>(rng->Range(0, 2));  // sum / count / max
  const std::string& nn = rng->Pick(shape.notnull_ints);
  const std::string& nullable = shape.nullable_ints[0];
  std::string init = kind == 2 ? std::to_string(rng->Range(-10, 30))
                               : std::to_string(rng->Range(-5, 5));
  std::string update = kind == 0   ? "agg = agg + m." + nn + ";"
                       : kind == 1 ? "agg = agg + 1;"
                                   : "agg = m." + nullable + ";";
  std::string guard = kind == 2 ? "m." + nullable + " > agg"
                                : FactPredicate(rng, shape, "m");
  std::string s = "  out = list();\n" + Scan("ds", "d", "t1");
  s += "  for (d : ds) {\n";
  s += "    agg = " + init + ";\n";
  s += "    ms = executeQuery(\"SELECT * FROM t0 AS m WHERE m.fk = ?\", "
       "d.id);\n";
  s += "    for (m : ms) {\n";
  s += "      if (" + guard + ") { " + update + " }\n";
  s += "    }\n";
  s += "    out.append(pair(d.tag, agg));\n";
  s += "  }\n  return out;\n";
  return s;
}

std::string GenArgmax(Rng* rng, const FactShape& shape) {
  bool is_max = rng->Percent(60);
  const std::string& col = AnyIntCol(rng, shape);
  const std::string& str = shape.strings[0].name;
  std::string init = std::to_string(rng->Range(-30, 40));
  std::string s = "  best = " + init + ";\n  who = \"none\";\n" +
                  Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  s += "    if (r." + col + (is_max ? " > best" : " < best") +
       ") { best = r." + col + "; who = r." + str + "; }\n";
  s += "  }\n  return pair(who, best);\n";
  return s;
}

std::string GenApply(Rng* rng, const FactShape& shape) {
  bool collect = rng->Percent(50);
  const std::string& str = shape.strings[0].name;
  std::string s = collect ? "  out = list();\n" : "";
  s += Scan("rows", "a", "t0");
  s += "  for (a : rows) {\n";
  s += "    aux = scalar(executeQuery(\"SELECT b.u AS u FROM t1 AS b WHERE "
       "b.id = ?\", a.fk));\n";
  s += collect ? "    out.append(pair(a." + str + ", aux));\n"
               : "    print(pair(a." + str + ", aux));\n";
  s += "  }\n";
  if (collect) s += "  return out;\n";
  return s;
}

/// The batching baseline's home turf: per-row point probes of the keyed
/// dimension with loop-pure parameters — exactly the shape the
/// set-oriented rewrite in baselines/batching_exec.h targets. Probing
/// the unique key keeps every demultiplexed group at most one row, so
/// row order cannot differ between per-row and batched execution, and
/// the oracle's three arms (original, extracted, batched) must agree
/// exactly. The concat variant pins the case where extraction refuses
/// (no rule targets string folds) while batching still applies.
std::string GenBatch(Rng* rng, const FactShape& shape) {
  const std::string& str = shape.strings[0].name;
  const bool arith = rng->Percent(40);
  const bool second_site = rng->Percent(35);
  const bool guarded = rng->Percent(30);
  const int emit_kind = static_cast<int>(rng->Range(0, 3));
  const std::string param =
      arith ? "a.fk + " + std::to_string(rng->Range(0, 2)) : "a.fk";
  std::string s = emit_kind == 0   ? "  out = list();\n"
                  : emit_kind == 1 ? "  s = \"\";\n"
                                   : "";
  s += Scan("rows", "a", "t0");
  s += "  for (a : rows) {\n";
  s += "    x = scalar(executeQuery(\"SELECT b.u AS u FROM t1 AS b WHERE "
       "b.id = ?\", " + param + "));\n";
  std::string proj = "pair(a." + str + ", x)";
  if (second_site) {
    s += "    y = scalar(executeQuery(\"SELECT b.tag AS tag FROM t1 AS b "
         "WHERE b.id = ?\", a.fk));\n";
    proj = "tuple(a." + str + ", x, y)";
  }
  const std::string emit = emit_kind == 0   ? "out.append(" + proj + ");"
                           : emit_kind == 1 ? "s = concat(s, " + proj + ");"
                                            : "print(" + proj + ");";
  s += guarded ? Guarded(FactPredicate(rng, shape, "a"), emit)
               : "    " + emit + "\n";
  s += "  }\n";
  if (emit_kind == 0) s += "  return out;\n";
  if (emit_kind == 1) s += "  return s;\n";
  return s;
}

std::string GenPrint(Rng* rng, const FactShape& shape) {
  std::string s = Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  s += Guarded(FactPredicate(rng, shape, "r"),
               "print(" + FactProjection(rng, shape, "r", true) + ");");
  s += "  }\n";
  return s;
}

std::string GenBreak(Rng* rng, const FactShape& shape) {
  std::string s = "  out = list();\n" + Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  s += Guarded(FactPredicate(rng, shape, "r"), "break;");
  s += "    out.append(r." + shape.strings[0].name + ");\n";
  s += "  }\n  return out;\n";
  return s;
}

std::string GenPartial(Rng* rng, const FactShape& shape) {
  const std::string& col = rng->Pick(shape.notnull_ints);
  std::string s = "  s = 0;\n  d = " + std::to_string(rng->Range(0, 3)) +
                  ";\n" + Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  s += "    s = s + r." + col + ";\n    d = d + s;\n";
  s += "  }\n  return pair(s, d);\n";
  return s;
}

std::string GenMultiAgg(Rng* rng, const FactShape& shape) {
  const std::string& nullable = shape.nullable_ints[0];
  std::string init = std::to_string(rng->Range(-10, 20));
  std::string s = "  n = 0;\n  m = " + init + ";\n" +
                  Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  s += Guarded(FactPredicate(rng, shape, "r"), "n = n + 1;");
  s += Guarded("r." + nullable + " > m", "m = r." + nullable + ";");
  s += "  }\n  return pair(n, m);\n";
  return s;
}

/// String aggregation: a concat fold over a string column, optionally
/// guarded. No transformation rule targets string folds yet, so today
/// this family pins the refusal path (the program must survive intact
/// and equivalent); when a string_agg rule lands, the same family
/// starts validating it with zero generator changes.
std::string GenConcat(Rng* rng, const FactShape& shape) {
  const StrCol& sc = rng->Pick(shape.strings);
  bool guarded = rng->Percent(60);
  std::string update = "s = concat(s, r." + sc.name + ");";
  std::string s = "  s = \"\";\n" + Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  s += guarded ? Guarded(FactPredicate(rng, shape, "r"), update)
               : "    " + update + "\n";
  s += "  }\n  return s;\n";
  return s;
}

/// Correlated EXISTS inside a predicate: an inner per-row query sets a
/// flag that guards the collection — the imperative spelling of
/// `WHERE EXISTS (SELECT .. FROM t1 b WHERE b.id = a.fk AND b.u > K)`.
std::string GenCorrExists(Rng* rng, const FactShape& shape) {
  bool negated = rng->Percent(25);
  std::string inner_guard = "b.u " + std::string(rng->Percent(50) ? ">" : "<=") +
                            " " + std::to_string(rng->Range(0, 30));
  std::string s = "  out = list();\n" + Scan("as", "a", "t0");
  s += "  for (a : as) {\n";
  s += "    found = false;\n";
  s += "    bs = executeQuery(\"SELECT * FROM t1 AS b WHERE b.id = ?\", "
       "a.fk);\n";
  s += "    for (b : bs) {\n";
  s += "      if (" + inner_guard + ") { found = true; }\n";
  s += "    }\n";
  s += "    if (" + std::string(negated ? "!found" : "found") +
       ") { out.append(a." + shape.strings[0].name + "); }\n";
  s += "  }\n  return out;\n";
  return s;
}

/// Real DML: a guarded INSERT into the keyless scratch table t2 for
/// each fact row, an optional blanket/filtered UPDATE, then a read-back
/// fold over t2. executeUpdate is a side effect no rule may fold away,
/// so the insert loop must survive rewriting untouched while the
/// read-back loop is fair game — the family probes the refusal path,
/// DML/extraction interleaving, and (under --shards) the per-shard
/// write-lock path against partition-parallel reads.
std::string GenDml(Rng* rng, const FactShape& shape) {
  const std::string& nn = rng->Pick(shape.notnull_ints);
  bool guarded = rng->Percent(75);
  std::string insert =
      "executeUpdate(\"INSERT INTO t2 VALUES (?, ?)\", r.id, r." + nn + ");";
  std::string s = Scan("rows", "r", "t0");
  s += "  for (r : rows) {\n";
  s += guarded ? Guarded(FactPredicate(rng, shape, "r"), insert)
               : "    " + insert + "\n";
  s += "  }\n";
  if (rng->Percent(60)) {
    std::string stmt = "UPDATE t2 SET b = b + " +
                       std::to_string(rng->Range(1, 9));
    if (rng->Percent(50)) {
      stmt += " WHERE a > " + std::to_string(rng->Range(0, 40));
    }
    s += "  executeUpdate(\"" + stmt + "\");\n";
  }
  s += "  s = 0;\n" + Scan("back", "x", "t2");
  s += "  for (x : back) {\n    s = s + x.b;\n  }\n  return s;\n";
  return s;
}

/// One random DML/SELECT statement for the txn schedule. Key-space [0,
/// 14] on the keyed table is deliberately tight against the seeded ids,
/// so duplicate-key inserts, first-writer-wins conflicts, and DELETE +
/// reinsert chains all occur organically.
std::string TxnStatement(Rng* rng) {
  switch (rng->Range(0, 10)) {
    case 0:
    case 1:
      return "INSERT INTO t0 VALUES (" + std::to_string(rng->Range(0, 14)) +
             ", " + std::to_string(rng->Range(-5, 40)) + ")";
    case 2:
      return "UPDATE t0 SET v = v + " + std::to_string(rng->Range(1, 9)) +
             " WHERE id = " + std::to_string(rng->Range(0, 14));
    case 3:
      return "UPDATE t0 SET v = v - " + std::to_string(rng->Range(1, 5)) +
             " WHERE v > " + std::to_string(rng->Range(10, 35));
    case 4:
      return "DELETE FROM t0 WHERE id = " + std::to_string(rng->Range(0, 14));
    case 5:
      return "DELETE FROM t0 WHERE v < " + std::to_string(rng->Range(-5, 5));
    case 6:
      return "INSERT INTO t1 VALUES (" + std::to_string(rng->Range(0, 9)) +
             ", " + std::to_string(rng->Range(-10, 30)) + ")";
    case 7:
      return "UPDATE t1 SET b = b + " + std::to_string(rng->Range(1, 6)) +
             " WHERE a <= " + std::to_string(rng->Range(0, 9));
    case 8:
      return "DELETE FROM t1 WHERE b > " + std::to_string(rng->Range(15, 35));
    case 9:
      return "SELECT * FROM t0 AS r";
    default:
      return "SELECT * FROM t1 AS r";
  }
}

/// A txn-family case: no ImpLang program, but a multi-session schedule
/// (function "@txn") the oracle executes interleaved and then replays
/// single-threaded in commit order. Line format: `<session> <SQL>`.
/// Sessions open transactions, write both a keyed and a keyless table,
/// and close with COMMIT or ROLLBACK; statements outside BEGIN...COMMIT
/// autocommit. The generator's open/closed bookkeeping is a prediction
/// only — a mid-transaction conflict aborts earlier than planned, which
/// is exactly the behavior the replay oracle must track.
FuzzCase GenTxnCase(uint64_t seed, Rng* rng) {
  FuzzCase c;
  c.seed = seed;
  c.function = "@txn";

  TableSpec keyed;
  keyed.name = "t0";
  keyed.unique_key = "id";
  keyed.columns = {{"id", DataType::kInt64}, {"v", DataType::kInt64}};
  const int64_t n = rng->Range(4, 10);
  for (int64_t i = 0; i < n; ++i) {
    keyed.rows.push_back(
        {catalog::Value::Int(i), catalog::Value::Int(rng->Range(0, 40))});
  }
  c.tables.push_back(std::move(keyed));

  TableSpec keyless;
  keyless.name = "t1";
  keyless.columns = {{"a", DataType::kInt64}, {"b", DataType::kInt64}};
  const int64_t m = rng->Range(1, 4);
  for (int64_t i = 0; i < m; ++i) {
    keyless.rows.push_back({catalog::Value::Int(rng->Range(0, 9)),
                            catalog::Value::Int(rng->Range(-10, 30))});
  }
  c.tables.push_back(std::move(keyless));

  const int sessions = static_cast<int>(rng->Range(2, 4));
  const int steps = static_cast<int>(rng->Range(10, 24));
  std::vector<bool> open(sessions, false);
  std::string src;
  auto emit = [&src](int s, const std::string& stmt) {
    src += std::to_string(s) + " " + stmt + "\n";
  };
  for (int i = 0; i < steps; ++i) {
    const int s = static_cast<int>(rng->Index(sessions));
    if (!open[s]) {
      if (rng->Percent(55)) {
        emit(s, "BEGIN");
        open[s] = true;
      } else {
        emit(s, TxnStatement(rng));  // autocommit
      }
    } else {
      const int roll = static_cast<int>(rng->Range(0, 9));
      if (roll < 2) {
        emit(s, "COMMIT");
        open[s] = false;
      } else if (roll == 2) {
        emit(s, "ROLLBACK");
        open[s] = false;
      } else {
        emit(s, TxnStatement(rng));
      }
    }
  }
  for (int s = 0; s < sessions; ++s) {
    if (open[s]) emit(s, rng->Percent(70) ? "COMMIT" : "ROLLBACK");
  }
  c.source = std::move(src);
  return c;
}

/// One random statement for the index-family schedule: the txn mix
/// diluted with selective point SELECTs and an equi-join the secondary
/// index paths can serve (Executor::TrySecondaryIndexScan and
/// TryIndexNestedLoopJoin).
std::string IndexStatement(Rng* rng) {
  if (!rng->Percent(45)) return TxnStatement(rng);
  switch (rng->Range(0, 3)) {
    case 0:
      return "SELECT * FROM t0 AS r WHERE v = " +
             std::to_string(rng->Range(-5, 40));
    case 1:
      return "SELECT * FROM t1 AS r WHERE a = " +
             std::to_string(rng->Range(0, 9));
    case 2:
      return "SELECT * FROM t1 AS r WHERE a = " +
             std::to_string(rng->Range(0, 9)) + " AND b = " +
             std::to_string(rng->Range(-10, 30));
    default:
      return "SELECT * FROM t0 AS r JOIN t1 AS s ON r.v = s.a";
  }
}

/// A CREATE INDEX over one of the schedule's hot column sets. Names
/// are sequential so a schedule never collides with itself.
std::string CreateIndexStatement(int n, Rng* rng) {
  const std::string name = "i" + std::to_string(n);
  switch (rng->Range(0, 4)) {
    case 0: return "CREATE INDEX " + name + " ON t0 (v)";
    case 1: return "CREATE INDEX " + name + " ON t1 (a)";
    case 2: return "CREATE INDEX " + name + " ON t1 (b)";
    default: return "CREATE INDEX " + name + " ON t1 (a, b)";
  }
}

/// An index-family case (function "@index"): the txn schedule shape
/// with CREATE INDEX statements interleaved mid-stream, so index
/// builds race live writers, DML maintains live indexes, and later
/// SELECTs can pick the index access paths. The oracle runs the
/// schedule with and without the creates and demands byte-identical
/// observable behavior (oracle.cc: RunIndexOracle).
FuzzCase GenIndexCase(uint64_t seed, Rng* rng) {
  FuzzCase c;
  c.seed = seed;
  c.function = "@index";

  TableSpec keyed;
  keyed.name = "t0";
  keyed.unique_key = "id";
  keyed.columns = {{"id", DataType::kInt64}, {"v", DataType::kInt64}};
  const int64_t n = rng->Range(4, 10);
  for (int64_t i = 0; i < n; ++i) {
    keyed.rows.push_back(
        {catalog::Value::Int(i), catalog::Value::Int(rng->Range(0, 40))});
  }
  c.tables.push_back(std::move(keyed));

  TableSpec keyless;
  keyless.name = "t1";
  keyless.columns = {{"a", DataType::kInt64}, {"b", DataType::kInt64}};
  const int64_t m = rng->Range(1, 4);
  for (int64_t i = 0; i < m; ++i) {
    keyless.rows.push_back({catalog::Value::Int(rng->Range(0, 9)),
                            catalog::Value::Int(rng->Range(-10, 30))});
  }
  c.tables.push_back(std::move(keyless));

  const int sessions = static_cast<int>(rng->Range(2, 4));
  const int steps = static_cast<int>(rng->Range(10, 24));
  const int max_creates = static_cast<int>(rng->Range(1, 3));
  int creates = 0;
  std::vector<bool> open(sessions, false);
  std::string src;
  auto emit = [&src](int s, const std::string& stmt) {
    src += std::to_string(s) + " " + stmt + "\n";
  };
  for (int i = 0; i < steps; ++i) {
    const int s = static_cast<int>(rng->Index(sessions));
    // DDL autocommits regardless of the session's transaction state,
    // so creates drop in anywhere — including mid-transaction.
    if (creates < max_creates && rng->Percent(12)) {
      emit(s, CreateIndexStatement(creates++, rng));
      continue;
    }
    if (!open[s]) {
      if (rng->Percent(55)) {
        emit(s, "BEGIN");
        open[s] = true;
      } else {
        emit(s, IndexStatement(rng));  // autocommit
      }
    } else {
      const int roll = static_cast<int>(rng->Range(0, 9));
      if (roll < 2) {
        emit(s, "COMMIT");
        open[s] = false;
      } else if (roll == 2) {
        emit(s, "ROLLBACK");
        open[s] = false;
      } else {
        emit(s, IndexStatement(rng));
      }
    }
  }
  if (creates == 0) emit(0, CreateIndexStatement(creates++, rng));
  for (int s = 0; s < sessions; ++s) {
    if (open[s]) emit(s, rng->Percent(70) ? "COMMIT" : "ROLLBACK");
  }
  c.source = std::move(src);
  return c;
}

std::string Render(Family family, Rng* rng, const FactShape& shape) {
  std::string body;
  switch (family) {
    case Family::kFilterCollect: body = GenFilterCollect(rng, shape); break;
    case Family::kScalarAgg: body = GenScalarAgg(rng, shape); break;
    case Family::kMaxMin: body = GenMaxMin(rng, shape); break;
    case Family::kExists: body = GenExists(rng, shape); break;
    case Family::kJoin: body = GenJoin(rng, shape); break;
    case Family::kGroupBy: body = GenGroupBy(rng, shape); break;
    case Family::kArgmax: body = GenArgmax(rng, shape); break;
    case Family::kApply: body = GenApply(rng, shape); break;
    case Family::kPrint: body = GenPrint(rng, shape); break;
    case Family::kBreak: body = GenBreak(rng, shape); break;
    case Family::kPartial: body = GenPartial(rng, shape); break;
    case Family::kMultiAgg: body = GenMultiAgg(rng, shape); break;
    case Family::kConcat: body = GenConcat(rng, shape); break;
    case Family::kCorrExists: body = GenCorrExists(rng, shape); break;
    case Family::kDml: body = GenDml(rng, shape); break;
    case Family::kTxn: break;    // handled by GenTxnCase, never rendered
    case Family::kIndex: break;  // handled by GenIndexCase, never rendered
    case Family::kBatch: body = GenBatch(rng, shape); break;
  }
  return "func f() {\n" + body + "}\n";
}

}  // namespace

Family FamilyForSeed(uint64_t seed, const GenOptions& opts) {
  Rng rng(seed);
  return kFamilies[rng.PickWeighted(Weights(opts))];
}

bool RestrictToFamily(GenOptions* opts, const std::string& name) {
  GenOptions next = *opts;
  int* weights[] = {&next.w_filter_collect, &next.w_scalar_agg,
                    &next.w_maxmin,         &next.w_exists,
                    &next.w_join,           &next.w_groupby,
                    &next.w_argmax,         &next.w_apply,
                    &next.w_print,          &next.w_break,
                    &next.w_partial,        &next.w_multi,
                    &next.w_concat,         &next.w_corr_exists,
                    &next.w_dml,            &next.w_txn,
                    &next.w_index,          &next.w_batch};
  static_assert(sizeof(weights) / sizeof(weights[0]) ==
                sizeof(kFamilies) / sizeof(kFamilies[0]));
  bool found = false;
  for (size_t i = 0; i < sizeof(kFamilies) / sizeof(kFamilies[0]); ++i) {
    const bool match = name == FamilyName(kFamilies[i]);
    *weights[i] = match ? 1 : 0;
    found = found || match;
  }
  if (found) *opts = next;
  return found;
}

FuzzCase GenerateCase(uint64_t seed, const GenOptions& opts) {
  Rng rng(seed);
  Family family = kFamilies[rng.PickWeighted(Weights(opts))];
  if (family == Family::kTxn) return GenTxnCase(seed, &rng);
  if (family == Family::kIndex) return GenIndexCase(seed, &rng);
  FactShape shape = MakeFactShape(&rng);

  FuzzCase c;
  c.seed = seed;
  c.function = "f";
  int64_t dim_rows = 0;
  if (NeedsDim(family)) {
    c.tables.push_back(MakeDim(&rng, opts.data));
    dim_rows = static_cast<int64_t>(c.tables.back().rows.size());
  }
  // t0 first in the file for readability; generation order stays
  // dim-then-fact so fk's domain can depend on the dim's size.
  c.tables.insert(c.tables.begin(),
                  MakeFact(&rng, opts.data, shape, dim_rows));
  if (family == Family::kDml) {
    // The keyless scratch table DML programs write into. Keyless on
    // purpose: inserts land round-robin across shards, so every shard
    // sees writes even when the fact table's ids cluster.
    TableSpec scratch;
    scratch.name = "t2";
    scratch.columns = {{"a", DataType::kInt64}, {"b", DataType::kInt64}};
    // Always pre-seeded: an empty t2 at read-back time would let the
    // lifted SUM ship its one aggregate row where the original loop
    // ships zero, tripping the never-more-rows oracle on a case that
    // is a wash, not a regression. One guaranteed row keeps the
    // invariant strict (agg's 1 row <= scan's N rows, N >= 1).
    int64_t n = rng.Range(1, 4);
    for (int64_t i = 0; i < n; ++i) {
      scratch.rows.push_back({catalog::Value::Int(rng.Range(0, 20)),
                              catalog::Value::Int(rng.Range(-10, 30))});
    }
    c.tables.push_back(std::move(scratch));
  }
  c.source = Render(family, &rng, shape);
  return c;
}

}  // namespace eqsql::fuzz
