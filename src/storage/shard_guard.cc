#include "storage/shard_guard.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "obs/trace.h"

namespace eqsql::storage {

ReadGuard ReadGuard::Acquire(const Database& db,
                             const std::vector<std::string>& tables,
                             obs::MetricsRegistry* metrics) {
  obs::ScopedSpan span("lock-acquire");
  std::vector<std::string> keys;
  keys.reserve(tables.size());
  for (const std::string& t : tables) keys.push_back(AsciiToLower(t));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  ReadGuard guard;
  for (std::string& key : keys) {
    std::shared_ptr<const Table> table = db.SnapshotTable(key);
    if (table == nullptr) continue;  // execution reports kNotFound later
    guard.keys_.push_back(std::move(key));
    guard.tables_.push_back(std::move(table));
  }
  // All snapshots taken (registry lock released each time); now lock —
  // canonical order: by sorted table name; within a table the topology
  // lock (shared, so shard_count/shard_mutex are stable and no
  // repartition can free the mutexes while we hold them), then shards
  // in ascending index order.
  // Resolve the histogram handle before any lock is taken: the registry
  // mutex is a leaf lock and must never nest inside shard locks.
  obs::Histogram* lock_wait =
      metrics == nullptr ? nullptr : metrics->histogram("storage.lock_wait_ns");
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& table : guard.tables_) {
    guard.topology_locks_.emplace_back(table->topology_mutex());
    for (size_t i = 0; i < table->shard_count(); ++i) {
      guard.locks_.emplace_back(table->shard_mutex(i));
    }
  }
  if (lock_wait != nullptr) {
    lock_wait->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  }
  return guard;
}

const Table* ReadGuard::Find(const std::string& name) const {
  std::string key = AsciiToLower(name);
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return tables_[i].get();
  }
  return nullptr;
}

}  // namespace eqsql::storage
