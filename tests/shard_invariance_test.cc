// Shard-count-invariance property suite — the headline artifact of the
// sharded storage layer. The property: for any program and any data,
// every observable output of the engine is byte-identical whether the
// tables are partitioned across 1, 2, or 8 shards, whether the
// partition-parallel operators are on or off, whether the row or
// the vectorized engine executes the queries, AND whether secondary
// indexes exist (the full 2-mode x 3-layout x 2-index grid shares one
// reference signature — the index-scan operators charge the exact
// full-scan costs they replace, so even the simulated clock may not
// notice an index), AND whether an operator profile is being recorded
// (the server-stack grids add a profiled on/off dimension — EXPLAIN
// ANALYZE instrumentation may never move a counter or the simulated
// clock). "Observable" is strict:
// return value, print stream, AND the simulated cost counters
// (rows/bytes transferred, queries, round trips, simulated_ms down to
// the last bit — the parallel operators charge the same per-query row
// examination cost as the serial ones, in the same order, so even the
// floating-point clock must agree).
//
// Three populations prove it: fuzzer-generated programs (every grammar
// family, including the DML family's real INSERT/UPDATE traffic),
// multi-session transaction schedules (MVCC snapshot reads, conflicts,
// and rollbacks), and the four benchmark workload apps, original and
// rewritten. Run under
// the `tsan` preset too (scripts/verify.sh does): with the parallel
// threshold forced to 0 every scan/fold fans out across the pool, so
// this suite doubles as the race detector for the partition-parallel
// read path.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/hash.h"
#include "exec/exec_mode.h"
#include "exec/worker_pool.h"
#include "frontend/parser.h"
#include "fuzz/oracle.h"
#include "fuzz/program_gen.h"
#include "fuzz/scenario.h"
#include "interp/interpreter.h"
#include "net/connection.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "storage/database.h"
#include "storage/table.h"
#include "workloads/benchmark_apps.h"

namespace eqsql {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 8};
constexpr exec::ExecMode kExecModes[] = {exec::ExecMode::kRow,
                                         exec::ExecMode::kVector};
constexpr bool kIndexed[] = {false, true};

/// The index-on grid arm: a single-column secondary index over every
/// column of every table, so any equality predicate or equi-join the
/// programs run can (and on covered columns will) take the index path.
/// The signatures must not notice.
void CreateIndexesEverywhere(storage::Database* db) {
  for (const std::string& name : db->TableNames()) {
    std::shared_ptr<storage::Table> t = db->SnapshotTable(name);
    ASSERT_NE(t, nullptr) << name;
    for (const catalog::Column& col : t->schema().columns()) {
      ASSERT_TRUE(
          t->CreateIndex("inv_" + name + "_" + col.name, {col.name}).ok())
          << name << "." << col.name;
    }
  }
}

/// Everything one run of a program observably produced, flattened to a
/// single comparable string. Cost counters are printed with full
/// precision: the invariance claim covers the simulated clock too.
std::string Signature(const std::string& result_display,
                      const std::vector<std::string>& printed,
                      const net::ConnectionStats& stats) {
  std::ostringstream out;
  out.precision(17);
  out << "return=" << result_display << "\n";
  for (const std::string& line : printed) out << "print=" << line << "\n";
  out << "queries=" << stats.queries_executed
      << " round_trips=" << stats.round_trips
      << " rows=" << stats.rows_transferred
      << " bytes=" << stats.bytes_transferred
      << " ms=" << stats.simulated_ms << "\n";
  return out.str();
}

/// Interprets `source`'s function `f` against a fresh database built
/// from the case's tables, partitioned across `shards`, on the given
/// execution engine, with the parallel operators forced on (threshold
/// 0) whenever a pool is given.
Result<std::string> RunAtShardCount(const fuzz::FuzzCase& c, size_t shards,
                                    exec::ExecMode mode, bool indexed) {
  storage::DatabaseOptions dbo;
  dbo.shard_count = shards;
  storage::Database db(dbo);
  EQSQL_RETURN_IF_ERROR(fuzz::BuildDatabase(c, &db));
  if (indexed) CreateIndexesEverywhere(&db);

  auto program = frontend::ParseProgram(c.source);
  if (!program.ok()) return program.status();

  net::Connection conn(&db);
  conn.set_exec_mode(mode);
  std::unique_ptr<exec::WorkerPool> pool;
  if (shards > 1) {
    pool = std::make_unique<exec::WorkerPool>(2);
    conn.set_worker_pool(pool.get());
    conn.set_parallel_threshold(0);
  }
  interp::Interpreter interp(&*program, &conn);
  auto result = interp.Run(c.function);
  if (!result.ok()) return result.status();
  return Signature(result->DisplayString(), interp.printed(), conn.stats());
}

/// Asserts the case signatures across the full exec-mode x shard-count
/// x index-on/off grid are identical: the row engine at 1 shard with no
/// indexes anchors the reference and every other cell must match it
/// byte for byte — this sweep IS the corpus-wide batch-vs-row (and
/// indexed-vs-unindexed) differential. Schedule cases (function
/// "@txn"/"@index") are not programs: their signature is the oracle's
/// rendered outcome log (per-statement row counts and error codes in
/// schedule order), and the index dimension is inside the oracle itself
/// (the @index oracle's plain arm IS the index-off run).
void ExpectInvariant(const fuzz::FuzzCase& c, const std::string& label) {
  const bool schedule = !c.function.empty() && c.function[0] == '@';
  std::string reference;
  bool have_reference = false;
  for (exec::ExecMode mode : kExecModes) {
    for (size_t shards : kShardCounts) {
      for (bool indexed : kIndexed) {
        if (schedule && indexed) continue;  // dimension lives in the oracle
        std::string sig;
        if (schedule) {
          fuzz::OracleOptions opts;
          opts.shard_count = shards;
          opts.exec_mode = mode;
          fuzz::OracleReport report = fuzz::RunOracle(c, opts);
          ASSERT_EQ(report.verdict, fuzz::Verdict::kPass)
              << label << " shards=" << shards << " mode="
              << exec::ExecModeName(mode) << ": " << report.detail;
          sig = report.rewritten_source;
          ASSERT_FALSE(sig.empty()) << label;
        } else {
          auto run = RunAtShardCount(c, shards, mode, indexed);
          ASSERT_TRUE(run.ok())
              << label << " shards=" << shards << " mode="
              << exec::ExecModeName(mode) << ": " << run.status().ToString();
          sig = *run;
        }
        if (!have_reference) {
          reference = sig;
          have_reference = true;
        } else {
          EXPECT_EQ(sig, reference)
              << label << " diverges at shards=" << shards
              << " mode=" << exec::ExecModeName(mode)
              << " indexed=" << indexed;
        }
      }
    }
  }
}

TEST(ShardInvarianceTest, FuzzerProgramsAcrossAllFamilies) {
  constexpr int kCases = 96;
  int dml_cases = 0;
  for (int i = 0; i < kCases; ++i) {
    uint64_t seed = SplitMix64(0xbee5 + static_cast<uint64_t>(i));
    fuzz::FuzzCase c = fuzz::GenerateCase(seed);
    if (fuzz::FamilyForSeed(seed) == fuzz::Family::kDml) ++dml_cases;
    ExpectInvariant(c, "seed " + std::to_string(seed));
  }
  // The sweep must include real-DML programs, or the per-shard write
  // path went untested; widen kCases if this ever fires.
  EXPECT_GE(dml_cases, 2) << "fuzz sweep contained too few DML programs";
}

TEST(ShardInvarianceTest, DmlFamilySpecifically) {
  // Hunt DML-family seeds so the INSERT / UPDATE / read-back cycle is
  // exercised at every shard count regardless of the mixed sweep's
  // family draw.
  int found = 0;
  for (uint64_t probe = 0; probe < 4000 && found < 8; ++probe) {
    uint64_t seed = SplitMix64(0xd311 + probe);
    if (fuzz::FamilyForSeed(seed) != fuzz::Family::kDml) continue;
    ++found;
    ExpectInvariant(fuzz::GenerateCase(seed), "dml seed " + std::to_string(seed));
  }
  EXPECT_EQ(found, 8);
}

// The full oracle (original vs rewritten differential) must also pass
// at every shard count and on both execution engines: rewrites and
// refusals behave identically on partitioned storage, and in vector
// mode the original (row engine) vs rewrite (vector engine) comparison
// cross-checks the two interpreters against each other.
TEST(ShardInvarianceTest, OraclePassesAtEveryShardCount) {
  for (int i = 0; i < 12; ++i) {
    uint64_t seed = SplitMix64(0xacc7 + static_cast<uint64_t>(i));
    fuzz::FuzzCase c = fuzz::GenerateCase(seed);
    for (exec::ExecMode mode : kExecModes) {
      for (size_t shards : kShardCounts) {
        fuzz::OracleOptions opts;
        opts.shard_count = shards;
        opts.exec_mode = mode;
        fuzz::OracleReport report = fuzz::RunOracle(c, opts);
        EXPECT_EQ(report.verdict, fuzz::Verdict::kPass)
            << "seed " << seed << " shards=" << shards << " mode="
            << exec::ExecModeName(mode) << ": " << report.detail;
      }
    }
  }
}

// Transaction schedules extend the invariance property to MVCC: a
// multi-session BEGIN/COMMIT/ROLLBACK interleaving must produce the
// byte-identical step-by-step outcome log — every per-statement row
// count, every conflict, in the same order — at 1, 2, and 8 shards.
// The txn oracle's deterministic sequential stepping makes this exact:
// snapshot visibility and first-writer-wins conflicts may not depend
// on which shard a key hashes to.
TEST(ShardInvarianceTest, TxnFamilySchedulesAcrossShardCounts) {
  fuzz::GenOptions gopts;
  ASSERT_TRUE(fuzz::RestrictToFamily(&gopts, "txn"));
  for (int i = 0; i < 24; ++i) {
    uint64_t seed = SplitMix64(0x7a57 + static_cast<uint64_t>(i));
    fuzz::FuzzCase c = fuzz::GenerateCase(seed, gopts);
    ASSERT_EQ(c.function, "@txn");
    std::string reference;
    bool have_reference = false;
    for (exec::ExecMode mode : kExecModes) {
      for (size_t shards : kShardCounts) {
        fuzz::OracleOptions opts;
        opts.shard_count = shards;
        opts.exec_mode = mode;
        fuzz::OracleReport report = fuzz::RunOracle(c, opts);
        ASSERT_EQ(report.verdict, fuzz::Verdict::kPass)
            << "txn seed " << seed << " shards=" << shards << " mode="
            << exec::ExecModeName(mode) << ": " << report.detail;
        // rewritten_source carries the rendered outcome log.
        ASSERT_FALSE(report.rewritten_source.empty());
        if (!have_reference) {
          reference = report.rewritten_source;
          have_reference = true;
        } else {
          EXPECT_EQ(report.rewritten_source, reference)
              << "txn seed " << seed << " outcome log diverges at shards="
              << shards << " mode=" << exec::ExecModeName(mode);
        }
      }
    }
  }
}

// The index family extends the schedule invariance to DDL: CREATE
// INDEX statements interleaved with DML and transactions must leave
// the outcome log byte-identical at every shard count on both engines
// — and each oracle run is itself an indexed-vs-unindexed (and
// row-vs-vector) differential, so one green cell certifies four runs.
TEST(ShardInvarianceTest, IndexFamilySchedulesAcrossShardCounts) {
  fuzz::GenOptions gopts;
  ASSERT_TRUE(fuzz::RestrictToFamily(&gopts, "index"));
  for (int i = 0; i < 24; ++i) {
    uint64_t seed = SplitMix64(0x1d40 + static_cast<uint64_t>(i));
    fuzz::FuzzCase c = fuzz::GenerateCase(seed, gopts);
    ASSERT_EQ(c.function, "@index");
    ExpectInvariant(c, "index seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Workload apps: the four benchmark programs, original and rewritten,
// through the full Server/Session stack.

struct App {
  std::string name;
  std::string source;
  std::string function;
};

std::vector<App> BenchmarkApps() {
  return {{"matoso", workloads::MatosoProgram(), "findMaxScore"},
          {"jobportal", workloads::JobPortalProgram(), "jobReport"},
          {"selection", workloads::SelectionProgram(), "unfinished"},
          {"join", workloads::JoinProgram(), "userRoles"}};
}

net::ServerOptions AppServerOptions(size_t shards, exec::ExecMode mode) {
  net::ServerOptions options;
  options.plan_cache_capacity = 64;
  options.database.shard_count = shards;
  options.exec_mode = mode;
  options.exec_threads = 2;
  options.parallel_threshold = 0;  // force the parallel operators on
  options.optimize.transform.table_keys = {{"board", "id"},
                                           {"applicants", "id"},
                                           {"details", "id"},
                                           {"feedback1", "id"},
                                           {"education", "id"},
                                           {"project", "id"},
                                           {"wilosuser", "id"},
                                           {"role", "id"}};
  return options;
}

TEST(ShardInvarianceTest, WorkloadAppsThroughServerStack) {
  std::vector<std::string> reference;
  bool have_reference = false;
  for (exec::ExecMode mode : kExecModes) {
    for (size_t shards : kShardCounts) {
    for (bool indexed : kIndexed) {
    // The profiled arm runs the identical workload with an operator
    // profile attached to the connection: per-operator row counts and
    // timings are collected, and the signature — including the
    // simulated clock down to the last bit — may not notice.
    for (bool profiled : {false, true}) {
      net::Server server(AppServerOptions(shards, mode));
      ASSERT_TRUE(workloads::SetupMatosoDatabase(server.db(), 40, 4).ok());
      ASSERT_TRUE(workloads::SetupJobPortalDatabase(server.db(), 30).ok());
      ASSERT_TRUE(workloads::SetupSelectionDatabase(server.db(), 60, 25).ok());
      ASSERT_TRUE(workloads::SetupJoinDatabase(server.db(), 40).ok());
      if (indexed) CreateIndexesEverywhere(server.db());

      obs::Profile profile;
      std::vector<std::string> signatures;
      {
        std::unique_ptr<net::Session> session = server.Connect();
        if (profiled) session->connection()->set_profile(&profile);
        for (const App& app : BenchmarkApps()) {
          auto program = frontend::ParseProgram(app.source);
          ASSERT_TRUE(program.ok()) << app.name;
          auto optimized = session->OptimizeCached(app.source, app.function);
          ASSERT_TRUE(optimized.ok()) << app.name;

          interp::Interpreter original(&*program, session->connection());
          auto r1 = original.Run(app.function);
          ASSERT_TRUE(r1.ok()) << app.name;
          interp::Interpreter rewritten(&(*optimized)->program,
                                        session->connection());
          auto r2 = rewritten.Run(app.function);
          ASSERT_TRUE(r2.ok()) << app.name;
          EXPECT_EQ(r1->DisplayString(), r2->DisplayString()) << app.name;
          signatures.push_back(app.name + ": " + r2->DisplayString());
          for (const std::string& line : rewritten.printed()) {
            signatures.push_back(app.name + " print: " + line);
          }
        }
        // Session-cumulative cost counters join the signature; they must
        // not depend on the shard count or the execution engine either.
        signatures.push_back(Signature("-", {}, session->stats()));
        if (profiled) session->connection()->set_profile(nullptr);
      }
      // The profiled arm must actually have profiled something, or the
      // on/off comparison is vacuous.
      if (profiled) EXPECT_FALSE(profile.empty());
      if (!have_reference) {
        reference = signatures;
        have_reference = true;
        EXPECT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(signatures, reference)
            << "diverges at shards=" << shards
            << " mode=" << exec::ExecModeName(mode)
            << " indexed=" << indexed << " profiled=" << profiled;
      }
    }
    }
    }
  }
}

// ---------------------------------------------------------------------------
// Counter metrics carry the same invariance contract: for a fixed
// workload, every counter in the server registry whose name is not
// layout-scoped must be byte-identical at 1, 2, and 8 shards. Only
// per-shard breakdowns ("storage.shard.*"), pool/batch bookkeeping
// ("exec.pool.*", "exec.parallel.*"), scheduler bookkeeping
// ("net.scheduler.*" — dispatch counts depend on thread interleaving
// once requests flow through the admission queue), and timing
// histograms may differ — they describe HOW the work was partitioned
// and scheduled, not how much there was.

bool LayoutScoped(const std::string& name) {
  return name.rfind("storage.shard.", 0) == 0 ||
         name.rfind("exec.pool.", 0) == 0 ||
         name.rfind("exec.parallel.", 0) == 0 ||
         // Batch bookkeeping counts how the vectorized engine chunked
         // the work — batch counts follow per-shard chunk boundaries
         // (and are zero on the row engine), so they are layout- and
         // engine-scoped like the pool counters above.
         name.rfind("exec.batch.", 0) == 0 ||
         name.rfind("net.scheduler.", 0) == 0 ||
         // MVCC bookkeeping is layout-scoped too: version installs and
         // GC reclaim counts follow per-shard vacuum sweep boundaries.
         name.rfind("storage.mvcc.", 0) == 0 ||
         // Index counters describe which physical access path ran, not
         // what it produced — probes are zero in the index-off arm of
         // the grid by construction, so they are plan-scoped the way
         // exec.batch.* is engine-scoped.
         name.rfind("storage.index.", 0) == 0 ||
         name.rfind("exec.index.", 0) == 0 ||
         // Observability bookkeeping (sampled-trace and slow-query-log
         // admission counts) describes what the profiler recorded, not
         // what the engine produced — whether a request was sampled
         // depends on the arrival order of trace ids, which follows
         // scheduling like net.scheduler.* does.
         name.rfind("obs.trace.", 0) == 0 ||
         name.rfind("obs.profile.", 0) == 0 ||
         name.rfind("obs.slow_log.", 0) == 0;
}

/// All shard-invariant counters, flattened to one comparable string.
std::string CounterSignature(const obs::MetricsSnapshot& snap) {
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    if (LayoutScoped(name)) continue;
    out << name << "=" << value << "\n";
  }
  return out.str();
}

TEST(ShardInvarianceTest, CounterMetricsAreShardCountInvariant) {
  std::string reference;
  bool have_reference = false;
  for (exec::ExecMode mode : kExecModes) {
    for (size_t shards : kShardCounts) {
    for (bool indexed : kIndexed) {
    for (bool profiled : {false, true}) {
      net::Server server(AppServerOptions(shards, mode));
      ASSERT_TRUE(workloads::SetupMatosoDatabase(server.db(), 40, 4).ok());
      ASSERT_TRUE(workloads::SetupJobPortalDatabase(server.db(), 30).ok());
      ASSERT_TRUE(workloads::SetupSelectionDatabase(server.db(), 60, 25).ok());
      ASSERT_TRUE(workloads::SetupJoinDatabase(server.db(), 40).ok());
      if (indexed) CreateIndexesEverywhere(server.db());

      obs::Profile profile;
      {
        std::unique_ptr<net::Session> session = server.Connect();
        if (profiled) session->connection()->set_profile(&profile);
        for (const App& app : BenchmarkApps()) {
          auto optimized = session->OptimizeCached(app.source, app.function);
          ASSERT_TRUE(optimized.ok()) << app.name;
          interp::Interpreter rewritten(&(*optimized)->program,
                                        session->connection());
          ASSERT_TRUE(rewritten.Run(app.function).ok()) << app.name;
        }
        if (profiled) session->connection()->set_profile(nullptr);
      }

      obs::MetricsSnapshot snap = server.metrics()->Snapshot();
      std::string sig = CounterSignature(snap);
      ASSERT_FALSE(sig.empty());
      // The invariant set must actually cover the hot counters, or the
      // filter grew too wide and this test proves nothing. The vector
      // engine's exact cost-accounting parity is part of the claim:
      // storage.scan.rows/bytes and exec.rows_processed agree with the
      // row engine down to the last unit.
      EXPECT_NE(sig.find("storage.scan.rows="), std::string::npos);
      EXPECT_NE(sig.find("net.queries="), std::string::npos);
      EXPECT_NE(sig.find("extract.runs="), std::string::npos);
      EXPECT_NE(sig.find("exec.rows_processed="), std::string::npos);
      if (!have_reference) {
        reference = sig;
        have_reference = true;
      } else {
        EXPECT_EQ(sig, reference)
            << "counters diverge at shards=" << shards
            << " mode=" << exec::ExecModeName(mode)
            << " indexed=" << indexed << " profiled=" << profiled;
      }

      // Per-shard breakdowns must still reconcile with the invariant
      // totals: the sum over storage.shard.<i>.scan.rows equals
      // storage.scan.rows for the parallel operators' share. Weaker
      // check (<=): the serial path records no per-shard rows.
      int64_t per_shard_rows = 0;
      for (const auto& [name, value] : snap.counters) {
        if (name.rfind("storage.shard.", 0) == 0 &&
            name.size() > 10 &&
            name.compare(name.size() - 10, 10, ".scan.rows") == 0) {
          per_shard_rows += value;
        }
      }
      EXPECT_LE(per_shard_rows, snap.counters.at("storage.scan.rows"));

      // The exclusion must actually be doing work in the indexed arm:
      // the registry carries index counters there, and the signature
      // filter kept them out.
      if (indexed) {
        EXPECT_TRUE(snap.counters.count("storage.index.probes"));
        EXPECT_EQ(sig.find("storage.index."), std::string::npos);
        EXPECT_EQ(sig.find("exec.index."), std::string::npos);
      }
      // Likewise for the observability exclusions: the registry always
      // carries the trace/slow-log admission counters (the scheduler
      // registers them up front), and the signature filter must have
      // kept them out.
      EXPECT_TRUE(snap.counters.count("obs.trace.sampled"));
      EXPECT_EQ(sig.find("obs.trace."), std::string::npos);
      EXPECT_EQ(sig.find("obs.slow_log."), std::string::npos);
      if (profiled) EXPECT_FALSE(profile.empty());
    }
    }
    }
  }
}

}  // namespace
}  // namespace eqsql
