#ifndef EQSQL_BASELINES_BATCHING_H_
#define EQSQL_BASELINES_BATCHING_H_

#include <string>

#include "frontend/ast.h"

namespace eqsql::baselines {

/// Applicability verdict for a baseline transformation.
struct Applicability {
  bool applicable = false;
  std::string reason;
};

/// Batching (Guravannavar & Sudarshan [11]): rewrites iterative
/// invocation of a *parameterized* query into one set-oriented query
/// against a parameter table. It applies when a loop (cursor loop or,
/// via loop splitting, a while loop) issues a parameterized query whose
/// rows are consumed directly (collected/printed); it cannot push
/// client-side aggregation of the inner result into the batch (paper
/// Experiment 2: 7/33 Wilos samples).
Applicability CheckBatchingApplicable(const frontend::Function& fn);

/// Prefetching (Ramachandra & Sudarshan [19]): overlaps query latency
/// with computation; applicable whenever a query executes inside a loop
/// or after computable parameters ("prefetching is possible in all
/// cases we examined", paper Experiment 2).
Applicability CheckPrefetchApplicable(const frontend::Function& fn);

}  // namespace eqsql::baselines

#endif  // EQSQL_BASELINES_BATCHING_H_
