#ifndef EQSQL_ANALYSIS_LOOP_ANALYSIS_H_
#define EQSQL_ANALYSIS_LOOP_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/effects.h"
#include "frontend/ast.h"

namespace eqsql::analysis {

/// Summary of one cursor-loop body, the input to the F-IR translation
/// preconditions P1-P3 (paper Fig. 6).
struct LoopBodyInfo {
  /// All statements in the body, flattened in program order (compound
  /// statements included; their nested statements also appear).
  std::vector<const frontend::Stmt*> stmts;
  /// Per-statement effects (conditions only for compound statements).
  std::map<const frontend::Stmt*, StmtEffects> effects;
  /// Enclosing if-statements (innermost last) for each statement —
  /// control dependences used by slicing.
  std::map<const frontend::Stmt*, std::vector<const frontend::Stmt*>>
      control_deps;

  /// Variables written anywhere in the body (excluding the cursor).
  std::set<std::string> written;
  /// Variables with an upward-exposed read: read on some path before any
  /// sure write in the same iteration.
  std::set<std::string> upward_exposed;
  /// written ∩ upward_exposed — variables whose value flows across
  /// iterations (each one induces a loop-carried flow dependence).
  std::set<std::string> loop_carried;

  bool has_break = false;
  bool has_return = false;
  bool has_nested_while = false;
  bool writes_db = false;
  bool writes_output = false;
  bool has_unknown_call = false;
};

/// Analyzes a cursor-loop body. `cursor` is the loop variable; nested
/// cursor loops' own cursors are likewise excluded from carried sets.
LoopBodyInfo AnalyzeLoopBody(const std::vector<frontend::StmtPtr>& body,
                             const std::string& cursor);

/// A backward program slice over a loop body (paper Sec. 4.2):
/// statements and control predicates that directly or indirectly affect
/// `var` at the end of the loop.
struct Slice {
  std::set<const frontend::Stmt*> stmts;
  /// Variables read or written by the slice.
  std::set<std::string> vars;
  bool writes_db = false;
  bool writes_output = false;
  bool has_unknown_call = false;
};

Slice ComputeSlice(const LoopBodyInfo& info, const std::string& var);

/// Result of checking preconditions P1-P3 for converting variable `var`'s
/// loop updates into a fold (paper Fig. 6).
struct PreconditionResult {
  bool ok = false;
  std::string failure;  // which precondition failed and why
};

/// P1: a dependence cycle through var's updates with one loop-carried
///     flow dependence (var itself must be loop-carried).
/// P2: no other loop-carried dependence inside var's slice (apart from
///     the cursor update).
/// P3: no external dependencies in the slice (DB writes, output writes,
///     unknown calls). Loop-level break/return/while also reject.
PreconditionResult CheckFoldPreconditions(const LoopBodyInfo& info,
                                          const std::string& var);

/// Verdict for one precondition in an EXPLAIN EXTRACTION report.
/// Unlike CheckFoldPreconditions (which stops at the first failure),
/// every precondition is evaluated so the report can show which held
/// and which failed, with the offending DDG edge or statement.
struct PreconditionVerdict {
  bool checked = false;  // false when a structural gate made it moot
  bool held = false;
  /// When failed: the offending data-dependence edge or statement,
  /// rendered with source lines ("line 4 `w = w + v` -> read at ...").
  std::string detail;
};

/// All-verdicts precondition report for one (loop, var) attempt. The
/// `ok`/`failure` pair is byte-identical to CheckFoldPreconditions (it
/// is computed by the same code), so conversion decisions driven by
/// this report cannot diverge from the legacy check.
struct PreconditionReport {
  PreconditionVerdict p1, p2, p3;
  /// Structural rejection outside P1-P3: loop-level break/return, or a
  /// while loop inside the slice. Empty when no gate fired.
  std::string gate;
  bool ok = false;
  std::string failure;  // first failure in legacy check order
};

PreconditionReport ExplainFoldPreconditions(const LoopBodyInfo& info,
                                            const std::string& var);

}  // namespace eqsql::analysis

#endif  // EQSQL_ANALYSIS_LOOP_ANALYSIS_H_
