#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/scalar_ops.h"

namespace eqsql::exec {
namespace {

using catalog::DataType;
using catalog::Row;
using catalog::Schema;
using catalog::Value;
using ra::AggFunc;
using ra::RaNode;
using ra::ScalarExpr;
using ra::ScalarOp;

ra::ScalarExprPtr Col(const std::string& n) { return ScalarExpr::Column(n); }
ra::ScalarExprPtr Lit(int64_t v) {
  return ScalarExpr::Literal(Value::Int(v));
}
ra::ScalarExprPtr Str(const std::string& s) {
  return ScalarExpr::Literal(Value::String(s));
}

/// Builds the standard fixture: board(id, rnd_id, p1..p4), role(id, name),
/// wuser(id, role_id, login).
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto board = *db_.CreateTable(
        "board", Schema({{"id", DataType::kInt64},
                         {"rnd_id", DataType::kInt64},
                         {"p1", DataType::kInt64},
                         {"p2", DataType::kInt64},
                         {"p3", DataType::kInt64},
                         {"p4", DataType::kInt64}}));
    int64_t scores[][6] = {{1, 1, 10, 40, 30, 20},
                           {2, 1, 50, 5, 5, 5},
                           {3, 2, 99, 99, 99, 99},
                           {4, 1, 7, 8, 9, 11}};
    for (auto& s : scores) {
      ASSERT_TRUE(board
                      ->Insert({Value::Int(s[0]), Value::Int(s[1]),
                                Value::Int(s[2]), Value::Int(s[3]),
                                Value::Int(s[4]), Value::Int(s[5])})
                      .ok());
    }
    auto role = *db_.CreateTable("role", Schema({{"id", DataType::kInt64},
                                                 {"name", DataType::kString}}));
    ASSERT_TRUE(role->Insert({Value::Int(1), Value::String("admin")}).ok());
    ASSERT_TRUE(role->Insert({Value::Int(2), Value::String("user")}).ok());

    auto wuser = *db_.CreateTable(
        "wuser", Schema({{"id", DataType::kInt64},
                         {"role_id", DataType::kInt64},
                         {"login", DataType::kString}}));
    ASSERT_TRUE(
        wuser->Insert({Value::Int(10), Value::Int(1), Value::String("ann")})
            .ok());
    ASSERT_TRUE(
        wuser->Insert({Value::Int(11), Value::Int(2), Value::String("bob")})
            .ok());
    ASSERT_TRUE(
        wuser->Insert({Value::Int(12), Value::Int(3), Value::String("eve")})
            .ok());
  }

  storage::Database db_;
};

TEST_F(ExecutorTest, ScanProducesQualifiedColumns) {
  Executor ex(&db_);
  auto rs = ex.Execute(RaNode::Scan("board", "b"));
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 4u);
  EXPECT_EQ(rs->schema.column(0).name, "b.id");
  EXPECT_TRUE(rs->schema.IndexOf("rnd_id").has_value());
}

TEST_F(ExecutorTest, SelectFilters) {
  Executor ex(&db_);
  auto q = RaNode::Select(
      RaNode::Scan("board", "b"),
      ScalarExpr::Binary(ScalarOp::kEq, Col("b.rnd_id"), Lit(1)));
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);
}

TEST_F(ExecutorTest, SelectWithParameter) {
  Executor ex(&db_);
  auto q = RaNode::Select(
      RaNode::Scan("board", "b"),
      ScalarExpr::Binary(ScalarOp::kEq, Col("b.rnd_id"),
                         ScalarExpr::Parameter(0)));
  auto rs = ex.Execute(q, {Value::Int(2)});
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 3);
}

TEST_F(ExecutorTest, ProjectComputesExpressions) {
  Executor ex(&db_);
  auto score = ScalarExpr::Nary(
      ScalarOp::kGreatest, {Col("b.p1"), Col("b.p2"), Col("b.p3"),
                            Col("b.p4")});
  auto q = RaNode::Project(RaNode::Scan("board", "b"), {{score, "score"}});
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 4u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 40);
  EXPECT_EQ(rs->rows[1][0].AsInt(), 50);
}

TEST_F(ExecutorTest, ProjectPreservesOrder) {
  Executor ex(&db_);
  auto q = RaNode::Project(RaNode::Scan("board", "b"), {{Col("b.id"), "id"}});
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  std::vector<int64_t> ids;
  for (auto& r : rs->rows) ids.push_back(r[0].AsInt());
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 2, 3, 4}));
}

TEST_F(ExecutorTest, HashJoinEqui) {
  Executor ex(&db_);
  auto q = RaNode::Join(
      RaNode::Scan("wuser", "u"), RaNode::Scan("role", "r"),
      ScalarExpr::Binary(ScalarOp::kEq, Col("u.role_id"), Col("r.id")));
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);  // eve has no matching role
  EXPECT_EQ(rs->schema.size(), 5u);
}

TEST_F(ExecutorTest, LeftOuterJoinPadsNulls) {
  Executor ex(&db_);
  auto q = RaNode::LeftOuterJoin(
      RaNode::Scan("wuser", "u"), RaNode::Scan("role", "r"),
      ScalarExpr::Binary(ScalarOp::kEq, Col("u.role_id"), Col("r.id")));
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 3u);
  // eve row: role columns are NULL
  EXPECT_TRUE(rs->rows[2][3].is_null());
  EXPECT_TRUE(rs->rows[2][4].is_null());
}

TEST_F(ExecutorTest, NestedLoopJoinNonEqui) {
  Executor ex(&db_);
  auto q = RaNode::Join(
      RaNode::Scan("role", "a"), RaNode::Scan("role", "b"),
      ScalarExpr::Binary(ScalarOp::kLt, Col("a.id"), Col("b.id")));
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);  // (1,2)
}

TEST_F(ExecutorTest, ScalarAggregateMax) {
  Executor ex(&db_);
  auto score = ScalarExpr::Nary(
      ScalarOp::kGreatest,
      {Col("b.p1"), Col("b.p2"), Col("b.p3"), Col("b.p4")});
  // SELECT MAX(GREATEST(p1,p2,p3,p4)) FROM board WHERE rnd_id = 1
  auto q = RaNode::GroupBy(
      RaNode::Project(
          RaNode::Select(RaNode::Scan("board", "b"),
                         ScalarExpr::Binary(ScalarOp::kEq, Col("b.rnd_id"),
                                            Lit(1))),
          {{score, "score"}}),
      {}, {{AggFunc::kMax, Col("score"), "mx"}});
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 50);
}

TEST_F(ExecutorTest, ScalarAggregateOverEmptyInput) {
  Executor ex(&db_);
  auto q = RaNode::GroupBy(
      RaNode::Select(RaNode::Scan("board", "b"),
                     ScalarExpr::Binary(ScalarOp::kEq, Col("b.rnd_id"),
                                        Lit(99))),
      {},
      {{AggFunc::kMax, Col("b.p1"), "mx"},
       {AggFunc::kCountStar, nullptr, "cnt"},
       {AggFunc::kSum, Col("b.p1"), "sm"}});
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_TRUE(rs->rows[0][0].is_null());   // MAX of empty
  EXPECT_EQ(rs->rows[0][1].AsInt(), 0);    // COUNT(*) of empty
  EXPECT_TRUE(rs->rows[0][2].is_null());   // SUM of empty
}

TEST_F(ExecutorTest, GroupByKeys) {
  Executor ex(&db_);
  auto q = RaNode::GroupBy(RaNode::Scan("board", "b"), {Col("b.rnd_id")},
                           {{AggFunc::kMax, Col("b.p1"), "mx"},
                            {AggFunc::kCountStar, nullptr, "cnt"}});
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);
  // First-seen group order: rnd 1 then rnd 2.
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs->rows[0][1].AsInt(), 50);
  EXPECT_EQ(rs->rows[0][2].AsInt(), 3);
  EXPECT_EQ(rs->rows[1][1].AsInt(), 99);
}

TEST_F(ExecutorTest, AggregatesSkipNulls) {
  auto t = *db_.CreateTable("n", Schema({{"v", DataType::kInt64}}));
  ASSERT_TRUE(t->Insert({Value::Int(3)}).ok());
  ASSERT_TRUE(t->Insert({Value::Null()}).ok());
  ASSERT_TRUE(t->Insert({Value::Int(5)}).ok());
  Executor ex(&db_);
  auto q = RaNode::GroupBy(RaNode::Scan("n"), {},
                           {{AggFunc::kCount, Col("n.v"), "c"},
                            {AggFunc::kSum, Col("n.v"), "s"},
                            {AggFunc::kAvg, Col("n.v"), "a"}});
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 2);
  EXPECT_EQ(rs->rows[0][1].AsInt(), 8);
  EXPECT_DOUBLE_EQ(rs->rows[0][2].AsDouble(), 4.0);
}

TEST_F(ExecutorTest, SortAscDescStable) {
  Executor ex(&db_);
  auto q = RaNode::Sort(RaNode::Scan("board", "b"),
                        {{Col("b.rnd_id"), true}, {Col("b.p1"), false}});
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  std::vector<int64_t> ids;
  for (auto& r : rs->rows) ids.push_back(r[0].AsInt());
  EXPECT_EQ(ids, (std::vector<int64_t>{2, 1, 4, 3}));
}

TEST_F(ExecutorTest, DedupKeepsFirstOccurrence) {
  Executor ex(&db_);
  auto q = RaNode::Dedup(
      RaNode::Project(RaNode::Scan("board", "b"), {{Col("b.rnd_id"), "r"}}));
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs->rows[1][0].AsInt(), 2);
}

TEST_F(ExecutorTest, Limit) {
  Executor ex(&db_);
  auto q = RaNode::Limit(RaNode::Scan("board", "b"), 2);
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);
}

TEST_F(ExecutorTest, OuterApplyCorrelated) {
  Executor ex(&db_);
  // wuser OUTER APPLY (SELECT name FROM role WHERE role.id = u.role_id)
  auto inner = RaNode::Project(
      RaNode::Select(
          RaNode::Scan("role", "r"),
          ScalarExpr::Binary(ScalarOp::kEq, Col("r.id"), Col("u.role_id"))),
      {{Col("r.name"), "role_name"}});
  auto q = RaNode::OuterApply(RaNode::Scan("wuser", "u"), inner);
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 3u);
  EXPECT_EQ(rs->rows[0][3].AsString(), "admin");
  EXPECT_EQ(rs->rows[1][3].AsString(), "user");
  EXPECT_TRUE(rs->rows[2][3].is_null());  // eve: no role -> NULL padded
}

TEST_F(ExecutorTest, ExistsPredicate) {
  Executor ex(&db_);
  // SELECT * FROM role r WHERE EXISTS (SELECT * FROM wuser u WHERE
  // u.role_id = r.id)
  auto sub = RaNode::Select(
      RaNode::Scan("wuser", "u"),
      ScalarExpr::Binary(ScalarOp::kEq, Col("u.role_id"), Col("r.id")));
  auto q = RaNode::Select(RaNode::Scan("role", "r"),
                          ScalarExpr::Exists(sub, /*negated=*/false));
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);

  auto qn = RaNode::Select(RaNode::Scan("role", "r"),
                           ScalarExpr::Exists(sub, /*negated=*/true));
  auto rsn = ex.Execute(qn);
  ASSERT_TRUE(rsn.ok());
  EXPECT_EQ(rsn->rows.size(), 0u);
}

TEST_F(ExecutorTest, UnknownColumnErrors) {
  Executor ex(&db_);
  auto q = RaNode::Select(
      RaNode::Scan("board", "b"),
      ScalarExpr::Binary(ScalarOp::kEq, Col("b.nope"), Lit(1)));
  auto rs = ex.Execute(q);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, UnknownTableErrors) {
  Executor ex(&db_);
  auto rs = ex.Execute(RaNode::Scan("missing"));
  ASSERT_FALSE(rs.ok());
}

TEST_F(ExecutorTest, CaseExpression) {
  Executor ex(&db_);
  auto q = RaNode::Project(
      RaNode::Scan("role", "r"),
      {{ScalarExpr::Case(
            ScalarExpr::Binary(ScalarOp::kEq, Col("r.id"), Lit(1)),
            Str("first"), Str("other")),
        "tag"}});
  auto rs = ex.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsString(), "first");
  EXPECT_EQ(rs->rows[1][0].AsString(), "other");
}

// --- scalar op unit tests -------------------------------------------------

TEST(ScalarOpsTest, ArithmeticIntAndDouble) {
  EXPECT_EQ(EvalArithmetic(ScalarOp::kAdd, Value::Int(2), Value::Int(3))
                ->AsInt(),
            5);
  EXPECT_DOUBLE_EQ(
      EvalArithmetic(ScalarOp::kMul, Value::Double(1.5), Value::Int(2))
          ->AsDouble(),
      3.0);
  EXPECT_EQ(EvalArithmetic(ScalarOp::kDiv, Value::Int(7), Value::Int(2))
                ->AsInt(),
            3);
  EXPECT_EQ(EvalArithmetic(ScalarOp::kMod, Value::Int(7), Value::Int(3))
                ->AsInt(),
            1);
}

TEST(ScalarOpsTest, NullPropagates) {
  EXPECT_TRUE(
      EvalArithmetic(ScalarOp::kAdd, Value::Null(), Value::Int(1))->is_null());
  EXPECT_TRUE(
      EvalComparison(ScalarOp::kLt, Value::Int(1), Value::Null())->is_null());
  EXPECT_TRUE(EvalConcat(Value::Null(), Value::String("x"))->is_null());
}

TEST(ScalarOpsTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(
      EvalArithmetic(ScalarOp::kDiv, Value::Int(1), Value::Int(0))->is_null());
  EXPECT_TRUE(EvalArithmetic(ScalarOp::kDiv, Value::Double(1), Value::Double(0))
                  ->is_null());
}

TEST(ScalarOpsTest, StringPlusIsConcat) {
  auto v = EvalArithmetic(ScalarOp::kAdd, Value::String("a"), Value::Int(1));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a1");
}

TEST(ScalarOpsTest, ComparisonTypeErrors) {
  EXPECT_FALSE(
      EvalComparison(ScalarOp::kLt, Value::Int(1), Value::String("a")).ok());
}

TEST(ScalarOpsTest, ThreeValuedLogic) {
  Value t = Value::Bool(true), f = Value::Bool(false), n = Value::Null();
  EXPECT_FALSE(EvalAnd(f, n).AsBool());      // FALSE AND NULL = FALSE
  EXPECT_TRUE(EvalAnd(t, n).is_null());      // TRUE AND NULL = NULL
  EXPECT_TRUE(EvalOr(t, n).AsBool());        // TRUE OR NULL = TRUE
  EXPECT_TRUE(EvalOr(f, n).is_null());       // FALSE OR NULL = NULL
  EXPECT_TRUE(EvalNot(n).is_null());
  EXPECT_FALSE(IsTruthy(n));
  EXPECT_FALSE(IsTruthy(f));
  EXPECT_TRUE(IsTruthy(t));
}

TEST(ScalarOpsTest, GreatestLeast) {
  std::vector<Value> vs = {Value::Int(3), Value::Int(9), Value::Int(5)};
  EXPECT_EQ(EvalGreatestLeast(true, vs)->AsInt(), 9);
  EXPECT_EQ(EvalGreatestLeast(false, vs)->AsInt(), 3);
  vs.push_back(Value::Null());
  EXPECT_TRUE(EvalGreatestLeast(true, vs)->is_null());  // MySQL semantics
  EXPECT_FALSE(EvalGreatestLeast(true, {}).ok());
}

}  // namespace
}  // namespace eqsql::exec
