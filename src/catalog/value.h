#ifndef EQSQL_CATALOG_VALUE_H_
#define EQSQL_CATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace eqsql::catalog {

/// SQL data types supported by the engine. `kNull` is the type of the
/// untyped NULL literal; columns always have one of the concrete types.
enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

std::string_view DataTypeToString(DataType type);

/// A single SQL value with three-valued NULL semantics.
///
/// Values are small, copyable, and totally ordered (NULL sorts first, as
/// in most engines' default ORDER BY). Arithmetic and comparisons with
/// SQL semantics live in exec/scalar_ops.h; this class only stores data.
class Value {
 public:
  /// Constructs NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  /// True for int64 or double.
  bool is_numeric() const { return is_int() || is_double(); }

  DataType type() const;

  /// Accessors abort if the value holds a different type; check first.
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric value widened to double (int64 or double); aborts otherwise.
  double AsNumeric() const;

  /// SQL-literal rendering: NULL, TRUE, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Approximate wire size in bytes, used by the net/ cost model.
  size_t WireSize() const;

  /// Total order: NULL < bool < numeric < string; numerics compare by
  /// value across int64/double. Used for sorting and grouping.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr data) : data_(std::move(data)) {}

  Repr data_;
};

bool operator==(const Value& a, const Value& b);
bool operator<(const Value& a, const Value& b);
inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }

/// Hash consistent with operator== (numeric values hash by double value).
struct ValueHash {
  size_t operator()(const Value& v) const;
};

}  // namespace eqsql::catalog

#endif  // EQSQL_CATALOG_VALUE_H_
