// Reproduces the paper's Figure 8 (Experiment 5, Selection): a loop
// that filters rows client-side (Wilos sample #6 pattern) versus the
// rewritten query with the predicate pushed into WHERE, at 20%
// selectivity across table sizes.
//
// Expected shape: the transformed program is faster and transfers less
// data; the gap widens as the table grows (only 20% of rows — and only
// two columns — cross the wire).
//
// The rewritten program runs on both engines: simulated time and every
// transfer counter must agree bit for bit (the cost-parity contract —
// a mismatch fails the binary), while per-mode wall-clock times are
// reported so the vectorized engine's real speed shows up next to the
// mode-invariant model numbers.
//
// A second "selection phase" exercises cost-based alternative
// selection (Cobra): for each app x size, the server's
// AlternativeSelector picks a strategy against live stats; the picked
// strategy and unconditional extraction both run on the simulated
// clock, and the gate asserts the cost-chosen run is never slower than
// always-extract (under the same client-loop accounting the selector
// prices with). Chosen-strategy counts land in the artifact.
//
// With --json FILE, additionally writes the per-size measurements plus
// the metrics-registry snapshot of the rewritten runs as a machine-
// readable artifact (BENCH_fig8.json in CI).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/perf_util.h"
#include "core/alternative_selector.h"
#include "core/optimizer.h"
#include "frontend/parser.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "workloads/benchmark_apps.h"
#include "workloads/wilos_samples.h"

namespace {

struct Measurement {
  int rows;
  eqsql::bench::PerfResult original;
  eqsql::bench::PerfResult rewritten;  // vectorized engine run
  double row_wall_ms = 0;              // rewritten, row engine, wall clock
  double vector_wall_ms = 0;           // rewritten, vectorized, wall clock
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One cost-based selection measurement: which strategy the selector
/// picked for (app, rows) and how the pick fared against unconditional
/// extraction on the simulated clock.
struct SelectionRun {
  std::string app;
  int rows = 0;
  std::string chosen;
  double chosen_ms = 0;          // modeled total of the picked strategy
  double always_extract_ms = 0;  // modeled total of always-extract
  std::string alternatives_json;  // the priced list, straight from the plan
};

/// Mirrors AlternativeSelector::LoopClientMs: the client-side loop work
/// the interpreted/batching strategies pay that extraction avoids. The
/// gate charges it to the measured run so "never slower" is judged
/// under the same accounting the selector priced with.
double ClientLoopMs(const eqsql::net::CostModel& model, double outer_rows) {
  return model.client_cost_per_op_ms * outer_rows * 4.0;
}

/// Runs `program` through the interpreter, optionally in batching mode
/// (parameter-table upload + demultiplexed joins).
eqsql::bench::PerfResult RunStrategy(const eqsql::frontend::Program& program,
                                     const std::string& function,
                                     eqsql::storage::Database* db,
                                     bool batching) {
  eqsql::net::Connection conn(db);
  eqsql::interp::Interpreter interp(&program, &conn);
  interp.set_batching(batching);
  auto ret = interp.Run(function);
  if (!ret.ok()) {
    EQSQL_LOG(Error, "run %s: %s", function.c_str(),
              ret.status().ToString().c_str());
    std::abort();
  }
  eqsql::bench::PerfResult out;
  out.ms = conn.stats().simulated_ms;
  out.bytes = conn.stats().bytes_transferred;
  out.rows = conn.stats().rows_transferred;
  out.result = ret->DisplayString();
  out.printed = interp.printed();
  return out;
}

std::string SelectionPhaseJson(const std::vector<SelectionRun>& runs,
                               const std::map<std::string, int>& counts,
                               bool pass) {
  std::string json = "{\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    const SelectionRun& r = runs[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"app\":\"%s\",\"rows\":%d,\"chosen\":\"%s\","
                  "\"chosen_ms\":%.3f,\"always_extract_ms\":%.3f,"
                  "\"alternatives\":",
                  i == 0 ? "" : ",", r.app.c_str(), r.rows, r.chosen.c_str(),
                  r.chosen_ms, r.always_extract_ms);
    json += buf;
    json += r.alternatives_json + "}";
  }
  json += "],\"chosen_counts\":{";
  bool first = true;
  for (const auto& [kind, n] : counts) {
    if (!first) json += ",";
    first = false;
    json += "\"" + kind + "\":" + std::to_string(n);
  }
  json += "},\"pass\":";
  json += pass ? "true" : "false";
  json += "}";
  return json;
}

bool WriteJson(const char* path, const std::vector<Measurement>& runs,
               const std::string& sql, const std::string& selection_phase,
               const eqsql::obs::MetricsSnapshot& metrics,
               size_t shard_count) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"bench\":\"fig8_selection\",\"runs\":[");
  for (size_t i = 0; i < runs.size(); ++i) {
    const Measurement& m = runs[i];
    std::fprintf(f,
                 "%s{\"rows\":%d,\"orig_ms\":%.3f,\"eqsql_ms\":%.3f,"
                 "\"orig_bytes\":%lld,\"eqsql_bytes\":%lld,"
                 "\"orig_rows_transferred\":%lld,"
                 "\"eqsql_rows_transferred\":%lld,\"speedup\":%.3f,"
                 "\"eqsql_row_wall_ms\":%.3f,\"eqsql_vector_wall_ms\":%.3f}",
                 i == 0 ? "" : ",", m.rows, m.original.ms, m.rewritten.ms,
                 static_cast<long long>(m.original.bytes),
                 static_cast<long long>(m.rewritten.bytes),
                 static_cast<long long>(m.original.rows),
                 static_cast<long long>(m.rewritten.rows),
                 m.original.ms / m.rewritten.ms, m.row_wall_ms,
                 m.vector_wall_ms);
  }
  // The SQL is emitted by our own renderer: no quotes or control
  // characters, so direct embedding is safe.
  std::fprintf(f, "],\"selection_phase\":%s,\"extracted_sql\":\"%s\","
               "\"provenance\":%s,\"metrics\":%s}\n",
               selection_phase.c_str(), sql.c_str(),
               eqsql::bench::ProvenanceJson("row+vector", shard_count).c_str(),
               metrics.ToJson().c_str());
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  eqsql::bench::PrintHeader(
      "Figure 8: Selection (20% selectivity), original vs transformed");
  std::printf("%10s %14s %14s %12s %12s %8s %12s %12s\n", "rows", "orig ms",
              "eqsql ms", "orig KB", "eqsql KB", "speedup", "row wall ms",
              "vec wall ms");

  auto program = eqsql::bench::ValueOrDie(
      eqsql::frontend::ParseProgram(eqsql::workloads::SelectionProgram()),
      "parse");
  eqsql::core::OptimizeOptions options;
  options.transform.table_keys = {{"project", "id"}};
  eqsql::core::EqSqlOptimizer optimizer(options);
  auto optimized = eqsql::bench::ValueOrDie(
      optimizer.Optimize(program, "unfinished"), "optimize");
  if (!optimized.any_extracted()) {
    EQSQL_LOG(Error, "selection did not extract");
    return 1;
  }

  // One registry across all rewritten runs: storage.scan.* and net.*
  // totals land in the JSON artifact for the CI smoke check. Only the
  // vectorized runs feed it, so totals stay comparable to earlier
  // single-engine artifacts.
  eqsql::obs::MetricsRegistry metrics;
  std::vector<Measurement> runs;
  size_t shard_count = 1;
  for (int rows : {1000, 5000, 20000, 50000, 100000}) {
    eqsql::storage::Database db;
    shard_count = db.shard_count();
    eqsql::bench::CheckOk(
        eqsql::workloads::SetupSelectionDatabase(&db, rows, 20), "setup");
    auto original =
        eqsql::bench::RunInterpreted(program, "unfinished", &db);
    const double t0 = NowMs();
    auto rewritten_row =
        eqsql::bench::RunInterpreted(optimized.program, "unfinished", &db,
                                     /*prefetch=*/false, nullptr,
                                     eqsql::exec::ExecMode::kRow);
    const double t1 = NowMs();
    auto rewritten =
        eqsql::bench::RunInterpreted(optimized.program, "unfinished", &db,
                                     /*prefetch=*/false, &metrics,
                                     eqsql::exec::ExecMode::kVector);
    const double t2 = NowMs();
    if (original.result != rewritten.result) {
      EQSQL_LOG(Error, "MISMATCH at %d rows", rows);
      return 1;
    }
    // Cost parity: the engines must agree on results, simulated time,
    // and every transfer counter — only wall time may differ.
    if (rewritten_row.result != rewritten.result ||
        rewritten_row.ms != rewritten.ms ||
        rewritten_row.bytes != rewritten.bytes ||
        rewritten_row.rows != rewritten.rows) {
      EQSQL_LOG(Error, "ENGINE DIVERGENCE at %d rows", rows);
      return 1;
    }
    std::printf("%10d %14.3f %14.3f %12.1f %12.1f %7.2fx %12.3f %12.3f\n",
                rows, original.ms, rewritten.ms, original.bytes / 1024.0,
                rewritten.bytes / 1024.0, original.ms / rewritten.ms,
                t1 - t0, t2 - t1);
    runs.push_back(
        {rows, std::move(original), std::move(rewritten), t1 - t0, t2 - t1});
  }
  std::string sql = optimized.outcomes[0].sql.empty()
                        ? "(none)"
                        : optimized.outcomes[0].sql[0];
  std::printf("\nExtracted SQL: %s\n", sql.c_str());

  // --- Selection phase: cost-based alternative selection per app/size.
  struct PhaseApp {
    const char* name;
    std::string source;
    const char* function;
    std::map<std::string, std::string> keys;
    std::function<eqsql::Status(eqsql::storage::Database*, int)> setup;
  };
  // String fold over a per-row point probe: full extraction refuses the
  // shape, so selection is a real contest between the batching rewrite
  // and the interpreted original — batching wins once per-row round
  // trips dominate.
  const char* fold_src = R"(
    func fold() {
      s = "";
      rows = executeQuery("SELECT * FROM t0 AS a");
      for (a : rows) {
        x = scalar(executeQuery("SELECT b.u AS u FROM t1 AS b WHERE b.id = ?", a.fk));
        s = concat(s, pair(a.name, x));
      }
      return s;
    }
  )";
  const std::vector<PhaseApp> phase_apps = {
      {"selection", eqsql::workloads::SelectionProgram(), "unfinished",
       {{"project", "id"}},
       [](eqsql::storage::Database* db, int n) {
         return eqsql::workloads::SetupSelectionDatabase(db, n, 20);
       }},
      {"jobportal", eqsql::workloads::JobPortalProgram(), "jobReport",
       eqsql::workloads::WilosTableKeys(),
       [](eqsql::storage::Database* db, int n) {
         return eqsql::workloads::SetupJobPortalDatabase(db, n);
       }},
      {"batchfold", fold_src, "fold", {{"t1", "id"}},
       [](eqsql::storage::Database* db, int n) -> eqsql::Status {
         EQSQL_ASSIGN_OR_RETURN(
             eqsql::storage::Table * t0,
             db->CreateTable(
                 "t0", eqsql::catalog::Schema(
                           {{"id", eqsql::catalog::DataType::kInt64},
                            {"fk", eqsql::catalog::DataType::kInt64},
                            {"name", eqsql::catalog::DataType::kString}})));
         EQSQL_ASSIGN_OR_RETURN(
             eqsql::storage::Table * t1,
             db->CreateTable(
                 "t1", eqsql::catalog::Schema(
                           {{"id", eqsql::catalog::DataType::kInt64},
                            {"u", eqsql::catalog::DataType::kInt64}})));
         const int inner = n / 4 + 1;
         for (int64_t i = 0; i < inner; ++i) {
           EQSQL_RETURN_IF_ERROR(t1->Insert(
               {eqsql::catalog::Value::Int(i),
                eqsql::catalog::Value::Int(i * 7)}));
         }
         EQSQL_RETURN_IF_ERROR(t1->DeclareUniqueKey("id"));
         for (int64_t i = 0; i < n; ++i) {
           EQSQL_RETURN_IF_ERROR(t0->Insert(
               {eqsql::catalog::Value::Int(i),
                eqsql::catalog::Value::Int(i % inner),
                eqsql::catalog::Value::String("n" + std::to_string(i))}));
         }
         return t0->DeclareUniqueKey("id");
       }},
  };
  std::printf("\nSelection phase: cost-chosen strategy vs always-extract\n");
  std::printf("%10s %8s %15s %14s %16s\n", "app", "rows", "chosen",
              "chosen ms", "always-ext ms");
  std::vector<SelectionRun> selection_runs;
  std::map<std::string, int> chosen_counts;
  bool selection_pass = true;
  for (const PhaseApp& app : phase_apps) {
    for (int rows : {200, 2000}) {
      eqsql::net::ServerOptions so;
      so.optimize.transform.table_keys = app.keys;
      eqsql::net::Server server(std::move(so));
      eqsql::bench::CheckOk(app.setup(server.db(), rows), "phase setup");
      std::unique_ptr<eqsql::net::Session> session = server.Connect();
      auto plan = eqsql::bench::ValueOrDie(
          session->SelectPlan(app.source, app.function), "select plan");
      auto original = eqsql::bench::ValueOrDie(
          eqsql::frontend::ParseProgram(app.source), "phase parse");

      const eqsql::net::CostModel model = server.options().cost_model;
      auto extract_arm = RunStrategy(plan->optimized->program, app.function,
                                     server.db(), /*batching=*/false);
      const eqsql::frontend::Program* chosen_prog =
          plan->chosen == eqsql::core::AlternativeKind::kExtractedSql
              ? &plan->optimized->program
              : &original;
      auto chosen_arm = RunStrategy(
          *chosen_prog, app.function, server.db(),
          plan->chosen == eqsql::core::AlternativeKind::kBatching);
      if (chosen_arm.result != extract_arm.result ||
          chosen_arm.printed != extract_arm.printed) {
        EQSQL_LOG(Error, "SELECTION MISMATCH %s at %d rows", app.name, rows);
        return 1;
      }
      // Charge the selector's client-loop accounting to the strategies
      // that iterate rows client-side; extraction does that work on the
      // server.
      const double client_ms =
          plan->chosen == eqsql::core::AlternativeKind::kExtractedSql
              ? 0.0
              : ClientLoopMs(model, static_cast<double>(rows));

      SelectionRun run;
      run.app = app.name;
      run.rows = rows;
      run.chosen = eqsql::core::AlternativeKindName(plan->chosen);
      run.chosen_ms = chosen_arm.ms + client_ms;
      run.always_extract_ms = extract_arm.ms;
      run.alternatives_json = "[";
      for (size_t i = 0; i < plan->alternatives.size(); ++i) {
        const eqsql::core::PlanAlternative& a = plan->alternatives[i];
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"kind\":\"%s\",\"feasible\":%s,"
                      "\"est_cost_ms\":%.3f}",
                      i == 0 ? "" : ",",
                      eqsql::core::AlternativeKindName(a.kind),
                      a.feasible ? "true" : "false", a.est_cost_ms);
        run.alternatives_json += buf;
      }
      run.alternatives_json += "]";
      ++chosen_counts[run.chosen];
      // The gate: a cost-chosen run must never lose to always-extract
      // under the same accounting the selector prices with.
      if (run.chosen_ms > run.always_extract_ms + 1e-9) {
        selection_pass = false;
        EQSQL_LOG(Error, "SELECTION GATE: %s at %d rows: chosen %s %.3f ms "
                  "> always-extract %.3f ms", app.name, rows,
                  run.chosen.c_str(), run.chosen_ms, run.always_extract_ms);
      }
      std::printf("%10s %8d %15s %14.3f %16.3f\n", app.name, rows,
                  run.chosen.c_str(), run.chosen_ms, run.always_extract_ms);
      selection_runs.push_back(std::move(run));
    }
  }
  std::printf("chosen counts:");
  for (const auto& [kind, n] : chosen_counts) {
    std::printf(" %s=%d", kind.c_str(), n);
  }
  std::printf("\n");

  if (json_path != nullptr) {
    const std::string phase_json =
        SelectionPhaseJson(selection_runs, chosen_counts, selection_pass);
    if (!WriteJson(json_path, runs, sql, phase_json, metrics.Snapshot(),
                   shard_count)) {
      EQSQL_LOG(Error, "cannot write %s", json_path);
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }
  return selection_pass ? 0 : 1;
}
