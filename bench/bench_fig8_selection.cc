// Reproduces the paper's Figure 8 (Experiment 5, Selection): a loop
// that filters rows client-side (Wilos sample #6 pattern) versus the
// rewritten query with the predicate pushed into WHERE, at 20%
// selectivity across table sizes.
//
// Expected shape: the transformed program is faster and transfers less
// data; the gap widens as the table grows (only 20% of rows — and only
// two columns — cross the wire).
//
// With --json FILE, additionally writes the per-size measurements plus
// the metrics-registry snapshot of the rewritten runs as a machine-
// readable artifact (BENCH_fig8.json in CI).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/perf_util.h"
#include "core/optimizer.h"
#include "frontend/parser.h"
#include "obs/metrics.h"
#include "workloads/benchmark_apps.h"
#include "workloads/wilos_samples.h"

namespace {

struct Measurement {
  int rows;
  eqsql::bench::PerfResult original;
  eqsql::bench::PerfResult rewritten;
};

bool WriteJson(const char* path, const std::vector<Measurement>& runs,
               const std::string& sql,
               const eqsql::obs::MetricsSnapshot& metrics) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"bench\":\"fig8_selection\",\"runs\":[");
  for (size_t i = 0; i < runs.size(); ++i) {
    const Measurement& m = runs[i];
    std::fprintf(f,
                 "%s{\"rows\":%d,\"orig_ms\":%.3f,\"eqsql_ms\":%.3f,"
                 "\"orig_bytes\":%lld,\"eqsql_bytes\":%lld,"
                 "\"orig_rows_transferred\":%lld,"
                 "\"eqsql_rows_transferred\":%lld,\"speedup\":%.3f}",
                 i == 0 ? "" : ",", m.rows, m.original.ms, m.rewritten.ms,
                 static_cast<long long>(m.original.bytes),
                 static_cast<long long>(m.rewritten.bytes),
                 static_cast<long long>(m.original.rows),
                 static_cast<long long>(m.rewritten.rows),
                 m.original.ms / m.rewritten.ms);
  }
  // The SQL is emitted by our own renderer: no quotes or control
  // characters, so direct embedding is safe.
  std::fprintf(f, "],\"extracted_sql\":\"%s\",\"metrics\":%s}\n", sql.c_str(),
               metrics.ToJson().c_str());
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  eqsql::bench::PrintHeader(
      "Figure 8: Selection (20% selectivity), original vs transformed");
  std::printf("%10s %14s %14s %14s %14s %8s\n", "rows", "orig ms",
              "eqsql ms", "orig KB", "eqsql KB", "speedup");

  auto program = eqsql::bench::ValueOrDie(
      eqsql::frontend::ParseProgram(eqsql::workloads::SelectionProgram()),
      "parse");
  eqsql::core::OptimizeOptions options;
  options.transform.table_keys = {{"project", "id"}};
  eqsql::core::EqSqlOptimizer optimizer(options);
  auto optimized = eqsql::bench::ValueOrDie(
      optimizer.Optimize(program, "unfinished"), "optimize");
  if (!optimized.any_extracted()) {
    EQSQL_LOG(Error, "selection did not extract");
    return 1;
  }

  // One registry across all rewritten runs: storage.scan.* and net.*
  // totals land in the JSON artifact for the CI smoke check.
  eqsql::obs::MetricsRegistry metrics;
  std::vector<Measurement> runs;
  for (int rows : {1000, 5000, 20000, 50000, 100000}) {
    eqsql::storage::Database db;
    eqsql::bench::CheckOk(
        eqsql::workloads::SetupSelectionDatabase(&db, rows, 20), "setup");
    auto original =
        eqsql::bench::RunInterpreted(program, "unfinished", &db);
    auto rewritten =
        eqsql::bench::RunInterpreted(optimized.program, "unfinished", &db,
                                     /*prefetch=*/false, &metrics);
    if (original.result != rewritten.result) {
      EQSQL_LOG(Error, "MISMATCH at %d rows", rows);
      return 1;
    }
    std::printf("%10d %14.3f %14.3f %14.1f %14.1f %7.2fx\n", rows,
                original.ms, rewritten.ms, original.bytes / 1024.0,
                rewritten.bytes / 1024.0, original.ms / rewritten.ms);
    runs.push_back({rows, std::move(original), std::move(rewritten)});
  }
  std::string sql = optimized.outcomes[0].sql.empty()
                        ? "(none)"
                        : optimized.outcomes[0].sql[0];
  std::printf("\nExtracted SQL: %s\n", sql.c_str());

  if (json_path != nullptr) {
    if (!WriteJson(json_path, runs, sql, metrics.Snapshot())) {
      EQSQL_LOG(Error, "cannot write %s", json_path);
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
