file(REMOVE_RECURSE
  "CMakeFiles/bench_exp2_applicability.dir/bench_exp2_applicability.cc.o"
  "CMakeFiles/bench_exp2_applicability.dir/bench_exp2_applicability.cc.o.d"
  "bench_exp2_applicability"
  "bench_exp2_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp2_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
