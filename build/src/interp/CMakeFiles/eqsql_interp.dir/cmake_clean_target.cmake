file(REMOVE_RECURSE
  "libeqsql_interp.a"
)
