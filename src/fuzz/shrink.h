#ifndef EQSQL_FUZZ_SHRINK_H_
#define EQSQL_FUZZ_SHRINK_H_

#include "fuzz/oracle.h"
#include "fuzz/scenario.h"

namespace eqsql::fuzz {

/// True for verdicts the shrinker preserves (equivalence violations
/// and row regressions; infra errors are not shrunk — they indicate a
/// broken harness, not a broken rewrite).
bool IsViolation(Verdict v);

struct ShrinkOptions {
  /// Upper bound on oracle invocations across all shrink passes; the
  /// greedy loops stop when exhausted (the current best is returned).
  int max_oracle_runs = 4000;
};

struct ShrinkOutcome {
  FuzzCase reduced;
  OracleReport report;  // the reduced case's (still failing) report
  int oracle_runs = 0;
};

/// Greedily minimizes a failing case while it keeps failing:
///  1. drop whole tables the program no longer needs,
///  2. delete row chunks, then single rows, from every table (ddmin),
///  3. delete statements / unwrap conditionals / split && and ||
///     conditions in the program source,
///  4. simplify expressions: integer constants collapse to 0 then 1,
///     and &&/|| predicate atoms are deleted at any nesting depth
///     (inside assignments, returns, and ternaries — not just
///     top-level if conditions, which pass 3 already covers).
/// Schedule cases (function "@txn"/"@index") swap passes 3-4 for
/// line-level ddmin over the `<session> <SQL>` lines; the pass knows
/// the statement kinds and never proposes a candidate that deletes
/// the last CREATE INDEX line of an index-family schedule.
/// Repeats to fixpoint. `failing` must currently fail under `oopts`
/// (IsViolation(RunOracle(...))); the result is the smallest failing
/// case found, suitable for the corpus.
ShrinkOutcome Shrink(const FuzzCase& failing, const OracleOptions& oopts,
                     const ShrinkOptions& sopts = {});

}  // namespace eqsql::fuzz

#endif  // EQSQL_FUZZ_SHRINK_H_
