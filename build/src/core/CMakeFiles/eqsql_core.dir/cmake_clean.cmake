file(REMOVE_RECURSE
  "CMakeFiles/eqsql_core.dir/cost_estimator.cc.o"
  "CMakeFiles/eqsql_core.dir/cost_estimator.cc.o.d"
  "CMakeFiles/eqsql_core.dir/optimizer.cc.o"
  "CMakeFiles/eqsql_core.dir/optimizer.cc.o.d"
  "libeqsql_core.a"
  "libeqsql_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqsql_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
