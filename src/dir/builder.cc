#include "dir/builder.h"

#include <algorithm>

#include "analysis/loop_analysis.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace eqsql::dir {

using frontend::Expr;
using frontend::ExprKind;
using frontend::ExprPtr;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::StmtPtr;

namespace {

constexpr int kMaxInlineDepth = 16;
constexpr char kReturnVar[] = "__ret";
constexpr char kOutputVar[] = "__out";

DOp BinOpToDOp(frontend::BinOp op) {
  switch (op) {
    case frontend::BinOp::kAdd: return DOp::kAdd;
    case frontend::BinOp::kSub: return DOp::kSub;
    case frontend::BinOp::kMul: return DOp::kMul;
    case frontend::BinOp::kDiv: return DOp::kDiv;
    case frontend::BinOp::kMod: return DOp::kMod;
    case frontend::BinOp::kEq: return DOp::kEq;
    case frontend::BinOp::kNe: return DOp::kNe;
    case frontend::BinOp::kLt: return DOp::kLt;
    case frontend::BinOp::kLe: return DOp::kLe;
    case frontend::BinOp::kGt: return DOp::kGt;
    case frontend::BinOp::kGe: return DOp::kGe;
    case frontend::BinOp::kAnd: return DOp::kAnd;
    case frontend::BinOp::kOr: return DOp::kOr;
  }
  return DOp::kAdd;
}

}  // namespace

DNodePtr DirBuilder::LookupVar(const std::string& name, Scope scope) {
  auto it = scope.map->find(name);
  if (it != scope.map->end()) return it->second;
  if (std::find(scope.cursors->begin(), scope.cursors->end(), name) !=
      scope.cursors->end()) {
    return ctx_->TupleRef(name);
  }
  return ctx_->RegionInput(name);
}

Result<FunctionDir> DirBuilder::BuildFunction(const frontend::Function& fn) {
  obs::ScopedSpan span("region-analysis+dir");
  if (span.active()) span.Attr("function", fn.name);
  loop_reports_.clear();
  VeMap map;
  map[kOutputVar] = ctx_->EmptyList();
  std::vector<std::string> cursors;
  cfg::RegionPtr root = cfg::BuildRegionTree(fn.body);
  if (root != nullptr) {
    EQSQL_RETURN_IF_ERROR(BuildRegion(root, Scope{&map, &cursors}));
  }
  FunctionDir out;
  out.ve_map = std::move(map);
  out.loop_reports = std::move(loop_reports_);
  return out;
}

Status DirBuilder::BuildRegion(const cfg::RegionPtr& region, Scope scope) {
  if (region == nullptr) return Status::OK();
  switch (region->kind()) {
    case cfg::RegionKind::kBasicBlock:
      for (const StmtPtr& stmt : region->stmts()) {
        EQSQL_RETURN_IF_ERROR(ApplyStmt(stmt, scope));
      }
      return Status::OK();
    case cfg::RegionKind::kSequential:
      EQSQL_RETURN_IF_ERROR(BuildRegion(region->first(), scope));
      return BuildRegion(region->second(), scope);
    case cfg::RegionKind::kConditional: {
      EQSQL_ASSIGN_OR_RETURN(DNodePtr cond, BuildExpr(region->cond(), scope));
      VeMap then_map = *scope.map;
      VeMap else_map = *scope.map;
      EQSQL_RETURN_IF_ERROR(BuildRegion(
          region->true_region(), Scope{&then_map, scope.cursors}));
      EQSQL_RETURN_IF_ERROR(BuildRegion(
          region->false_region(), Scope{&else_map, scope.cursors}));
      // Merge every variable modified in either branch with "?" nodes.
      std::vector<std::string> modified;
      for (const auto& [var, node] : then_map) {
        auto base = scope.map->find(var);
        if (base == scope.map->end() || base->second.get() != node.get()) {
          modified.push_back(var);
        }
      }
      for (const auto& [var, node] : else_map) {
        auto base = scope.map->find(var);
        if ((base == scope.map->end() || base->second.get() != node.get()) &&
            std::find(modified.begin(), modified.end(), var) ==
                modified.end()) {
          modified.push_back(var);
        }
      }
      for (const std::string& var : modified) {
        auto then_it = then_map.find(var);
        auto else_it = else_map.find(var);
        DNodePtr then_v = then_it != then_map.end() ? then_it->second
                                                    : LookupVar(var, scope);
        DNodePtr else_v = else_it != else_map.end() ? else_it->second
                                                    : LookupVar(var, scope);
        (*scope.map)[var] = ctx_->Cond(cond, then_v, else_v);
      }
      return Status::OK();
    }
    case cfg::RegionKind::kLoop:
      return BuildLoop(*region, scope);
  }
  return Status::Internal("BuildRegion: unknown region kind");
}

Status DirBuilder::ApplyStmt(const StmtPtr& stmt, Scope scope) {
  switch (stmt->kind()) {
    case StmtKind::kAssign: {
      EQSQL_ASSIGN_OR_RETURN(DNodePtr value, BuildExpr(stmt->expr(), scope));
      (*scope.map)[stmt->target()] = value;
      return Status::OK();
    }
    case StmtKind::kExprStmt: {
      const ExprPtr& e = stmt->expr();
      if (e->kind() == ExprKind::kMethodCall &&
          analysis::IsCollectionMutation(e->name()) &&
          e->object()->kind() == ExprKind::kVarRef && e->args().size() == 1) {
        const std::string& coll = e->object()->name();
        EQSQL_ASSIGN_OR_RETURN(DNodePtr elem, BuildExpr(e->arg(0), scope));
        DNodePtr base = LookupVar(coll, scope);
        DOp op = e->name() == "append" ? DOp::kAppend : DOp::kInsert;
        (*scope.map)[coll] = ctx_->Binary(op, base, elem);
        return Status::OK();
      }
      // Other expression statements: evaluate for effects; database
      // updates poison the ve-Map only through loop preconditions.
      return BuildExpr(e, scope).status();
    }
    case StmtKind::kPrint: {
      EQSQL_ASSIGN_OR_RETURN(DNodePtr value, BuildExpr(stmt->expr(), scope));
      DNodePtr base = LookupVar(kOutputVar, scope);
      (*scope.map)[kOutputVar] = ctx_->Append(base, value);
      return Status::OK();
    }
    case StmtKind::kReturn: {
      DNodePtr value = stmt->expr() == nullptr
                           ? ctx_->Const(catalog::Value::Null())
                           : nullptr;
      if (value == nullptr) {
        EQSQL_ASSIGN_OR_RETURN(value, BuildExpr(stmt->expr(), scope));
      }
      (*scope.map)[kReturnVar] = value;
      return Status::OK();
    }
    case StmtKind::kBreak:
      // Loops containing break are rejected by the preconditions; the
      // statement itself has no ve-Map effect.
      return Status::OK();
    default:
      return Status::Internal("ApplyStmt: compound statement in basic block");
  }
}

Status DirBuilder::BuildLoop(const cfg::Region& region, Scope scope) {
  EQSQL_ASSIGN_OR_RETURN(DNodePtr iterable,
                         BuildExpr(region.loop_expr(), scope));
  bool query_backed =
      region.is_cursor_loop() && iterable->op() == DOp::kQuery;

  analysis::LoopBodyInfo info;
  if (region.origin() != nullptr) {
    info = analysis::AnalyzeLoopBody(region.origin()->body(),
                                     region.loop_var());
  }

  // Build the loop body in a scope where variables *written* in the body
  // resolve to region inputs (their values at loop entry) while
  // loop-invariant variables keep their enclosing-scope expressions.
  VeMap body_map = *scope.map;
  for (const std::string& w : info.written) body_map.erase(w);
  body_map.erase(kReturnVar);
  scope.cursors->push_back(region.loop_var());
  Status body_status =
      BuildRegion(region.body(), Scope{&body_map, scope.cursors});
  scope.cursors->pop_back();
  EQSQL_RETURN_IF_ERROR(body_status);

  std::vector<std::string> updated(info.written.begin(), info.written.end());
  if (body_map.count(kReturnVar) > 0) updated.push_back(kReturnVar);
  for (const std::string& var : updated) {
    auto body_it = body_map.find(var);
    if (body_it == body_map.end()) continue;
    const DNodePtr& body_expr = body_it->second;
    if (var == region.loop_var()) continue;
    LoopReport report;
    report.loop = region.origin();
    report.var = var;
    report.body_expr = body_expr;
    report.init = LookupVar(var, scope);
    report.query_node = query_backed ? iterable : nullptr;
    report.tuple_var = region.loop_var();
    if (!query_backed) {
      (*scope.map)[var] = ctx_->Opaque(
          "loop does not iterate over a query result");
      report.reason = "not a cursor loop over a query";
      loop_reports_.push_back(std::move(report));
      continue;
    }
    report.query_backed = true;
    report.preconditions = analysis::ExplainFoldPreconditions(info, var);
    if (!report.preconditions.ok) {
      (*scope.map)[var] = ctx_->Opaque(report.preconditions.failure);
      report.reason = report.preconditions.failure;
      loop_reports_.push_back(std::move(report));
      continue;
    }
    DNodePtr fn = ctx_->InputToAccParam(body_expr, var);
    // Resolve loop-invariant references to enclosing-scope values.
    std::map<std::string, DNodePtr> invariants;
    CollectInvariantInputs(fn, var, scope, &invariants);
    if (!invariants.empty()) fn = ctx_->SubstituteInputs(fn, invariants);
    (*scope.map)[var] = ctx_->Fold(fn, report.init, iterable,
                                   region.loop_var());
    report.converted = true;
    loop_reports_.push_back(std::move(report));
  }
  return Status::OK();
}

Result<DNodePtr> DirBuilder::BuildExpr(const ExprPtr& expr, Scope scope) {
  switch (expr->kind()) {
    case ExprKind::kIntLit:
      return ctx_->Const(catalog::Value::Int(expr->int_value()));
    case ExprKind::kDoubleLit:
      return ctx_->Const(catalog::Value::Double(expr->double_value()));
    case ExprKind::kStringLit:
      return ctx_->Const(catalog::Value::String(expr->string_value()));
    case ExprKind::kBoolLit:
      return ctx_->Const(catalog::Value::Bool(expr->bool_value()));
    case ExprKind::kNullLit:
      return ctx_->Const(catalog::Value::Null());
    case ExprKind::kVarRef:
      return LookupVar(expr->name(), scope);
    case ExprKind::kFieldAccess: {
      if (expr->object()->kind() != ExprKind::kVarRef) {
        return ctx_->Opaque("field access on a computed object");
      }
      DNodePtr base = LookupVar(expr->object()->name(), scope);
      if (base->op() == DOp::kTupleRef) {
        return ctx_->TupleAttr(base->name(), expr->name());
      }
      if (base->op() == DOp::kRegionInput) {
        // A row-valued input (e.g. an inlined function's parameter).
        return ctx_->TupleAttr(base->name(), expr->name());
      }
      return ctx_->Opaque("field access on non-tuple value " +
                          expr->object()->name());
    }
    case ExprKind::kUnary: {
      EQSQL_ASSIGN_OR_RETURN(DNodePtr operand, BuildExpr(expr->arg(0), scope));
      return ctx_->Unary(
          expr->un_op() == frontend::UnOp::kNot ? DOp::kNot : DOp::kNeg,
          operand);
    }
    case ExprKind::kBinary: {
      EQSQL_ASSIGN_OR_RETURN(DNodePtr lhs, BuildExpr(expr->arg(0), scope));
      EQSQL_ASSIGN_OR_RETURN(DNodePtr rhs, BuildExpr(expr->arg(1), scope));
      return ctx_->Binary(BinOpToDOp(expr->bin_op()), lhs, rhs);
    }
    case ExprKind::kTernary: {
      EQSQL_ASSIGN_OR_RETURN(DNodePtr cond, BuildExpr(expr->arg(0), scope));
      EQSQL_ASSIGN_OR_RETURN(DNodePtr then_v, BuildExpr(expr->arg(1), scope));
      EQSQL_ASSIGN_OR_RETURN(DNodePtr else_v, BuildExpr(expr->arg(2), scope));
      return ctx_->Cond(cond, then_v, else_v);
    }
    case ExprKind::kCall: {
      const std::string& name = expr->name();
      if (name == "executeQuery") {
        if (expr->args().empty() ||
            expr->arg(0)->kind() != ExprKind::kStringLit) {
          return ctx_->Opaque("executeQuery with non-literal query text");
        }
        auto parsed = sql::ParseSql(expr->arg(0)->string_value());
        if (!parsed.ok()) {
          return ctx_->Opaque("unparsable query: " +
                              parsed.status().message());
        }
        std::vector<DNodePtr> params;
        for (size_t i = 1; i < expr->args().size(); ++i) {
          EQSQL_ASSIGN_OR_RETURN(DNodePtr p, BuildExpr(expr->arg(i), scope));
          params.push_back(std::move(p));
        }
        return ctx_->Query(*parsed, std::move(params));
      }
      if (name == "executeUpdate") {
        return ctx_->Opaque("database update");
      }
      if (name == "max" || name == "min") {
        if (expr->args().size() < 2) {
          return ctx_->Opaque("max/min needs two arguments");
        }
        DOp op = name == "max" ? DOp::kMax : DOp::kMin;
        EQSQL_ASSIGN_OR_RETURN(DNodePtr acc, BuildExpr(expr->arg(0), scope));
        for (size_t i = 1; i < expr->args().size(); ++i) {
          EQSQL_ASSIGN_OR_RETURN(DNodePtr next, BuildExpr(expr->arg(i), scope));
          acc = ctx_->Binary(op, acc, next);
        }
        return acc;
      }
      if (name == "coalesce" && expr->args().size() == 2) {
        EQSQL_ASSIGN_OR_RETURN(DNodePtr a, BuildExpr(expr->arg(0), scope));
        EQSQL_ASSIGN_OR_RETURN(DNodePtr b, BuildExpr(expr->arg(1), scope));
        return ctx_->Binary(DOp::kCoalesce, a, b);
      }
      if (name == "scalar" && expr->args().size() == 1) {
        EQSQL_ASSIGN_OR_RETURN(DNodePtr a, BuildExpr(expr->arg(0), scope));
        return ctx_->Unary(DOp::kScalar, a);
      }
      if (name == "list") return ctx_->EmptyList();
      if (name == "set") return ctx_->EmptySet();
      if (name == "pair" || name == "tuple") {
        std::vector<DNodePtr> elems;
        for (const ExprPtr& a : expr->args()) {
          EQSQL_ASSIGN_OR_RETURN(DNodePtr e, BuildExpr(a, scope));
          elems.push_back(std::move(e));
        }
        return ctx_->Tuple(std::move(elems));
      }
      if (name == "abs" && expr->args().size() == 1) {
        EQSQL_ASSIGN_OR_RETURN(DNodePtr a, BuildExpr(expr->arg(0), scope));
        // abs(x) == ?[x < 0, -x, x]
        return ctx_->Cond(ctx_->Binary(DOp::kLt, a, ctx_->ConstInt(0)),
                          ctx_->Unary(DOp::kNeg, a), a);
      }
      return InlineCall(*expr, scope);
    }
    case ExprKind::kMethodCall: {
      // Value-position collection mutations and unsupported methods.
      if (analysis::IsCollectionMutation(expr->name()) &&
          expr->object()->kind() == ExprKind::kVarRef &&
          expr->args().size() == 1) {
        DNodePtr base = LookupVar(expr->object()->name(), scope);
        EQSQL_ASSIGN_OR_RETURN(DNodePtr elem, BuildExpr(expr->arg(0), scope));
        DOp op = expr->name() == "append" ? DOp::kAppend : DOp::kInsert;
        return ctx_->Binary(op, base, elem);
      }
      return ctx_->Opaque("unsupported method: " + expr->name());
    }
  }
  return Status::Internal("BuildExpr: unknown expression kind");
}

Result<DNodePtr> DirBuilder::InlineCall(const Expr& call, Scope scope) {
  if (program_ == nullptr) {
    return ctx_->Opaque("call to unknown function " + call.name());
  }
  const frontend::Function* fn = program_->Find(call.name());
  if (fn == nullptr) {
    return ctx_->Opaque("call to unknown function " + call.name());
  }
  if (fn->params.size() != call.args().size()) {
    return ctx_->Opaque("arity mismatch calling " + call.name());
  }
  if (inline_depth_ >= kMaxInlineDepth) {
    return ctx_->Opaque("recursion inlining " + call.name());
  }
  ++inline_depth_;
  VeMap callee_map;
  for (size_t i = 0; i < fn->params.size(); ++i) {
    Result<DNodePtr> arg = BuildExpr(call.args()[i], scope);
    if (!arg.ok()) {
      --inline_depth_;
      return arg.status();
    }
    callee_map[fn->params[i]] = std::move(*arg);
  }
  callee_map[kOutputVar] = LookupVar(kOutputVar, scope);
  std::vector<std::string> callee_cursors;
  cfg::RegionPtr root = cfg::BuildRegionTree(fn->body);
  Status status = BuildRegion(root, Scope{&callee_map, &callee_cursors});
  --inline_depth_;
  EQSQL_RETURN_IF_ERROR(status);
  // Propagate the callee's print effects back to the caller.
  auto out_it = callee_map.find(kOutputVar);
  if (out_it != callee_map.end()) {
    (*scope.map)[kOutputVar] = out_it->second;
  }
  auto ret_it = callee_map.find(kReturnVar);
  if (ret_it != callee_map.end()) return ret_it->second;
  return ctx_->Const(catalog::Value::Null());
}

void DirBuilder::CollectInvariantInputs(
    const DNodePtr& node, const std::string& acc_var, Scope scope,
    std::map<std::string, DNodePtr>* out) {
  if (node->op() == DOp::kRegionInput && node->name() != acc_var) {
    auto it = scope.map->find(node->name());
    if (it != scope.map->end() &&
        !(it->second->op() == DOp::kRegionInput &&
          it->second->name() == node->name())) {
      out->emplace(node->name(), it->second);
    }
  }
  for (const DNodePtr& c : node->children()) {
    CollectInvariantInputs(c, acc_var, scope, out);
  }
}

}  // namespace eqsql::dir
