#ifndef EQSQL_OBS_EXPLAIN_H_
#define EQSQL_OBS_EXPLAIN_H_

#include <string>

#include "core/optimizer.h"

namespace eqsql::obs {

/// Renders an EXPLAIN EXTRACTION report for one optimized function: for
/// every cursor loop, which preconditions P1-P3 held or failed (with
/// the offending DDG edge), which transformation rules fired in order,
/// and the cost-heuristic verdict when an extraction was skipped.
///
/// The text form is stable (golden-tested); timings are deliberately
/// omitted so output is byte-deterministic for a fixed program.
///
/// A non-empty `exec_mode` ("row"/"vector") adds an "execution mode"
/// line reporting which engine the serving stack would run the
/// extracted queries on; the default empty string keeps the original
/// byte-identical report for callers without an engine in play.
std::string RenderExplainText(const core::OptimizeResult& result,
                              const std::string& function,
                              const std::string& exec_mode = "");

/// The same report as JSON: {"function":..,["exec_mode":..,]"loops":
/// [{"line":..,"desc":..,"vars":[{"var":..,"extracted":..,
/// "preconditions":{...},"rules":[..],"sql":[..],"reason":..,
/// "cost_skipped":..},..]},..]}. The exec_mode field appears only when
/// the argument is non-empty.
std::string RenderExplainJson(const core::OptimizeResult& result,
                              const std::string& function,
                              const std::string& exec_mode = "");

}  // namespace eqsql::obs

#endif  // EQSQL_OBS_EXPLAIN_H_
