#ifndef EQSQL_FUZZ_CORPUS_H_
#define EQSQL_FUZZ_CORPUS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fuzz/scenario.h"

namespace eqsql::fuzz {

/// Deterministic corpus file name for a case: "case_<fnv1a>.eqf" over
/// the serialized bytes, so the same reproducer never duplicates.
std::string CaseFileName(const FuzzCase& c);

/// Writes the case to `dir` (created if missing) under CaseFileName.
/// Returns the full path written.
Result<std::string> SaveCaseFile(const FuzzCase& c, const std::string& dir);

/// Reads one corpus file.
Result<FuzzCase> LoadCaseFile(const std::string& path);

/// All *.eqf files in `dir`, sorted by name; empty when the directory
/// does not exist.
Result<std::vector<std::string>> ListCorpusFiles(const std::string& dir);

}  // namespace eqsql::fuzz

#endif  // EQSQL_FUZZ_CORPUS_H_
