#ifndef EQSQL_OBS_EXPLAIN_H_
#define EQSQL_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/alternative_selector.h"
#include "core/optimizer.h"
#include "obs/profile.h"

namespace eqsql::obs {

/// Renders an EXPLAIN EXTRACTION report for one optimized function: for
/// every cursor loop, which preconditions P1-P3 held or failed (with
/// the offending DDG edge), which transformation rules fired in order,
/// and the cost-heuristic verdict when an extraction was skipped.
///
/// The text form is stable (golden-tested); timings are deliberately
/// omitted so output is byte-deterministic for a fixed program.
///
/// A non-empty `exec_mode` ("row"/"vector") adds an "execution mode"
/// line reporting which engine the serving stack would run the
/// extracted queries on; the default empty string keeps the original
/// byte-identical report for callers without an engine in play.
std::string RenderExplainText(const core::OptimizeResult& result,
                              const std::string& function,
                              const std::string& exec_mode = "");

/// The same report as JSON: {"function":..,["exec_mode":..,]"loops":
/// [{"line":..,"desc":..,"vars":[{"var":..,"extracted":..,
/// "preconditions":{...},"rules":[..],"sql":[..],"reason":..,
/// "cost_skipped":..},..]},..]}. The exec_mode field appears only when
/// the argument is non-empty.
std::string RenderExplainJson(const core::OptimizeResult& result,
                              const std::string& function,
                              const std::string& exec_mode = "");

/// Full selection report: the extraction report above followed by an
/// "alternatives:" section listing every priced strategy — estimated
/// cost, the chosen marker, and skip reasons for infeasible ones — plus
/// the chosen strategy. Byte-deterministic for fixed inputs (the stats
/// epoch is a cache token, not a timing, and appears only in the JSON
/// form).
std::string RenderExplainText(const core::ExtractionPlan& plan,
                              const std::string& function,
                              const std::string& exec_mode = "");

/// {"plan":<extraction json>,"alternatives":[{"kind":..,"feasible":..,
/// "est_cost_ms":..,"chosen":..,"detail":..,"skip_reason":..},..],
/// "chosen":..,"stats_epoch":"<hex>"}.
std::string RenderExplainJson(const core::ExtractionPlan& plan,
                              const std::string& function,
                              const std::string& exec_mode = "");

/// EXPLAIN ANALYZE rendering: header (execution mode + returned rows)
/// followed by the operator-profile tree. The JSON form wraps
/// Profile::ToJson with the same header fields.
std::string RenderAnalyzeText(const Profile& profile,
                              const std::string& exec_mode, int64_t rows);
std::string RenderAnalyzeJson(const Profile& profile,
                              const std::string& exec_mode, int64_t rows);

/// SHOW PROFILES / SHOW TRACES over the trace ring, as an explain-style
/// payload: one stanza per sampled request. The profiles form carries
/// each record's operator tree, the traces form its span tree.
std::string RenderProfilesText(const std::vector<TraceRecord>& records);
std::string RenderProfilesJson(const std::vector<TraceRecord>& records);
std::string RenderTracesText(const std::vector<TraceRecord>& records);
std::string RenderTracesJson(const std::vector<TraceRecord>& records);

}  // namespace eqsql::obs

#endif  // EQSQL_OBS_EXPLAIN_H_
