#ifndef EQSQL_STORAGE_TABLE_H_
#define EQSQL_STORAGE_TABLE_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "storage/mvcc.h"

namespace eqsql::storage {

class SecondaryIndex;
class Transaction;
class TxnManager;

/// Snapshot-exact scan statistics: how many rows a full scan at this
/// snapshot would produce and their total wire size. Computed without
/// copying any row, so the index-scan operators can charge exactly the
/// cost a full scan would have charged (the engines' cost-parity
/// contract) while skipping the materialization work.
struct TableScanStats {
  size_t rows = 0;
  size_t bytes = 0;
};

/// One logical row: a table-wide insertion sequence number plus a
/// newest-first chain of versions. The chain head is atomic so readers
/// resolve their visible version without any lock; writers install new
/// versions under the owning shard's write mutex. A slot whose chain
/// has no live version is a tombstone until GC removes it; readers that
/// pinned the slot (shared_ptr) before removal keep traversing safely.
struct TableSlot {
  size_t seq = 0;
  std::atomic<Version*> head{nullptr};

  TableSlot() = default;
  explicit TableSlot(size_t s) : seq(s) {}
  TableSlot(const TableSlot&) = delete;
  TableSlot& operator=(const TableSlot&) = delete;
  ~TableSlot();  // frees the remaining chain

  /// The single version of this row visible to `snap`, or nullptr.
  const Version* VisibleVersion(const Snapshot& snap) const;
  /// Convenience: the visible version's row, or nullptr.
  const catalog::Row* VisibleRow(const Snapshot& snap) const;
};

/// An in-memory multi-version heap table, hash-partitioned across N
/// shards. Each logical row is a TableSlot holding a chain of versions
/// stamped with begin/end commit timestamps; a scan materializes the
/// versions visible to a snapshot and orders them by insertion
/// sequence, so the observable row order is insertion order regardless
/// of the shard count (the paper's π operator preserves input order,
/// and tests/shard_invariance_test.cc proves results identical at 1, 2
/// and 8 shards). Sequence numbers are sparse once DELETE exists: order
/// comparisons are by seq value, never by seq-as-index.
///
/// Placement: when a unique key is declared, a row lives in the shard
/// its key value hashes to (uniqueness checkable per shard, point
/// lookup touches one shard); otherwise rows are placed round-robin by
/// sequence number.
///
/// Concurrency discipline (readers never block writers, writers never
/// block readers):
///  * Readers take no long-lived locks. PinShard copies a shard's slot
///    pointers under a brief shared structural lock, then visibility
///    resolution walks version chains lock-free via atomics. A reader's
///    consistency comes from its pinned Snapshot, not from excluding
///    writers.
///  * Writers serialize per shard on the shard's write mutex
///    (write_mu), held for the statement's validate+install on that
///    shard. Slot-vector/index mutations additionally take the shard's
///    structural lock (struct_mu) exclusively for the few instructions
///    that publish a new slot.
///  * The topology lock guards the shards_ vector itself: shared on
///    every access path, exclusive while SetShardCount /
///    DeclareUniqueKey rebuild it. Lock order within a shard is
///    write_mu, then struct_mu; shards are taken in ascending order;
///    topology before any shard lock.
///  * Version garbage collection (Vacuum) runs under the shard write
///    locks and unlinks only versions dead to the TxnManager watermark;
///    unlinked versions park on the manager's retire list until no
///    pinned reader can still be traversing them.
class Table : public std::enable_shared_from_this<Table> {
 public:
  using Slot = TableSlot;

  Table(std::string name, catalog::Schema schema, size_t shard_count = 1,
        TxnManager* txns = nullptr)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        shards_(std::max<size_t>(1, shard_count)),
        txns_(txns) {
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  const std::string& name() const { return name_; }
  const catalog::Schema& schema() const { return schema_; }
  size_t shard_count() const { return shards_.size(); }
  /// Committed live rows (approximate under concurrent commits; exact
  /// when quiescent). Snapshot-exact counts come from rows(snap).size().
  size_t row_count() const { return size_.load(std::memory_order_acquire); }

  /// Rows visible to `snap`, in insertion-sequence order.
  std::vector<catalog::Row> rows(const Snapshot& snap) const;
  /// Every committed live row (Snapshot::Latest()).
  std::vector<catalog::Row> rows() const { return rows(Snapshot::Latest()); }

  /// Setup/bulk append: installs a committed version stamped at the
  /// current clock in one step. Not snapshot-consistent under
  /// concurrency (a mid-bulk reader sees a prefix) — transactional
  /// writers must use InsertTxn. Errors on arity mismatch or duplicate
  /// key.
  Status Insert(catalog::Row row);

  /// Transactional insert: installs a version pending under `txn`,
  /// invisible to others until commit. Duplicate-key checks run against
  /// txn's snapshot plus its own writes; a row inserted or deleted by
  /// an uncommitted peer raises kTxnConflict (first-writer-wins).
  Status InsertTxn(Transaction* txn, catalog::Row row);

  /// Transactional UPDATE/DELETE over the rows visible to `txn`,
  /// shard by shard in ascending order. For each visible row where
  /// `pred` returns true: with `mutate` null the row is deleted
  /// (tombstone: the visible version's end becomes pending); otherwise
  /// `mutate` produces the replacement row installed as a new pending
  /// version in the same slot. A concurrent writer on any matched row
  /// raises kTxnConflict (first-writer-wins); evaluation errors abort
  /// the statement mid-way (statement-level, like the paper's MyISAM
  /// evaluation default) with prior writes staying in the txn's write
  /// set. Returns the number of rows written.
  Result<size_t> MutateRows(
      Transaction* txn,
      const std::function<Result<bool>(const catalog::Row&)>& pred,
      const std::function<Result<catalog::Row>(const catalog::Row&)>& mutate);

  /// Declares column `column` as a unique key, re-partitions rows by
  /// key hash, and builds per-shard indexes. Errors if live data
  /// violates uniqueness. Rule T4.1/T5.2 require the outer query's
  /// relation to have a key (paper Sec. 5.1).
  Status DeclareUniqueKey(const std::string& column);

  std::optional<std::string> unique_key() const { return unique_key_; }

  /// Point lookup via the unique-key index; returns the live row's
  /// insertion sequence (an ordering token — seqs are sparse, not
  /// positions) or nullopt. Takes the shard's structural lock briefly.
  std::optional<size_t> LookupByKey(const catalog::Value& key) const;

  /// Point lookup for the row visible to `snap` (or every committed row
  /// with the one-argument form); nullopt if absent / no key declared.
  std::optional<catalog::Row> GetByKey(const catalog::Value& key) const {
    return GetByKey(key, Snapshot::Latest());
  }
  std::optional<catalog::Row> GetByKey(const catalog::Value& key,
                                       const Snapshot& snap) const;

  void Clear();

  /// Re-partitions existing rows across `n` shards (shard-count change
  /// at runtime, e.g. rebalancing a long-lived temp table). Slots move
  /// wholesale — chains, pending versions and all; in-flight
  /// transactions keep their slot references.
  Status SetShardCount(size_t n);

  /// The shard a row with key value `key` lives in (key-hash placement).
  size_t ShardOfKey(const catalog::Value& key) const;

  /// Applies `fn` to every committed live row in place, shard by shard
  /// in ascending order under the shard write locks. Setup-only: rows
  /// mutate in place (no new versions), so it must not run concurrently
  /// with snapshot readers. `fn` must preserve arity and must not
  /// change the unique-key column. An error aborts the walk; prior
  /// shards stay applied.
  Status ForEachRowExclusive(
      const std::function<Status(catalog::Row* row)>& fn);

  /// Copies shard `i`'s slot pointers (brief shared structural lock).
  /// Callers resolve visibility per slot against their snapshot; the
  /// shared_ptrs keep slots safe across concurrent GC removal.
  std::vector<std::shared_ptr<const Slot>> PinShard(size_t i) const;

  /// Timestamp of the last committed write to this table (0 if none).
  /// Commit validation compares it against a txn's snapshot.
  Ts last_commit_ts() const {
    return last_commit_ts_.load(std::memory_order_acquire);
  }

  /// Called by TxnManager under the commit lock after stamping this
  /// table's versions: publishes the commit timestamp and adjusts the
  /// committed row count.
  void NoteCommit(Ts commit_ts, int64_t size_delta);

  /// Unlinks versions dead at `watermark` (aborted, or superseded with
  /// a committed end <= watermark), removes fully dead slots and their
  /// index entries, and parks unlinked versions on `txns`'s retire
  /// list. Never touches a version with a pending stamp.
  void Vacuum(Ts watermark, TxnManager* txns);

  TxnManager* txn_manager() const { return txns_; }
  void set_txn_manager(TxnManager* txns) { txns_ = txns; }

  /// Runs a batch of independent build tasks; Table::CreateIndex hands
  /// one task per shard to it. Injected by the caller (net::Connection
  /// wraps the server's exec::WorkerPool) so storage does not depend on
  /// exec; null runs the backfill serially on the calling thread.
  using IndexTaskRunner =
      std::function<void(std::vector<std::function<void()>>)>;

  /// Creates and backfills a secondary hash index over `columns`
  /// (CREATE INDEX name ON table (col, ...)). The index registers
  /// before the backfill starts — concurrent writers maintain it from
  /// that moment, and AddEntry's idempotence makes the overlap safe —
  /// then backfills one task per shard through `runner` and publishes
  /// atomically (SecondaryIndex::MarkReady), so probes never see a
  /// half-built index. Errors on a duplicate index name or an unknown
  /// column; on error nothing is registered.
  Status CreateIndex(const std::string& name,
                     const std::vector<std::string>& columns,
                     const IndexTaskRunner& runner = nullptr);

  /// The first ready index whose column list is exactly `columns`
  /// (order-sensitive, table-schema spelling), or nullptr. The returned
  /// pointer stays valid for the table's lifetime (indexes are never
  /// dropped, matching the paper's evaluation schemas).
  std::shared_ptr<const SecondaryIndex> FindIndex(
      const std::vector<std::string>& columns) const;

  /// A ready index covering exactly the column *set* `columns` in any
  /// order, or nullptr (the join planner matches unordered conjunct
  /// sets against index definitions).
  std::shared_ptr<const SecondaryIndex> FindIndexForColumnSet(
      const std::vector<std::string>& columns) const;

  /// Ready-index column lists, for planner statistics (CostEstimator's
  /// TableStats::table_indexes) and EXPLAIN.
  std::vector<std::vector<std::string>> IndexedColumnLists() const;

  /// Number of registered indexes (ready or building).
  size_t index_count() const {
    return index_count_.load(std::memory_order_acquire);
  }

  /// Snapshot-exact full-scan statistics (rows + wire bytes visible to
  /// `snap`), charged by the index-scan operators for cost parity.
  /// Memoized per (snapshot, mutation epoch): repeated probes of an
  /// unchanged table pay O(1) here instead of re-walking every slot.
  TableScanStats VisibleStats(const Snapshot& snap) const;

  /// Monotone mutation counter, bumped by every operation that can
  /// change some snapshot's visible row set. Database::StatsEpoch folds
  /// these into the fingerprint that validates cached extraction plans.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

 private:
  struct Shard {
    /// Serializes writers (and GC) on this shard; held for a
    /// statement's validate+install. Acquired before struct_mu.
    std::mutex write_mu;
    /// Guards the slots vector and index containers themselves (not
    /// version chains): shared for the brief pointer copy readers do,
    /// exclusive while a writer publishes or GC removes a slot.
    mutable std::shared_mutex struct_mu;
    std::vector<std::shared_ptr<Slot>> slots;
    /// key value -> slot (only when a unique key is declared; keys
    /// hash-place into exactly one shard). A key maps to one slot for
    /// its whole life: delete + reinsert stack versions in that slot.
    std::unordered_map<catalog::Value, std::shared_ptr<Slot>,
                       catalog::ValueHash>
        index;
  };

  /// First version in `slot`'s chain that is not aborted (the newest
  /// write that may matter), or nullptr.
  static Version* NewestMeaningful(const Slot& slot);

  /// First-writer-wins check for writing over `slot` under its write
  /// lock: OK when the newest meaningful version is dead to everyone or
  /// is `expected` (the version the writer resolved against its
  /// snapshot); kTxnConflict when an uncommitted peer owns it or it was
  /// committed after the snapshot.
  Status CheckWritable(const Slot& slot, const Version* expected,
                       const Transaction& txn) const;

  /// Installs `row` as a version stamped `begin` in a fresh slot with
  /// sequence `seq`, appended to `shard` (index entry added when `key`
  /// is non-null). Caller holds the shard's write_mu.
  std::shared_ptr<Slot> InstallNewSlot(Shard* shard, catalog::Row row, Ts begin,
                                       const catalog::Value* key, size_t seq);

  /// Re-places every row under the exclusive topology lock. Validates
  /// placement (including uniqueness over live versions) before moving
  /// any slot, so a failure leaves the table untouched. `new_count` of
  /// 0 keeps the current shard count (used by DeclareUniqueKey).
  Status Repartition(size_t new_count, const std::string* new_key);

  /// Notes a freshly installed version with `row` in `slot` to every
  /// registered secondary index. Called at each version-install site
  /// while the shard's write_mu is held; index locks (index_mu_ shared,
  /// then a bucket lock) are leaves below it. DELETE (an end-stamp
  /// flip), commit and rollback install no version and need no note —
  /// lookup-time revalidation handles them.
  void NoteVersionForIndexes(const catalog::Row& row,
                             const std::shared_ptr<Slot>& slot);

  std::string name_;
  catalog::Schema schema_;
  /// Guards the shards_ vector itself (not row data): shared by every
  /// path that dereferences shards_, exclusive while Repartition
  /// rebuilds it and frees the old Shard objects. Acquired before any
  /// shard lock.
  mutable std::shared_mutex topology_mu_;
  /// unique_ptr keeps Shard addresses (and their mutexes) stable if the
  /// vector itself is rebuilt by SetShardCount.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::optional<std::string> unique_key_;
  size_t key_index_col_ = 0;
  /// Next insertion sequence number. Sparse: DELETE leaves holes and
  /// aborted inserts burn numbers; seq is an ordering token only.
  std::atomic<size_t> next_seq_{0};
  std::atomic<size_t> size_{0};
  std::atomic<Ts> last_commit_ts_{0};
  TxnManager* txns_ = nullptr;
  /// Guards indexes_ itself (a leaf lock, taken after any shard
  /// write_mu but never together with struct_mu). index_count_ mirrors
  /// indexes_.size() so the no-index fast path skips the lock.
  mutable std::shared_mutex index_mu_;
  std::vector<std::shared_ptr<SecondaryIndex>> indexes_;
  std::atomic<size_t> index_count_{0};

  /// Invalidates the VisibleStats memo. Called by every path that can
  /// change some live snapshot's visible row set: version installs
  /// (Insert/InsertTxn/MutateRows), commit stamping (NoteCommit),
  /// topology rebuilds, Clear, and Vacuum. Rollback is deliberately
  /// exempt — aborting pending stamps only changes visibility for the
  /// dead owner's snapshot, which is never read again.
  void BumpStatsEpoch() {
    stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// One-entry memo for VisibleStats: valid while the table's mutation
  /// epoch and the probing snapshot both match. Autocommit readers pin
  /// Snapshot{clock, 0}, so between commits every probe shares one key.
  std::atomic<uint64_t> stats_epoch_{0};
  mutable std::mutex stats_cache_mu_;
  mutable bool stats_cache_valid_ = false;
  mutable uint64_t stats_cache_epoch_ = 0;
  mutable Snapshot stats_cache_snap_{};
  mutable TableScanStats stats_cache_{};
};

/// Batch-producing MVCC scan over one shard: pins the shard's slots
/// once, then materializes the versions visible to `snap` a chunk at a
/// time (the vectorized engine's scan source; exec/batch.h sizes the
/// chunks). Rows are copied out of their version chains — Vacuum may
/// retire superseded versions while the cursor is live, so borrowed
/// pointers would be unsafe past the pin. Visibility is resolved at
/// chunk granularity against the cursor's fixed snapshot, which makes
/// every chunk of one cursor mutually consistent: the pinned slot list
/// plus per-version begin/end stamps mean a row committed, deleted, or
/// tombstoned after the pin never flickers in or out between chunks.
class ShardScanCursor {
 public:
  ShardScanCursor(const Table& table, size_t shard, Snapshot snap)
      : slots_(table.PinShard(shard)), snap_(snap) {}

  /// Appends up to `max_rows` visible rows (with their insertion seqs,
  /// accumulating wire size into *wire_bytes) and returns how many were
  /// produced; 0 means the shard is exhausted. Output order is slot
  /// order, NOT seq order — callers merge-sort by seq across shards,
  /// exactly like the row engine's parallel scan.
  size_t Next(size_t max_rows, std::vector<size_t>* seqs,
              std::vector<catalog::Row>* rows, size_t* wire_bytes);

 private:
  std::vector<std::shared_ptr<const TableSlot>> slots_;
  Snapshot snap_;
  size_t pos_ = 0;  // next slot to visit
};

}  // namespace eqsql::storage

#endif  // EQSQL_STORAGE_TABLE_H_
