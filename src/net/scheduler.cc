#include "net/scheduler.h"

#include <string>
#include <utility>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/strings.h"
#include "core/cost_estimator.h"
#include "net/server.h"
#include "obs/explain.h"
#include "storage/table.h"

namespace eqsql::net {

namespace {

constexpr size_t kDefaultWorkers = 2;

int64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
      .count();
}

size_t PriorityClass(Priority p) {
  size_t cls = static_cast<size_t>(p);
  return cls < 3 ? cls : 2;
}

/// Annotates extracted variables with the physical join-plan choice:
/// each extracted SQL statement is parsed through the shared plan
/// cache and priced by the cost estimator against live table and
/// index statistics. A no-op (and no plan parses) while the database
/// has no secondary indexes, so EXPLAIN output is unchanged until
/// someone runs CREATE INDEX.
void AnnotateJoinPlans(Server* server, core::OptimizeResult* result) {
  core::TableStats stats;
  storage::Database* db = server->db();
  bool any_index = false;
  for (const std::string& name : db->TableNames()) {
    Result<storage::Table*> table = db->GetTable(name);
    if (!table.ok()) continue;
    const std::string key = AsciiToLower(name);
    const storage::TableScanStats vs =
        (*table)->VisibleStats(storage::Snapshot::Latest());
    stats.table_rows[key] = static_cast<int64_t>(vs.rows);
    if (vs.rows > 0) {
      stats.row_bytes[key] = static_cast<int64_t>(vs.bytes / vs.rows);
    }
    std::vector<std::vector<std::string>> lists =
        (*table)->IndexedColumnLists();
    if (!lists.empty()) {
      stats.table_indexes[key] = std::move(lists);
      any_index = true;
    }
  }
  if (!any_index) return;
  const core::CostEstimator estimator(std::move(stats),
                                      server->options().cost_model);
  for (core::VarOutcome& o : result->outcomes) {
    if (!o.extracted) continue;
    for (const std::string& sql : o.sql) {
      Result<ra::RaNodePtr> plan = server->plan_cache()->GetOrParseSql(sql);
      if (!plan.ok()) continue;
      core::JoinPlanChoice choice = estimator.ChooseJoinPlan(*plan);
      if (!choice.applicable) continue;
      o.join_plan = (choice.index_wins ? "index-nested-loop on "
                                       : "hash-join over ") +
                    choice.detail;
      o.cost_index_ms = choice.index_ms;
      o.cost_scan_ms = choice.scan_ms;
      break;
    }
  }
}

}  // namespace

Scheduler::Scheduler(Server* server, SchedulerOptions options)
    : server_(server), options_(options) {
  if (options_.workers == 0) options_.workers = kDefaultWorkers;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;

  obs::MetricsRegistry* metrics = server_->metrics();
  m_depth_ = metrics->counter("net.scheduler.queue_depth");
  m_submitted_ = metrics->counter("net.scheduler.submitted");
  m_rejected_ = metrics->counter("net.scheduler.rejected");
  m_deadline_ = metrics->counter("net.scheduler.deadline_expired");
  m_dispatched_ = metrics->counter("net.scheduler.dispatched");
  m_queue_wait_ns_ = metrics->histogram("net.scheduler.queue_wait_ns");

  // One connection per worker: created here on the constructing thread,
  // then latched by its worker thread on first use (Connection latches
  // its owner on the first stats-mutating call, and these are unused
  // until then).
  conns_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    auto conn = std::make_unique<Connection>(server_->db(),
                                             server_->options().cost_model);
    conn->set_worker_pool(server_->worker_pool());
    conn->set_parallel_threshold(server_->options().parallel_threshold);
    conn->set_exec_mode(server_->options().exec_mode);
    conn->set_metrics(metrics);
    conns_.push_back(std::move(conn));
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::FailEntry(Entry& e, Status status) {
  if (e.enqueue_span >= 0 && e.ctx.trace != nullptr) {
    e.ctx.trace->EndSpan(e.enqueue_span);
  }
  e.promise.set_value(Outcome::FromError(std::move(status)));
}

std::future<Outcome> Scheduler::Submit(Request req) {
  const auto now = std::chrono::steady_clock::now();
  Entry e;
  e.req = std::move(req);
  e.enqueued = now;
  e.deadline = e.req.timeout_ms > 0
                   ? now + std::chrono::milliseconds(e.req.timeout_ms)
                   : std::chrono::steady_clock::time_point::max();
  // Capture the submitter's trace position before admission so the
  // queue wait shows up as a "scheduler.enqueue" span in its tree.
  e.ctx = obs::CurrentSpanContext();
  if (e.ctx.trace != nullptr) {
    e.enqueue_span = e.ctx.trace->BeginSpan("scheduler.enqueue", e.ctx.span);
  }
  std::future<Outcome> fut = e.promise.get_future();

  const size_t cls = PriorityClass(e.req.priority);
  bool shutting_down = false;
  bool full = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      shutting_down = true;
    } else if (queued_ >= options_.queue_capacity) {
      full = true;
    } else {
      queues_[cls].push_back(std::move(e));
      ++queued_;
    }
  }
  if (shutting_down) {
    FailEntry(e, Status::ShuttingDown("server is shutting down"));
    return fut;
  }
  if (full) {
    // Backpressure: reject inline, never block the producer.
    m_rejected_->Increment();
    FailEntry(e, Status::Overloaded("scheduler queue is full (capacity " +
                                    std::to_string(options_.queue_capacity) +
                                    "); retry with backoff"));
    return fut;
  }
  m_submitted_->Increment();
  m_depth_->Add(1);
  cv_.notify_one();
  return fut;
}

void Scheduler::WorkerLoop(size_t worker_index) {
  Connection* conn = conns_[worker_index].get();
  for (;;) {
    Entry e;
    DispatchHook hook;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || queued_ > 0; });
      // Stop wins over remaining work: Shutdown() flushes the queue
      // with kShuttingDown itself, so workers must not race it for
      // entries once draining begins.
      if (stop_) return;
      for (auto& q : queues_) {
        if (!q.empty()) {
          e = std::move(q.front());
          q.pop_front();
          break;
        }
      }
      --queued_;
      hook = dispatch_hook_;
    }
    m_depth_->Add(-1);
    m_dispatched_->Increment();
    const auto now = std::chrono::steady_clock::now();
    m_queue_wait_ns_->Record(ElapsedNs(e.enqueued, now));
    if (e.enqueue_span >= 0 && e.ctx.trace != nullptr) {
      e.ctx.trace->EndSpan(e.enqueue_span);
    }
    // Admission deadline: fail cleanly before touching any data. A
    // request that makes it past this line runs to completion even if
    // its deadline passes mid-execution.
    if (now >= e.deadline) {
      m_deadline_->Increment();
      e.promise.set_value(Outcome::FromError(Status::DeadlineExceeded(
          "deadline expired after " +
          std::to_string(e.req.timeout_ms) + "ms in queue")));
      continue;
    }
    if (hook) hook(e.req);
    Outcome out;
    {
      obs::ScopedContext restore(e.ctx);
      obs::ScopedSpan span("scheduler.dispatch");
      if (span.active()) {
        span.Attr("worker", std::to_string(worker_index));
      }
      out = ExecuteRequest(conn, e.req);
    }
    e.promise.set_value(std::move(out));
  }
}

Outcome Scheduler::ExecuteRequest(Connection* conn, const Request& req) {
  using Kind = Request::Kind;
  Kind kind = req.kind;
  if ((kind == Kind::kStatement || kind == Kind::kQuery) &&
      IsShowMetricsStatement(req.sql)) {
    return ShowMetricsOutcome();
  }
  kind = ClassifyStatement(kind, req.sql);
  switch (kind) {
    case Kind::kQuery: {
      // Resolve the plan through the shared cache: repeated statement
      // texts skip the SQL parser entirely, across all sessions.
      Result<ra::RaNodePtr> plan =
          server_->plan_cache()->GetOrParseSql(req.sql);
      if (!plan.ok()) return Outcome::FromError(plan.status());
      // Thread the session's transaction context through so a SELECT
      // inside an open transaction reads at the transaction snapshot.
      return conn->PerformPlanned(*plan, req.params, req.txn.get());
    }
    case Kind::kDml:
    case Kind::kSimulateDml:
    case Kind::kBegin:
    case Kind::kCommit:
    case Kind::kRollback:
    case Kind::kCreateIndex: {
      Request forced = req;
      forced.kind = kind;
      return conn->Perform(std::move(forced));
    }
    case Kind::kExplainExtraction: {
      Result<std::shared_ptr<const core::OptimizeResult>> result =
          server_->plan_cache()->GetOrOptimize(req.sql, req.function,
                                               server_->options().optimize);
      if (!result.ok()) return Outcome::FromError(result.status());
      // Annotate a copy: the cached result is shared and immutable,
      // and the plan choice depends on current index/table stats.
      core::OptimizeResult annotated = **result;
      AnnotateJoinPlans(server_, &annotated);
      return Outcome::FromExplain(obs::RenderExplainText(
          annotated, req.function,
          exec::ExecModeName(server_->options().exec_mode)));
    }
    case Kind::kStatement:
      break;  // classified above; unreachable
  }
  return Outcome::FromError(Status::Internal("unhandled request kind"));
}

Outcome Scheduler::ShowMetricsOutcome() const {
  // Counters plus derived histogram rows (<name>.count/.p50/.p99/.max):
  // the scheduler's queue-wait distribution is part of the admission
  // story, so it is queryable, not just in the JSON snapshot. Counter
  // values are deterministic for a fixed workload; the histogram rows
  // carry wall timing and are excluded from invariance comparisons.
  obs::MetricsSnapshot snap = server_->metrics()->Snapshot();
  exec::ResultSet rs;
  rs.schema = catalog::Schema({{"metric", catalog::DataType::kString},
                               {"value", catalog::DataType::kInt64}});
  rs.rows.reserve(snap.counters.size() + 4 * snap.histograms.size());
  for (const auto& [name, value] : snap.counters) {
    rs.rows.push_back(
        {catalog::Value::String(name), catalog::Value::Int(value)});
  }
  for (const auto& [name, h] : snap.histograms) {
    rs.rows.push_back({catalog::Value::String(name + ".count"),
                       catalog::Value::Int(h.count)});
    rs.rows.push_back({catalog::Value::String(name + ".p50"),
                       catalog::Value::Int(h.ValueAtQuantile(0.5))});
    rs.rows.push_back({catalog::Value::String(name + ".p99"),
                       catalog::Value::Int(h.ValueAtQuantile(0.99))});
    rs.rows.push_back(
        {catalog::Value::String(name + ".max"), catalog::Value::Int(h.max)});
  }
  return Outcome::FromResultSet(std::move(rs));
}

void Scheduler::Shutdown() {
  std::vector<Entry> flushed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& q : queues_) {
      for (Entry& e : q) flushed.push_back(std::move(e));
      q.clear();
    }
    queued_ = 0;
  }
  cv_.notify_all();
  for (Entry& e : flushed) {
    m_depth_->Add(-1);
    FailEntry(e, Status::ShuttingDown(
                     "server shut down before the request was dispatched"));
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

bool Scheduler::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

int64_t Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queued_);
}

std::vector<ConnectionStats> Scheduler::WorkerStats() const {
  std::vector<ConnectionStats> out;
  out.reserve(conns_.size());
  for (const auto& conn : conns_) out.push_back(conn->ApproxStats());
  return out;
}

void Scheduler::set_dispatch_hook(DispatchHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  dispatch_hook_ = std::move(hook);
}

}  // namespace eqsql::net
