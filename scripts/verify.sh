#!/usr/bin/env bash
# Tier-1 verification: clean build + full test suite, the bounded
# differential-fuzz sweep again under ASan+UBSan, and the concurrency
# stress suite + a bounded fuzz sweep under TSan. Usage: scripts/verify.sh
# (run from anywhere; builds land in build/, build-asan/, build-tsan/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== tier 1: deterministic fuzz sweep (500 scenarios) =="
./build/src/fuzz/fuzz_eqsql --seed 1 --iters 500 --corpus tests/fuzz_corpus

echo "== sanitizers: ASan+UBSan bounded fuzz tests =="
cmake --preset asan >/dev/null
cmake --build build-asan -j"$(nproc)" --target fuzz_test fuzz_eqsql \
  sql_roundtrip_test null_semantics_test
ctest --test-dir build-asan --output-on-failure -j"$(nproc)" \
  -R 'Fuzz|SqlRoundTrip|NullSemantics'
./build-asan/src/fuzz/fuzz_eqsql --seed 99 --iters 100 \
  --corpus tests/fuzz_corpus

echo "== sanitizers: TSan concurrency stress + shard suites + fuzz sweeps =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$(nproc)" --target concurrency_test fuzz_eqsql \
  shard_test mvcc_test shard_invariance_test scheduler_test net_test \
  vector_exec_test index_test explain_analyze_test obs_test selection_test
# Scheduler here covers the 8-producer bounded-queue storm
# (SchedulerTest.QueueFullRejectsOverloadedWithoutBlocking) under the
# race detector: producers race workers on the admission queue. Mvcc
# covers the version-chain suite, including the concurrent
# readers-vs-committing-writer scan test.
ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R 'PlanCache|ConnectionOwnership|ServerStress|Shard|Mvcc|ReadGuard|Database|Scheduler|ServerLiveStats|VectorExec|Index|ExplainAnalyze|TraceRing|SlowQueryLog|Selection'
./build-tsan/src/fuzz/fuzz_eqsql --seed 7 --iters 50 \
  --corpus tests/fuzz_corpus
# The same sweep on 8-way partitioned tables with the parallel
# operators forced through the worker pool: shard-count invariance
# under the race detector.
./build-tsan/src/fuzz/fuzz_eqsql --seed 7 --iters 50 --shards 8 \
  --corpus tests/fuzz_corpus
# The vectorized engine across 8-way shards: batch-producing MVCC
# cursors + compiled-expression shard tasks racing writers, with the
# row engine as the in-run differential oracle.
./build-tsan/src/fuzz/fuzz_eqsql --seed 13 --iters 50 --exec-mode vector \
  --shards 8 --corpus tests/fuzz_corpus
# Every case through the scheduler-backed execution path (Session ->
# admission queue -> worker) instead of direct connections.
./build-tsan/src/fuzz/fuzz_eqsql --seed 7 --iters 50 --async-every 1
# Transaction schedules only, 8-way sharded, every statement routed
# through a scheduler worker: BEGIN/COMMIT/ROLLBACK hand a live MVCC
# transaction context between threads under the race detector.
./build-tsan/src/fuzz/fuzz_eqsql --seed 11 --iters 50 --family txn \
  --shards 8 --async-every 1
# Index schedules: CREATE INDEX backfills race DML on scheduler
# workers across 8 shards, with the indexed-vs-unindexed oracle
# checking every answer under the race detector.
./build-tsan/src/fuzz/fuzz_eqsql --seed 17 --iters 50 --family index \
  --shards 8 --async-every 1
# Every scheduled request traced (--trace-sample 1): the span/profile
# capture path races scheduler workers, shard fan-out tasks, and the
# trace-ring stripes under the race detector. The corpus includes the
# EXPLAIN ANALYZE reproducers, so the profile-swap path runs too.
./build-tsan/src/fuzz/fuzz_eqsql --seed 23 --iters 50 --trace-sample 1 \
  --shards 8 --async-every 1 --corpus tests/fuzz_corpus
# Batch-family programs through the three-way differential (original vs
# rewrite vs the parameter-table batching arm): temp-table DDL and the
# demultiplexing joins race scheduler workers across 2 shards under the
# race detector.
./build-tsan/src/fuzz/fuzz_eqsql --seed 29 --iters 50 --family batch \
  --shards 2 --async-every 4 --corpus tests/fuzz_corpus

echo "== api surface: the deprecated net entry points are gone =="
# The legacy ExecuteSql/ExecuteQuery/ExecuteDml overloads (issue-5
# shims) were retired: the symbols must not be called anywhere — every
# caller goes through Perform/Submit/Execute. Member-call syntax only,
# so test names like EmitsExecuteQueryAssignment do not trip it.
if grep -rEn '(->|\.)Execute(Sql|Query|Dml)\(' src tests bench examples \
    --include='*.cc' --include='*.h' --include='*.cpp'; then
  echo "verify.sh: retired net entry point (ExecuteSql/ExecuteQuery/ExecuteDml) referenced"
  exit 1
fi

echo "== api surface: shard locks stay inside the storage layer =="
# MVCC made readers lock-free: nothing outside src/storage may acquire
# (or even name) a shard's write_mu / struct_mu. Callers coordinate
# through snapshots, transactions, and the Table API only.
if grep -rEn '\b(write_mu|struct_mu)\b' src tests bench examples \
    --include='*.cc' --include='*.h' --include='*.cpp' \
    | grep -vE '^src/storage/'; then
  echo "verify.sh: direct shard-lock acquisition outside src/storage"
  exit 1
fi
# The secondary-index module lives in src/storage but must still stay
# off the shard internals: entries hold slot pointers, never shard
# positions, which is what makes indexes survive Repartition untouched.
# Naming a shard lock or the shards_ vector from index code would break
# that layering silently.
if grep -En '\b(write_mu|struct_mu|shards_)\b' src/storage/index.h \
    src/storage/index.cc; then
  echo "verify.sh: secondary index reaches into shard internals"
  exit 1
fi

echo "== api surface: batch kernels never re-enter the row evaluator =="
# The vectorized kernels must stay columnar: compiled expressions and
# scalar_ops free functions only. A call back into the row engine's
# EvalRow/EvalScalar from src/exec/batch* would silently turn the
# batch path into row-at-a-time execution with extra dispatch.
if grep -rEn '\bEval(Row|Scalar)\(' src/exec/batch*; then
  echo "verify.sh: row-engine evaluator called from the batch kernels"
  exit 1
fi

echo "== observability: bench JSON artifacts + metrics smoke check =="
cmake --build build -j"$(nproc)" --target bench_concurrency \
  bench_fig8_selection bench_exec_micro bench_fig9_join
./build/bench/bench_concurrency --json BENCH_concurrency.json \
  --slow-log slow_query.log --profile-dump profile_ring.json
./build/bench/bench_fig8_selection --json BENCH_fig8.json
# Join + indexed phase: the selective probe through the secondary index
# must beat the 8-shard parallel full scan by >= 2x wall clock (gated
# inside the binary and re-checked in the artifact).
./build/bench/bench_fig9_join --json BENCH_fig9.json
# Row-vs-vector batch phase: identical results on both engines and a
# >= 1.5x vectorized evaluation speedup, gated inside the binary and
# re-checked in the artifact.
./build/bench/bench_exec_micro --benchmark_filter=ParseSql \
  --json BENCH_exec_micro.json
grep -q '"pass":true' BENCH_exec_micro.json
grep -q '"filter_speedup":' BENCH_exec_micro.json
grep -q '"eqsql_vector_wall_ms":' BENCH_fig8.json
# Cost-based selection phase: the artifact must carry the per-app
# chosen strategies, the chosen-strategy tally (with at least one
# non-extraction pick), and the in-binary gate's verdict that the
# cost-chosen run never lost to always-extract.
grep -q '"selection_phase":{' BENCH_fig8.json
grep -q '"chosen_counts":' BENCH_fig8.json
grep -q '"chosen":"batching"' BENCH_fig8.json
grep -Eq '"selection_phase":\{.*"pass":true' BENCH_fig8.json
grep -q '"indexed_phase":{' BENCH_fig9.json
grep -q '"pass":true' BENCH_fig9.json
# The artifacts must embed a live registry snapshot: a busy server that
# reports zero plan-cache traffic means the metrics wiring fell off.
grep -q '"plan_cache.hits":[1-9]' BENCH_concurrency.json
grep -q '"storage.scan.rows":[1-9]' BENCH_fig8.json
# Open-loop scheduler numbers: the run must have dispatched work,
# measured a non-degenerate queue-wait distribution, and the burst
# phase must have shed at least one request.
grep -q '"open_loop":{"producers":8' BENCH_concurrency.json
grep -q '"dispatched":[1-9]' BENCH_concurrency.json
grep -q '"queue_wait_p99_ns":[1-9]' BENCH_concurrency.json
grep -q '"rejected":[1-9]' BENCH_concurrency.json
# MVCC phase: the artifact must carry the snapshot-reader ratio (the
# binary itself gates it at >= 0.90).
grep -q '"mvcc_phase":{"readers":8' BENCH_concurrency.json
grep -q '"reader_throughput_ratio":' BENCH_concurrency.json
# Trace-overhead phase: 1/128 sampling must stay within the in-binary
# 2% band on the serialized simulated clock, with at least one sampled
# trace and one slow-log line, and the artifact must say so.
grep -q '"trace_overhead":{"trace_sample":128' BENCH_concurrency.json
grep -q '"sampled":[1-9]' BENCH_concurrency.json
grep -q '"pass":true' BENCH_concurrency.json
# Every bench artifact embeds build provenance (git SHA, CMake preset,
# exec mode, shard count) so a stray number can be traced to a build.
for f in BENCH_concurrency.json BENCH_fig8.json BENCH_fig9.json \
    BENCH_exec_micro.json; do
  grep -q '"provenance":{"git_sha":' "$f"
done
# The sinks the trace phase produced: structured slow-query log lines
# (one JSON object per line) and the profile-ring dump.
grep -q '"trace_id":' slow_query.log
grep -q '"total_ns":' slow_query.log
grep -q '"statement":' slow_query.log
grep -q '"records":\[' profile_ring.json
grep -q '"trace":' profile_ring.json
grep -q '"profile":' profile_ring.json

echo "verify.sh: all green"
