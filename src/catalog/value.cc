#include "catalog/value.h"

#include <cmath>
#include <functional>

#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"

namespace eqsql::catalog {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  if (is_null()) return DataType::kNull;
  if (is_bool()) return DataType::kBool;
  if (is_int()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(AsInt());
  EQSQL_CHECK_MSG(is_double(), "AsNumeric on non-numeric Value");
  return AsDouble();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return AsBool() ? "TRUE" : "FALSE";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    // Trim trailing zeros for stable, readable output.
    std::string s = std::to_string(AsDouble());
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.push_back('0');
    return s;
  }
  return "'" + SqlEscape(AsString()) + "'";
}

size_t Value::WireSize() const {
  if (is_null()) return 1;
  if (is_bool()) return 1;
  if (is_int()) return 8;
  if (is_double()) return 8;
  return AsString().size() + 4;  // length prefix
}

namespace {

/// Rank in the cross-type total order.
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;
  return 3;
}

}  // namespace

bool operator==(const Value& a, const Value& b) {
  int ra = TypeRank(a), rb = TypeRank(b);
  if (ra != rb) return false;
  switch (ra) {
    case 0:
      return true;
    case 1:
      return a.AsBool() == b.AsBool();
    case 2:
      if (a.is_int() && b.is_int()) return a.AsInt() == b.AsInt();
      return a.AsNumeric() == b.AsNumeric();
    default:
      return a.AsString() == b.AsString();
  }
}

bool operator<(const Value& a, const Value& b) {
  int ra = TypeRank(a), rb = TypeRank(b);
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0:
      return false;
    case 1:
      return a.AsBool() < b.AsBool();
    case 2:
      if (a.is_int() && b.is_int()) return a.AsInt() < b.AsInt();
      return a.AsNumeric() < b.AsNumeric();
    default:
      return a.AsString() < b.AsString();
  }
}

size_t ValueHash::operator()(const Value& v) const {
  size_t seed = static_cast<size_t>(TypeRank(v));
  if (v.is_null()) return seed;
  if (v.is_bool()) {
    HashCombine(seed, v.AsBool());
  } else if (v.is_numeric()) {
    // ints and equal-valued doubles must hash identically.
    HashCombine(seed, v.AsNumeric());
  } else {
    HashCombine(seed, v.AsString());
  }
  return seed;
}

}  // namespace eqsql::catalog
