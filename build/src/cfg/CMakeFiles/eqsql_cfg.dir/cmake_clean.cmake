file(REMOVE_RECURSE
  "CMakeFiles/eqsql_cfg.dir/cfg.cc.o"
  "CMakeFiles/eqsql_cfg.dir/cfg.cc.o.d"
  "CMakeFiles/eqsql_cfg.dir/region.cc.o"
  "CMakeFiles/eqsql_cfg.dir/region.cc.o.d"
  "libeqsql_cfg.a"
  "libeqsql_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqsql_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
