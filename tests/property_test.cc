// Property-based sweeps: for a family of generated programs × data
// seeds × scales, the optimizer's rewrite must be *observationally
// equivalent* to the original (same return value, same prints) while
// never transferring more rows. This is the library's core invariant
// (paper Theorem 1 + rule soundness), exercised far beyond the
// hand-written cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "core/optimizer.h"
#include "frontend/parser.h"
#include "interp/interpreter.h"
#include "net/connection.h"

namespace eqsql::core {
namespace {

using catalog::DataType;
using catalog::Schema;
using catalog::Value;

/// One generated scenario: a program pattern instantiated with a
/// comparison operator and constant, against seeded data.
struct Scenario {
  std::string name;
  std::string source;
  std::string function = "f";
  bool expect_extracted = true;
};

/// Program generators, each parameterized by (op, threshold).
std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> out;
  const std::pair<const char*, const char*> ops[] = {
      {">", "gt"}, {"<", "lt"}, {">=", "ge"},
      {"<=", "le"}, {"==", "eq"}, {"!=", "ne"}};
  for (const auto& [op, op_name] : ops) {
    for (int threshold : {0, 50, 1000}) {
      std::string suffix =
          std::string(op_name) + "_" + std::to_string(threshold);
      std::string pred = "r.v " + std::string(op) + " " +
                         std::to_string(threshold);
      out.push_back(
          {"filter_" + suffix,
           "func f() {\n  out = list();\n  rows = executeQuery(\"SELECT * "
           "FROM t AS r\");\n  for (r : rows) {\n    if (" + pred +
           ") { out.append(r.name); }\n  }\n  return out;\n}\n"});
      out.push_back(
          {"count_" + suffix,
           "func f() {\n  n = 0;\n  rows = executeQuery(\"SELECT * FROM t "
           "AS r\");\n  for (r : rows) {\n    if (" + pred +
           ") { n = n + 1; }\n  }\n  return n;\n}\n"});
      out.push_back(
          {"sum_" + suffix,
           "func f() {\n  s = 0;\n  rows = executeQuery(\"SELECT * FROM t "
           "AS r\");\n  for (r : rows) {\n    if (" + pred +
           ") { s = s + r.v; }\n  }\n  return s;\n}\n"});
      out.push_back(
          {"maxagg_" + suffix,
           "func f() {\n  m = " + std::to_string(threshold) +
           ";\n  rows = executeQuery(\"SELECT * FROM t AS r\");\n  for (r "
           ": rows) {\n    if (r.v > m) { m = r.v; }\n  }\n  return m;\n}\n"});
      out.push_back(
          {"exists_" + suffix,
           "func f() {\n  found = false;\n  rows = executeQuery(\"SELECT * "
           "FROM t AS r\");\n  for (r : rows) {\n    if (" + pred +
           ") { found = true; }\n  }\n  return found;\n}\n"});
    }
  }
  return out;
}

struct ParamCase {
  size_t scenario_index;
  int rows;
  uint64_t seed;
};

class EquivalenceSweep : public ::testing::TestWithParam<ParamCase> {
 protected:
  static const std::vector<Scenario>& Scenarios() {
    static const auto* kScenarios =
        new std::vector<Scenario>(MakeScenarios());
    return *kScenarios;
  }
};

TEST_P(EquivalenceSweep, RewritePreservesSemantics) {
  const ParamCase& param = GetParam();
  const Scenario& scenario = Scenarios()[param.scenario_index];
  SCOPED_TRACE(scenario.name);

  storage::Database db;
  auto table = *db.CreateTable("t", Schema({{"id", DataType::kInt64},
                                            {"v", DataType::kInt64},
                                            {"name", DataType::kString}}));
  for (int64_t i = 0; i < param.rows; ++i) {
    ASSERT_TRUE(table
                    ->Insert({Value::Int(i),
                              Value::Int(static_cast<int64_t>(
                                  SplitMix64(param.seed + i) % 100)),
                              Value::String("n" + std::to_string(i))})
                    .ok());
  }
  ASSERT_TRUE(table->DeclareUniqueKey("id").ok());

  auto program = frontend::ParseProgram(scenario.source);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  OptimizeOptions options;
  options.transform.table_keys = {{"t", "id"}};
  EqSqlOptimizer optimizer(options);
  auto result = optimizer.Optimize(*program, scenario.function);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->any_extracted(), scenario.expect_extracted)
      << result->program.ToString();

  net::Connection c1(&db), c2(&db);
  interp::Interpreter i1(&*program, &c1);
  interp::Interpreter i2(&result->program, &c2);
  auto r1 = i1.Run(scenario.function);
  auto r2 = i2.Run(scenario.function);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString() << "\n"
                       << result->program.ToString();
  // The core soundness property.
  EXPECT_EQ(r1->DisplayString(), r2->DisplayString())
      << result->program.ToString();
  EXPECT_EQ(i1.printed(), i2.printed());
  // The optimization property: never ship more rows than the original
  // (a scalar aggregate always ships exactly one row, even when the
  // original shipped none from an empty table).
  EXPECT_LE(c2.stats().rows_transferred,
            std::max<int64_t>(c1.stats().rows_transferred, 1));
}

std::vector<ParamCase> AllCases() {
  std::vector<ParamCase> cases;
  size_t n = MakeScenarios().size();
  for (size_t i = 0; i < n; ++i) {
    for (int rows : {0, 1, 37}) {       // empty, singleton, bulk
      for (uint64_t seed : {7ull, 99ull}) {
        cases.push_back(ParamCase{i, rows, seed});
      }
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<ParamCase>& info) {
  static const auto* kScenarios = new std::vector<Scenario>(MakeScenarios());
  std::string name = (*kScenarios)[info.param.scenario_index].name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_r" + std::to_string(info.param.rows) + "_s" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Generated, EquivalenceSweep,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace eqsql::core
