#ifndef EQSQL_EXEC_WORKER_POOL_H_
#define EQSQL_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace eqsql::exec {

/// A small shared pool for partition-parallel query execution. One pool
/// serves every session of a server: Executors submit one task per
/// table shard and block until their batch completes.
///
/// Scheduling: tasks go into a single FIFO queue drained by the
/// persistent worker threads *and* by the submitting thread itself
/// (caller-helps). Caller participation means a batch always makes
/// progress even with zero workers or when all workers are busy with
/// other sessions' batches — there is no deadlock where every session
/// blocks waiting for workers that are themselves blocked.
///
/// Tasks must not throw and must not submit nested batches (an
/// Executor's parallel operators only fan out at the top level of a
/// plan, so task code never re-enters Run).
class WorkerPool {
 public:
  /// `threads` persistent workers. 0 is valid: every batch then runs
  /// entirely on the submitting thread (useful for deterministic
  /// debugging and for the oracle's shard-count sweeps).
  explicit WorkerPool(size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t thread_count() const { return threads_.size(); }

  /// Attaches a metrics registry: exec.pool.tasks (counter),
  /// exec.pool.queue_depth (histogram, sampled at submit time) and
  /// exec.pool.task_ns (histogram). All are scheduling-dependent and
  /// excluded from the shard-count-invariance contract. Call before the
  /// pool is shared across threads; handles are resolved once here.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Runs every task and returns when all have finished. The calling
  /// thread helps drain the queue while it waits.
  void Run(std::vector<std::function<void()>> tasks);

 private:
  /// Completion state for one Run() batch.
  struct Batch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  obs::Counter* tasks_submitted_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;
  obs::Histogram* task_ns_ = nullptr;
};

}  // namespace eqsql::exec

#endif  // EQSQL_EXEC_WORKER_POOL_H_
