#include "core/alternative_selector.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "baselines/batching.h"
#include "baselines/batching_exec.h"
#include "common/strings.h"

namespace eqsql::core {

using frontend::Expr;
using frontend::ExprKind;
using frontend::ExprPtr;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::StmtPtr;

const char* AlternativeKindName(AlternativeKind kind) {
  switch (kind) {
    case AlternativeKind::kExtractedSql: return "extracted-sql";
    case AlternativeKind::kBatching: return "batching";
    case AlternativeKind::kInterpreted: return "interpreted";
  }
  return "?";
}

const PlanAlternative* ExtractionPlan::Find(AlternativeKind kind) const {
  for (const PlanAlternative& a : alternatives) {
    if (a.kind == kind) return &a;
  }
  return nullptr;
}

namespace {

constexpr double kDefaultOuterRows = 1000.0;
constexpr double kDefaultRowWidth = 48.0;
/// Approximate uploaded bytes per parameter-table cell (row id or one
/// parameter value).
constexpr double kParamCellBytes = 16.0;

/// Shape of the original function's first query-backed cursor loop:
/// what the interpreted strategy actually pays per execution.
struct LoopProbe {
  bool found = false;
  std::string outer_sql;
  int queries_per_row = 0;
};

void CountQueries(const ExprPtr& e, int* n) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kCall &&
      (e->name() == "executeQuery" || e->name() == "executeUpdate")) {
    ++(*n);
  }
  if (e->object() != nullptr) CountQueries(e->object(), n);
  for (const ExprPtr& a : e->args()) CountQueries(a, n);
}

void CountBodyQueries(const std::vector<StmtPtr>& stmts, int* n) {
  for (const StmtPtr& s : stmts) {
    CountQueries(s->expr(), n);
    CountBodyQueries(s->body(), n);
    CountBodyQueries(s->else_body(), n);
  }
}

LoopProbe ProbeLoop(const frontend::Function* fn) {
  LoopProbe probe;
  if (fn == nullptr) return probe;
  std::map<std::string, std::string> cursor_sql;
  for (const StmtPtr& s : fn->body) {
    if (s->kind() == StmtKind::kAssign && s->expr() != nullptr &&
        s->expr()->kind() == ExprKind::kCall &&
        s->expr()->name() == "executeQuery" &&
        !s->expr()->args().empty() &&
        s->expr()->arg(0)->kind() == ExprKind::kStringLit) {
      cursor_sql[s->target()] = s->expr()->arg(0)->string_value();
    }
    if (s->kind() != StmtKind::kForEach) continue;
    probe.found = true;
    const ExprPtr& iter = s->expr();
    if (iter != nullptr) {
      if (iter->kind() == ExprKind::kVarRef) {
        auto it = cursor_sql.find(iter->name());
        if (it != cursor_sql.end()) probe.outer_sql = it->second;
      } else if (iter->kind() == ExprKind::kCall &&
                 iter->name() == "executeQuery" && !iter->args().empty() &&
                 iter->arg(0)->kind() == ExprKind::kStringLit) {
        probe.outer_sql = iter->arg(0)->string_value();
      }
    }
    CountBodyQueries(s->body(), &probe.queries_per_row);
    return probe;
  }
  return probe;
}

std::string RowsDetail(double rows) {
  return std::to_string(static_cast<long long>(std::llround(rows))) +
         " row(s)";
}

/// Annotates extracted variables with the physical join-plan choice
/// (index-nested-loop vs. hash join) against the same stats snapshot
/// the alternatives are priced with. A no-op while the database has no
/// secondary indexes.
void AnnotateJoinPlans(const CostEstimator& estimator, bool any_index,
                       const AlternativeSelector::PlanResolver& resolve,
                       OptimizeResult* result) {
  if (!any_index) return;
  for (VarOutcome& o : result->outcomes) {
    if (!o.extracted) continue;
    for (const std::string& sql : o.sql) {
      Result<ra::RaNodePtr> plan = resolve(sql);
      if (!plan.ok()) continue;
      JoinPlanChoice choice = estimator.ChooseJoinPlan(*plan);
      if (!choice.applicable) continue;
      o.join_plan = (choice.index_wins ? "index-nested-loop on "
                                       : "hash-join over ") +
                    choice.detail;
      o.cost_index_ms = choice.index_ms;
      o.cost_scan_ms = choice.scan_ms;
      break;
    }
  }
}

}  // namespace

double AlternativeSelector::LoopClientMs(double outer_rows) const {
  // Mirrors CostEstimator::RewriteWins: the application's own per-row
  // work (cursor advance, result handling, merge bookkeeping).
  return model_.client_cost_per_op_ms * outer_rows * 4.0;
}

ExtractionPlan AlternativeSelector::Select(
    std::shared_ptr<const OptimizeResult> optimized,
    const frontend::Function* original, const PlanResolver& resolve,
    uint64_t stats_epoch) const {
  ExtractionPlan plan;
  plan.stats_epoch = stats_epoch;

  bool any_index = false;
  for (const auto& [table, indexes] : stats_.table_indexes) {
    if (!indexes.empty()) any_index = true;
  }

  const LoopProbe probe = ProbeLoop(original);
  Result<ra::RaNodePtr> outer_plan = probe.outer_sql.empty()
                                         ? Status::NotFound("no outer query")
                                         : resolve(probe.outer_sql);

  // --- extracted-sql: every lifted query runs once.
  PlanAlternative extracted;
  extracted.kind = AlternativeKind::kExtractedSql;
  if (optimized != nullptr && optimized->any_extracted()) {
    extracted.feasible = true;
    int queries = 0;
    double ms = 0;
    for (const VarOutcome& o : optimized->outcomes) {
      if (!o.extracted) continue;
      for (const std::string& sql : o.sql) {
        ++queries;
        Result<ra::RaNodePtr> q = resolve(sql);
        if (q.ok()) {
          ms += estimator_.EstimateQuery(*q).Milliseconds(model_);
        } else {
          ms += model_.round_trip_latency_ms + model_.query_overhead_ms;
        }
      }
    }
    extracted.est_cost_ms = ms;
    extracted.detail = std::to_string(queries) + " set-oriented quer" +
                       (queries == 1 ? "y" : "ies");
  } else {
    extracted.skip_reason = "nothing extracted";
    if (optimized != nullptr) {
      for (const VarOutcome& o : optimized->outcomes) {
        if (!o.extracted && !o.reason.empty()) {
          extracted.skip_reason = o.reason;
          break;
        }
      }
    }
  }

  // --- batching: upload one parameter row per cursor row, replace the
  // per-row probes with one join each against the parameter table.
  PlanAlternative batching;
  batching.kind = AlternativeKind::kBatching;
  baselines::BatchPlan bplan;
  if (original != nullptr) {
    bplan = baselines::FindBatchLoop(*original, "__batch_params");
  }
  if (!bplan.sites.empty()) {
    batching.feasible = true;
    double outer_rows = kDefaultOuterRows;
    double ms = 0;
    Result<ra::RaNodePtr> bouter = bplan.outer_sql.empty()
                                       ? outer_plan
                                       : resolve(bplan.outer_sql);
    if (bouter.ok()) {
      CostEstimate outer_est = estimator_.EstimateQuery(*bouter);
      outer_rows = outer_est.cardinality;
      ms += outer_est.Milliseconds(model_);
    } else {
      ms += model_.round_trip_latency_ms + model_.query_overhead_ms +
            model_.ServerMs(static_cast<size_t>(outer_rows)) +
            model_.TransferMs(
                static_cast<size_t>(outer_rows * kDefaultRowWidth));
    }
    ms += model_.param_table_overhead_ms + model_.round_trip_latency_ms +
          model_.TransferMs(static_cast<size_t>(
              outer_rows * kParamCellBytes *
              static_cast<double>(1 + bplan.param_columns)));
    for (const baselines::BatchSite& site : bplan.sites) {
      const std::string table = AsciiToLower(site.inner_table);
      auto rows_it = stats_.table_rows.find(table);
      const double inner_rows =
          rows_it != stats_.table_rows.end()
              ? static_cast<double>(rows_it->second)
              : kDefaultOuterRows;
      auto bytes_it = stats_.row_bytes.find(table);
      const double inner_width =
          bytes_it != stats_.row_bytes.end()
              ? static_cast<double>(bytes_it->second)
              : kDefaultRowWidth;
      ms += model_.round_trip_latency_ms + model_.query_overhead_ms +
            model_.ServerMs(static_cast<size_t>(inner_rows + outer_rows)) +
            model_.TransferMs(static_cast<size_t>(outer_rows * inner_width));
    }
    ms += LoopClientMs(outer_rows);
    batching.est_cost_ms = ms;
    batching.detail = std::to_string(bplan.sites.size()) +
                      " probe site(s) over " + RowsDetail(outer_rows);
  } else if (original == nullptr) {
    batching.skip_reason = "original function unavailable";
  } else {
    baselines::Applicability check =
        baselines::CheckBatchingApplicable(*original);
    batching.skip_reason =
        check.applicable ? "no batchable probe site" : check.reason;
  }

  // --- interpreted: fetch the cursor, then one round trip per row per
  // inner query. Always feasible — it is the program as written.
  PlanAlternative interp;
  interp.kind = AlternativeKind::kInterpreted;
  interp.feasible = true;
  if (outer_plan.ok()) {
    CostEstimate loop_est =
        estimator_.EstimateLoop(*outer_plan, probe.queries_per_row);
    interp.est_cost_ms =
        loop_est.Milliseconds(model_) + LoopClientMs(loop_est.cardinality);
    interp.detail = std::to_string(loop_est.round_trips) +
                    " round trip(s) over " + RowsDetail(loop_est.cardinality);
  } else if (extracted.feasible) {
    // No query-backed loop to price: the imperative strategy costs what
    // its queries cost (the loop itself stays client-side).
    interp.est_cost_ms =
        extracted.est_cost_ms + LoopClientMs(kDefaultOuterRows);
    interp.detail = "no query-backed loop; priced as the extracted queries";
  } else {
    interp.est_cost_ms = model_.round_trip_latency_ms;
    interp.detail = "no query-backed loop";
  }

  plan.alternatives = {extracted, batching, interp};
  // Rank: feasible before infeasible, then cheapest first; on a cost
  // tie the more set-oriented strategy wins (declaration order).
  std::stable_sort(plan.alternatives.begin(), plan.alternatives.end(),
                   [](const PlanAlternative& a, const PlanAlternative& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     if (!a.feasible) return false;
                     return a.est_cost_ms < b.est_cost_ms;
                   });
  plan.chosen = plan.alternatives.front().kind;
  for (PlanAlternative& a : plan.alternatives) {
    a.chosen = a.feasible && a.kind == plan.chosen;
  }

  // The cached plan carries a join-annotated copy so EXPLAIN shows the
  // physical choice beside the strategy choice.
  if (optimized != nullptr) {
    OptimizeResult annotated = *optimized;
    AnnotateJoinPlans(estimator_, any_index, resolve, &annotated);
    plan.optimized =
        std::make_shared<const OptimizeResult>(std::move(annotated));
  }
  return plan;
}

}  // namespace eqsql::core
