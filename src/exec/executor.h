#ifndef EQSQL_EXEC_EXECUTOR_H_
#define EQSQL_EXEC_EXECUTOR_H_

#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "exec/batch.h"
#include "exec/exec_mode.h"
#include "exec/worker_pool.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "ra/ra_node.h"
#include "storage/database.h"
#include "storage/shard_guard.h"

namespace eqsql::exec {

/// A fully materialized query result: output schema + rows in result
/// order (Project preserves input order; Sort imposes one).
struct ResultSet {
  catalog::Schema schema;
  std::vector<catalog::Row> rows;

  /// Total wire size of all rows (used by net/ to charge transfer cost).
  size_t WireSize() const;
};

/// Evaluation context threaded through scalar evaluation: positional
/// parameters plus a stack of (schema,row) frames for correlated column
/// resolution (innermost frame is searched first). OuterApply and EXISTS
/// push outer rows onto the stack.
class EvalContext {
 public:
  explicit EvalContext(const std::vector<catalog::Value>* params)
      : params_(params) {}

  struct Frame {
    const catalog::Schema* schema;
    const catalog::Row* row;
  };

  void PushFrame(const catalog::Schema* schema, const catalog::Row* row) {
    frames_.push_back(Frame{schema, row});
  }
  void PopFrame() { frames_.pop_back(); }
  size_t depth() const { return frames_.size(); }

  /// Resolves `name` innermost-first across the frame stack.
  Result<catalog::Value> LookupColumn(const std::string& name) const;

  Result<catalog::Value> LookupParameter(int index) const;

 private:
  const std::vector<catalog::Value>* params_;
  std::vector<Frame> frames_;
};

/// Materializing evaluator for relational-algebra trees against an
/// in-memory Database. This is the "server side" of the simulated DBMS:
/// the net/ layer calls it and charges costs for the rows it returns.
///
/// Joins with extractable equi-conjuncts use hash join; everything else
/// is a (predicated) nested loop.
///
/// Shared-read contract: execution touches the database exclusively
/// through `const storage::Database*` / `const storage::Table*` — no
/// execution path mutates storage. Row visibility resolves against the
/// attached ReadGuard's pinned MVCC snapshot (storage::Snapshot), so
/// any number of Executors may run concurrently against one Database
/// while writers commit new versions: readers never block writers and
/// never see a half-committed transaction. Plans are
/// shared_ptr<const RaNode> and are never mutated during execution, so
/// one cached plan may be executed by many sessions at once. One
/// Executor instance itself is single-threaded: rows_processed_ is
/// per-run scratch. Partition-parallel operators (scan, filter over a
/// scan, aggregation over a scan) spawn per-shard tasks onto a
/// WorkerPool when one is attached; each task runs its own scratch
/// Executor, so the contract holds per task.
class Executor {
 public:
  explicit Executor(const storage::Database* db) : db_(db) {}

  /// Attaches a shard worker pool. With a pool, full-table scans,
  /// filters directly over a scan, and aggregations over a (filtered)
  /// scan fan out one task per shard when the table has at least
  /// `parallel threshold` rows and more than one shard. Results are
  /// byte-identical to serial execution: rows reassemble by insertion
  /// sequence and aggregation merges are gated to exact
  /// (non-floating-point) states.
  void set_worker_pool(WorkerPool* pool) { pool_ = pool; }

  /// Minimum table row count before parallel operators engage (small
  /// tables are not worth the fan-out). 0 forces parallelism for any
  /// non-empty eligible table — used by the invariance tests.
  void set_parallel_threshold(size_t n) { parallel_threshold_ = n; }

  /// Selects the execution engine (see exec/exec_mode.h). kVector
  /// routes scans, filters, projections, and group-by folds through the
  /// batch-at-a-time columnar path; expressions the batch compiler
  /// cannot handle (correlated references, EXISTS subqueries, unbound
  /// parameters) fall back to the row engine per operator, counted in
  /// exec.batch.fallbacks. Results, errors, and cost accounting are
  /// identical in both modes. Defaults to kRow so a bare Executor keeps
  /// the original engine directly testable; the server stack applies
  /// ServerOptions::exec_mode.
  void set_exec_mode(ExecMode mode) { mode_ = mode; }
  ExecMode exec_mode() const { return mode_; }

  /// Attaches the caller's pinned table snapshot. When set, table
  /// resolution prefers the guard's snapshot over the live registry, so
  /// a query keeps reading the tables it locked even if another session
  /// republishes them mid-flight.
  void set_read_guard(const storage::ReadGuard* guard) { guard_ = guard; }

  /// Attaches a metrics registry. Shard-invariant totals go to
  /// storage.scan.rows / storage.scan.bytes (identical whatever the
  /// shard count or pool — scan counters always charge the full logical
  /// scan); per-shard breakdowns go under storage.shard.<i>.scan.* and
  /// fan-out counts under exec.parallel.*, which are layout-dependent by
  /// design and excluded from the invariance contract. Handles are
  /// resolved here once; execution never touches the registry mutex
  /// except to name per-shard counters at fan-out time.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Attaches a per-request operator profile (EXPLAIN ANALYZE, the
  /// trace sampler, the slow-query logger). nullptr detaches. Each
  /// executed plan operator records rows in/out, batches, wall time,
  /// and — for parallel operators — a per-shard breakdown into the
  /// tree. Profiling touches only wall-clock fields and the profile's
  /// own atomics: the simulated cost model and every layout-invariant
  /// counter are charged identically with profiling on or off.
  void set_profile(obs::Profile* profile) {
    profile_ = profile;
    prof_cur_ = nullptr;
  }
  obs::Profile* profile() const { return profile_; }

  /// Executes `node` with positional `params` bound to '?' placeholders.
  Result<ResultSet> Execute(const ra::RaNodePtr& node,
                            const std::vector<catalog::Value>& params = {});

  /// Evaluates a scalar expression (used by DML to compute INSERT
  /// values / UPDATE assignments, and by shard tasks). Row counts from
  /// any subqueries accumulate into last_rows_processed() without
  /// resetting it.
  Result<catalog::Value> Eval(const ra::ScalarExprPtr& expr, EvalContext* ctx);

  /// Output schema of `node` without executing it (used for NULL padding
  /// in outer joins / outer apply and by the SQL generator).
  Result<catalog::Schema> OutputSchema(const ra::RaNode& node) const;

  /// Number of rows produced by all operators during the last Execute
  /// (a crude work counter used by the net/ cost model's server term).
  size_t last_rows_processed() const { return rows_processed_; }

 private:
  /// Operator dispatch. When a profile is attached, Exec wraps ExecNode
  /// with per-operator bookkeeping (node lookup keyed by plan-node
  /// address, wall time, rows out) and ExecNode does the actual work;
  /// without one, Exec tail-calls ExecNode.
  Result<ResultSet> Exec(const ra::RaNode& node, EvalContext* ctx);
  Result<ResultSet> ExecNode(const ra::RaNode& node, EvalContext* ctx);
  /// Resolves a table name through the attached ReadGuard first (pinned
  /// snapshot), then the live registry.
  Result<const storage::Table*> ResolveTable(const std::string& name) const;
  /// Unique-key point lookup for Select(Scan); errors with kNotFound
  /// when the fast path does not apply.
  Result<ResultSet> TryIndexLookup(const ra::RaNode& node, EvalContext* ctx);
  /// Secondary-index scan for Select(Scan): when the predicate pins a
  /// ready SecondaryIndex's columns to column-free expressions, probes
  /// the index and revalidates each candidate against the read
  /// snapshot instead of materializing the full scan. Charges exactly
  /// the full scan's simulated cost (storage.scan.* and the
  /// rows-processed server term, via Table::VisibleStats) so plan
  /// choice never shows in the deterministic cost model — only in wall
  /// time. kNotFound = inapplicable, caller falls through.
  Result<ResultSet> TrySecondaryIndexScan(const ra::RaNode& node,
                                          EvalContext* ctx);
  /// Index-nested-loop join: right child is a bare Scan whose
  /// equi-join columns exactly cover a ready secondary index. Probes
  /// the index once per left row instead of materializing and hashing
  /// the right side; classification, residual handling, output order
  /// (left order, right insertion order within a key) and cost charges
  /// match the hash join bit for bit. kNotFound = inapplicable.
  Result<ResultSet> TryIndexNestedLoopJoin(const ra::RaNode& node,
                                           bool left_outer,
                                           const ResultSet& left,
                                           EvalContext* ctx);
  Result<catalog::Value> EvalScalar(const ra::ScalarExprPtr& expr,
                                    EvalContext* ctx);
  Result<ResultSet> ExecJoin(const ra::RaNode& node, bool left_outer,
                             EvalContext* ctx);
  Result<ResultSet> ExecOuterApply(const ra::RaNode& node, EvalContext* ctx);
  Result<ResultSet> ExecGroupBy(const ra::RaNode& node, EvalContext* ctx);
  /// Per-shard parallel variants; preconditions checked by callers.
  Result<ResultSet> ExecScanParallel(const ra::RaNode& node,
                                     const storage::Table& table);
  Result<ResultSet> ExecSelectScanParallel(const ra::RaNode& node,
                                           const storage::Table& table,
                                           EvalContext* ctx);
  Result<ResultSet> ExecGroupByParallel(const ra::RaNode& node,
                                        const ra::RaNode* select,
                                        const ra::RaNode& scan,
                                        const storage::Table& table,
                                        EvalContext* ctx);

  /// A group-by whose pieces all compiled for batch evaluation:
  /// optional filter predicate, key expressions, and aggregate
  /// arguments (null entry = COUNT(*), which reads no input).
  struct CompiledGroupBy {
    std::unique_ptr<CompiledExpr> pred;
    std::vector<std::unique_ptr<CompiledExpr>> keys;
    std::vector<std::unique_ptr<CompiledExpr>> aggs;
  };
  /// Compiles the group-by's scalar pieces against `schema` (pred only
  /// when `select` is non-null). False = something didn't compile; the
  /// caller falls back to the row engine.
  bool CompileGroupBy(const ra::RaNode& node, const ra::RaNode* select,
                      const catalog::Schema& schema, EvalContext* ctx,
                      CompiledGroupBy* out);

  /// Vectorized operators (mode_ == kVector). Each mirrors its row
  /// twin's results, error selection, and cost accounting exactly.
  Result<ResultSet> ExecScanVector(const ra::RaNode& node,
                                   const storage::Table& table);
  Result<ResultSet> ExecScanVectorParallel(const ra::RaNode& node,
                                           const storage::Table& table);
  Result<ResultSet> ExecSelectScanVector(const ra::RaNode& node,
                                         const storage::Table& table,
                                         const CompiledExpr& pred,
                                         const catalog::Schema& schema);
  Result<ResultSet> ExecSelectScanVectorParallel(const ra::RaNode& node,
                                                 const storage::Table& table,
                                                 const CompiledExpr& pred,
                                                 const catalog::Schema& schema);
  Result<ResultSet> ExecGroupByVectorParallel(const ra::RaNode& node,
                                              const ra::RaNode* select,
                                              const storage::Table& table,
                                              const catalog::Schema& scan_schema,
                                              const CompiledGroupBy& plan);
  Result<ResultSet> ExecGroupByVectorFused(const ra::RaNode& node,
                                           const ra::RaNode* select,
                                           const storage::Table& table,
                                           const CompiledGroupBy& plan);
  Result<ResultSet> FilterVector(ResultSet in, const CompiledExpr& pred);
  Result<ResultSet> ProjectVector(const ra::RaNode& node, ResultSet in,
                                  const std::vector<std::unique_ptr<CompiledExpr>>& items);
  Result<ResultSet> GroupByVectorFold(const ra::RaNode& node, ResultSet in,
                                      const CompiledGroupBy& plan);

  /// Per-shard counter handles for one fan-out, resolved on the
  /// submitting thread so tasks never take the registry mutex.
  struct ShardScanMetrics {
    obs::Counter* rows = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* ns = nullptr;
  };
  std::vector<ShardScanMetrics> ShardMetrics(size_t shard_count);

  /// The MVCC snapshot every row-visibility check resolves against: the
  /// attached guard's pinned snapshot, or "latest committed" when
  /// executing unguarded (tests, offline tooling).
  storage::Snapshot ReadSnapshot() const {
    return guard_ != nullptr ? guard_->snapshot() : storage::Snapshot::Latest();
  }

  void RecordScan(size_t rows, size_t bytes) {
    if (scan_rows_ != nullptr) {
      scan_rows_->Add(static_cast<int64_t>(rows));
      scan_bytes_->Add(static_cast<int64_t>(bytes));
    }
    if (prof_cur_ != nullptr) {
      prof_cur_->rows_in.fetch_add(static_cast<int64_t>(rows),
                                   std::memory_order_relaxed);
    }
  }

  /// One batch moved through a vectorized operator. Thread-safe
  /// (striped counters, atomic profile accumulator); called from shard
  /// tasks — prof_cur_ is stable for their whole lifetime because the
  /// main thread blocks in WorkerPool::Run until every task finishes.
  void RecordBatch(size_t rows) {
    if (batch_batches_ != nullptr) {
      batch_batches_->Increment();
      batch_rows_->Add(static_cast<int64_t>(rows));
      batch_size_->Record(static_cast<int64_t>(rows));
    }
    if (prof_cur_ != nullptr) {
      prof_cur_->batches.fetch_add(1, std::memory_order_relaxed);
    }
  }
  /// An operator in kVector mode handed its input to the row engine.
  void RecordVectorFallback() {
    if (batch_fallbacks_ != nullptr) batch_fallbacks_->Increment();
  }

  const storage::Database* db_;
  const storage::ReadGuard* guard_ = nullptr;
  WorkerPool* pool_ = nullptr;
  size_t parallel_threshold_ = 512;
  ExecMode mode_ = ExecMode::kRow;
  size_t rows_processed_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* scan_rows_ = nullptr;
  obs::Counter* scan_bytes_ = nullptr;
  obs::Counter* parallel_batches_ = nullptr;
  obs::Histogram* shard_scan_ns_ = nullptr;
  obs::Counter* batch_batches_ = nullptr;
  obs::Counter* batch_rows_ = nullptr;
  obs::Counter* batch_fallbacks_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
  /// storage.index.* / exec.index.* — physical-plan counters. Like
  /// exec.batch.*, they depend on which access path ran, so the
  /// shard-invariance signature excludes both families.
  obs::Counter* index_probes_ = nullptr;
  obs::Counter* index_rows_ = nullptr;
  obs::Counter* index_scans_ = nullptr;
  obs::Counter* index_nlj_probes_ = nullptr;
  /// Request profile borrowed from the caller; prof_cur_ tracks the
  /// profile node of the operator currently executing on the main
  /// thread (scan/batch charges attribute to it).
  obs::Profile* profile_ = nullptr;
  obs::ProfileNode* prof_cur_ = nullptr;
};

}  // namespace eqsql::exec

#endif  // EQSQL_EXEC_EXECUTOR_H_
