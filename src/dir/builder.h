#ifndef EQSQL_DIR_BUILDER_H_
#define EQSQL_DIR_BUILDER_H_

#include <string>
#include <vector>

#include "analysis/loop_analysis.h"
#include "cfg/region.h"
#include "common/result.h"
#include "dir/dnode.h"
#include "frontend/ast.h"

namespace eqsql::dir {

/// Diagnostic for one (loop, variable) fold-conversion attempt. The raw
/// loop-body material (body expression, initial value, looped query,
/// cursor) is carried along so downstream extensions — notably the
/// App. B dependent-aggregation/argmax rewrite — can pattern-match
/// failed conversions without re-running construction.
struct LoopReport {
  const frontend::Stmt* loop = nullptr;
  std::string var;
  bool converted = false;
  std::string reason;  // precondition failure when !converted
  DNodePtr body_expr;  // the variable's per-iteration ee-DAG expression
  DNodePtr init;       // its value at loop entry
  DNodePtr query_node; // the looped kQuery (null when not query-backed)
  std::string tuple_var;
  /// True when the loop iterates a query result, i.e. P1-P3 were
  /// actually evaluated and `preconditions` is meaningful.
  bool query_backed = false;
  /// All-verdicts P1-P3 report (EXPLAIN EXTRACTION); its ok/failure
  /// mirror `converted`/`reason` exactly for query-backed loops.
  analysis::PreconditionReport preconditions;
};

/// The D-IR of one function: a ve-Map giving each variable's value at
/// the end of the function as an ee-DAG expression over the function's
/// parameters (kRegionInput leaves), plus conversion diagnostics.
struct FunctionDir {
  VeMap ve_map;
  std::vector<LoopReport> loop_reports;

  /// The expression for the function's return value, or null.
  DNodePtr return_value() const {
    auto it = ve_map.find("__ret");
    return it == ve_map.end() ? nullptr : it->second;
  }
  /// The expression for the ordered print-output collection, or null.
  DNodePtr output_value() const {
    auto it = ve_map.find("__out");
    return it == ve_map.end() ? nullptr : it->second;
  }
};

/// Builds D-IR (ee-DAG + ve-Map) for ImpLang functions following the
/// paper's bottom-up region algorithm (Sec. 3.3, App. D):
///
///  * basic blocks fold statement effects left to right;
///  * sequential regions substitute the following region's inputs with
///    the preceding region's expressions;
///  * conditional regions merge per-variable with "?" nodes (with
///    min/max and boolean-flag normalization);
///  * cursor-loop regions convert updated variables to fold via
///    loopToFold (paper Fig. 6) when preconditions P1-P3 pass, and to
///    opaque values otherwise;
///  * user-defined function calls are inlined (actual-to-formal
///    mapping, App. D.6).
class DirBuilder {
 public:
  /// `program` provides user functions for inlining (may be null).
  DirBuilder(DagContext* ctx, const frontend::Program* program)
      : ctx_(ctx), program_(program) {}

  /// Builds D-IR for `fn`. Parameters appear as kRegionInput leaves.
  Result<FunctionDir> BuildFunction(const frontend::Function& fn);

 private:
  struct Scope {
    VeMap* map;                         // current variable values
    std::vector<std::string>* cursors;  // active cursor variables
  };

  Status BuildRegion(const cfg::RegionPtr& region, Scope scope);
  Status ApplyStmt(const frontend::StmtPtr& stmt, Scope scope);
  Status BuildLoop(const cfg::Region& region, Scope scope);
  Result<DNodePtr> BuildExpr(const frontend::ExprPtr& expr, Scope scope);
  Result<DNodePtr> InlineCall(const frontend::Expr& call, Scope scope);

  DNodePtr LookupVar(const std::string& name, Scope scope);

  /// Collects enclosing-scope values for loop-invariant region inputs
  /// referenced by a fold function (everything but the accumulator).
  void CollectInvariantInputs(const DNodePtr& node,
                              const std::string& acc_var, Scope scope,
                              std::map<std::string, DNodePtr>* out);

  DagContext* ctx_;
  const frontend::Program* program_;
  std::vector<LoopReport> loop_reports_;
  int inline_depth_ = 0;
};

}  // namespace eqsql::dir

#endif  // EQSQL_DIR_BUILDER_H_
