#include "storage/table.h"

#include <algorithm>
#include <mutex>

namespace eqsql::storage {

namespace {

/// Locks every shard mutex exclusively, in ascending shard order (the
/// table-wide lock-ordering rule; see DESIGN.md). Unlocks in reverse.
class AllShardsExclusive {
 public:
  explicit AllShardsExclusive(const std::vector<std::shared_mutex*>& mus)
      : mus_(mus) {
    for (std::shared_mutex* mu : mus_) mu->lock();
  }
  ~AllShardsExclusive() {
    for (auto it = mus_.rbegin(); it != mus_.rend(); ++it) (*it)->unlock();
  }

 private:
  std::vector<std::shared_mutex*> mus_;
};

}  // namespace

std::vector<catalog::Row> Table::rows() const {
  std::vector<catalog::Row> out(row_count());
  for (const auto& shard : shards_) {
    for (const Slot& slot : shard->slots) {
      if (slot.seq < out.size()) out[slot.seq] = slot.row;
    }
  }
  return out;
}

size_t Table::ShardOfKey(const catalog::Value& key) const {
  return catalog::ValueHash()(key) % shards_.size();
}

Status Table::Insert(catalog::Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table " + name_);
  }
  // Shared topology hold: keeps a concurrent Repartition from freeing
  // the Shard this insert is about to lock (or has picked but not yet
  // locked) out from under us.
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  if (unique_key_.has_value()) {
    const catalog::Value key = row[key_index_col_];
    Shard& shard = *shards_[ShardOfKey(key)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    if (shard.index.count(key) > 0) {
      return Status::InvalidArgument("duplicate key " + key.ToString() +
                                     " in table " + name_);
    }
    size_t seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
    shard.index.emplace(std::move(key), shard.slots.size());
    shard.slots.push_back(Slot{seq, std::move(row)});
  } else {
    size_t seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
    Shard& shard = *shards_[seq % shards_.size()];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.slots.push_back(Slot{seq, std::move(row)});
  }
  size_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Table::Repartition(size_t new_count, const std::string* new_key) {
  // Exclusive topology hold: every other path that touches shards_ —
  // Insert, Clear, ForEachRowExclusive, and external readers via
  // ReadGuard — holds topology_mu_ shared for as long as it holds any
  // shard lock, so once we own it exclusively no thread can be reading
  // a Shard or blocked on one of its mutexes, and the old Shard
  // objects are safe to free at function exit.
  std::unique_lock<std::shared_mutex> topology(topology_mu_);

  std::optional<std::string> key = unique_key_;
  size_t key_col = key_index_col_;
  if (new_key != nullptr) {
    EQSQL_ASSIGN_OR_RETURN(key_col, schema_.ResolveColumn(*new_key));
    key = *new_key;
  }

  // Phase 1: validate. Compute every slot's target shard and run the
  // uniqueness check over slot *references* — no row moves until the
  // whole placement is known to succeed, so a duplicate-key error
  // leaves the table exactly as it was.
  std::vector<Slot*> all;
  all.reserve(row_count());
  for (const auto& s : shards_) {
    for (Slot& slot : s->slots) all.push_back(&slot);
  }
  std::sort(all.begin(), all.end(),
            [](const Slot* a, const Slot* b) { return a->seq < b->seq; });

  size_t count = new_count == 0 ? shards_.size() : new_count;
  std::vector<size_t> targets(all.size());
  std::vector<std::unordered_map<catalog::Value, size_t, catalog::ValueHash>>
      indexes(count);
  std::vector<size_t> placed_count(count, 0);
  for (size_t i = 0; i < all.size(); ++i) {
    size_t target;
    if (key.has_value()) {
      const catalog::Value& kv = all[i]->row[key_col];
      target = catalog::ValueHash()(kv) % count;
      auto [it, inserted] =
          indexes[target].emplace(kv, placed_count[target]);
      if (!inserted) {
        return Status::InvalidArgument(
            "existing data violates unique key on " + *key + " in table " +
            name_);
      }
    } else {
      target = all[i]->seq % count;
    }
    targets[i] = target;
    ++placed_count[target];
  }

  // Phase 2: move rows into their new shards and commit.
  std::vector<std::vector<Slot>> placed(count);
  for (size_t t = 0; t < count; ++t) placed[t].reserve(placed_count[t]);
  for (size_t i = 0; i < all.size(); ++i) {
    placed[targets[i]].push_back(std::move(*all[i]));
  }

  if (count != shards_.size()) {
    std::vector<std::unique_ptr<Shard>> fresh(count);
    for (auto& s : fresh) s = std::make_unique<Shard>();
    shards_ = std::move(fresh);
  }
  for (size_t i = 0; i < count; ++i) {
    shards_[i]->slots = std::move(placed[i]);
    shards_[i]->index = std::move(indexes[i]);
  }
  unique_key_ = key;
  key_index_col_ = key_col;
  return Status::OK();
}

Status Table::DeclareUniqueKey(const std::string& column) {
  return Repartition(0, &column);
}

Status Table::SetShardCount(size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("shard count must be positive");
  }
  // No unlocked same-count early-out: shards_.size() may only be read
  // under the topology lock, which Repartition takes.
  return Repartition(n, nullptr);
}

std::optional<size_t> Table::LookupByKey(const catalog::Value& key) const {
  if (!unique_key_.has_value()) return std::nullopt;
  const Shard& shard = *shards_[ShardOfKey(key)];
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  return shard.slots[it->second].seq;
}

std::optional<catalog::Row> Table::GetByKey(const catalog::Value& key) const {
  if (!unique_key_.has_value()) return std::nullopt;
  const Shard& shard = *shards_[ShardOfKey(key)];
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  return shard.slots[it->second].row;
}

void Table::Clear() {
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  std::vector<std::shared_mutex*> mus;
  mus.reserve(shards_.size());
  for (const auto& s : shards_) mus.push_back(&s->mu);
  AllShardsExclusive lock(mus);
  for (const auto& s : shards_) {
    s->slots.clear();
    s->index.clear();
  }
  next_seq_.store(0, std::memory_order_release);
  size_.store(0, std::memory_order_release);
}

Status Table::ForEachRowExclusive(
    const std::function<Status(catalog::Row* row)>& fn) {
  std::shared_lock<std::shared_mutex> topology(topology_mu_);
  for (const auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mu);
    for (Slot& slot : shard->slots) {
      EQSQL_RETURN_IF_ERROR(fn(&slot.row));
    }
  }
  return Status::OK();
}

}  // namespace eqsql::storage
