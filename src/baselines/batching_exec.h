#ifndef EQSQL_BASELINES_BATCHING_EXEC_H_
#define EQSQL_BASELINES_BATCHING_EXEC_H_

#include <string>
#include <vector>

#include "frontend/ast.h"

namespace eqsql::baselines {

/// One parameterized query site inside a batchable cursor loop: an
/// `executeQuery("... ?", args...)` call whose arguments depend only on
/// the loop variable. The batching rewrite [11] uploads one parameter
/// row per cursor row and replaces the per-row probe with a single
/// set-oriented join against the parameter table, demultiplexing the
/// joined rows back to iterations by the uploaded row id.
struct BatchSite {
  const frontend::Expr* call = nullptr;   // the executeQuery call node
  std::string sql;                        // original parameterized text
  std::vector<frontend::ExprPtr> params;  // arg exprs after the SQL literal
  std::string batched_sql;                // set-oriented rewrite
  std::string inner_table;                // probed table (stats lookup)
  size_t param_offset = 0;  // index of this site's first parameter column
};

/// A cursor loop the batching baseline can execute set-at-a-time.
/// `sites` empty means the loop is not batchable (no parameterized
/// probe, an impure parameter, DML or an unknown call in the body, or a
/// probe whose SQL shape the textual rewrite cannot handle).
struct BatchPlan {
  const frontend::Stmt* loop = nullptr;
  std::string loop_var;
  /// The iterable's query text when the loop runs over `executeQuery(lit)`
  /// directly or over a variable assigned that way earlier in the
  /// function; empty otherwise (cost estimation then has no outer plan).
  std::string outer_sql;
  std::vector<BatchSite> sites;
  size_t param_columns = 0;  // total parameter columns across sites
};

/// Analyzes one kForEach statement for batchability. Sites are
/// collected from the loop body and its if-branches but not from nested
/// loops (those batch themselves when executed); the whole body is
/// still scanned for disqualifiers (executeUpdate, calls to non-builtin
/// functions) because a prefetched result must not observe writes the
/// body performs. `param_table` names the temp table the rewritten
/// queries join against (aliased `__p` inside the generated SQL).
BatchPlan AnalyzeForEach(const frontend::Stmt& loop,
                         const std::string& param_table);

/// Finds the first batchable cursor loop among `fn`'s top-level
/// statements, resolving the iterable through top-level
/// `v = executeQuery("...")` assignments so `outer_sql` is populated
/// when possible. Returns a plan with empty `sites` when nothing
/// batches.
BatchPlan FindBatchLoop(const frontend::Function& fn,
                        const std::string& param_table);

}  // namespace eqsql::baselines

#endif  // EQSQL_BASELINES_BATCHING_EXEC_H_
