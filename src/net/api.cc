#include "net/api.h"

#include <cctype>

namespace eqsql::net {

namespace {

/// First whitespace-delimited token of `sql`, lower-cased. When `rest`
/// is non-null it receives the remainder after the keyword.
std::string FirstKeyword(std::string_view sql, std::string_view* rest = nullptr) {
  size_t i = 0;
  while (i < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  std::string word;
  while (i < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(sql[i]))));
    ++i;
  }
  if (rest != nullptr) *rest = sql.substr(i);
  return word;
}

/// Case-insensitive exact match of `sql` (trailing semicolons and
/// whitespace stripped) against a lower-case statement spelling.
bool IsBareStatement(std::string_view sql, std::string_view spelling) {
  size_t end = sql.size();
  while (end > 0 && (std::isspace(static_cast<unsigned char>(sql[end - 1])) ||
                     sql[end - 1] == ';')) {
    --end;
  }
  size_t begin = 0;
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(sql[begin]))) {
    ++begin;
  }
  std::string_view body = sql.substr(begin, end - begin);
  if (body.size() != spelling.size()) return false;
  for (size_t i = 0; i < body.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(body[i])) != spelling[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<exec::ResultSet> Outcome::TakeResultSet() && {
  if (kind == Kind::kError) return status;
  if (kind != Kind::kResultSet) {
    return Status::InvalidArgument(
        "outcome does not carry a result set (statement was not a query)");
  }
  return std::move(rows);
}

Result<int64_t> Outcome::TakeRowCount() && {
  if (kind == Kind::kError) return status;
  if (kind != Kind::kRowCount) {
    return Status::InvalidArgument(
        "outcome does not carry a row count (statement was not DML)");
  }
  return row_count;
}

Result<Explain> Outcome::TakeExplain() && {
  if (kind == Kind::kError) return status;
  if (kind != Kind::kExplain) {
    return Status::InvalidArgument("outcome does not carry an explain report");
  }
  return std::move(explain);
}

bool IsDmlStatement(std::string_view sql) {
  const std::string kw = FirstKeyword(sql);
  return kw == "insert" || kw == "update" || kw == "delete";
}

bool IsTxnControlStatement(std::string_view sql) {
  const std::string kw = FirstKeyword(sql);
  return kw == "begin" || kw == "commit" || kw == "rollback" ||
         kw == "start";
}

Request::Kind ClassifyStatement(Request::Kind kind, std::string_view sql) {
  if (kind != Request::Kind::kStatement) return kind;
  std::string_view rest;
  const std::string kw = FirstKeyword(sql, &rest);
  if (kw == "begin" || kw == "start") return Request::Kind::kBegin;
  if (kw == "commit") return Request::Kind::kCommit;
  if (kw == "rollback") return Request::Kind::kRollback;
  if (kw == "insert" || kw == "update" || kw == "delete") {
    return Request::Kind::kDml;
  }
  if (kw == "create") return Request::Kind::kCreateIndex;
  if (kw == "explain" && FirstKeyword(rest) == "analyze") {
    return Request::Kind::kExplainAnalyze;
  }
  return Request::Kind::kQuery;
}

bool IsShowMetricsStatement(std::string_view sql) {
  return IsBareStatement(sql, "show metrics");
}

bool IsShowProfilesStatement(std::string_view sql) {
  return IsBareStatement(sql, "show profiles");
}

bool IsShowTracesStatement(std::string_view sql) {
  return IsBareStatement(sql, "show traces");
}

std::string_view ExplainAnalyzeTarget(std::string_view sql) {
  std::string_view rest;
  if (FirstKeyword(sql, &rest) != "explain") return sql;
  std::string_view inner;
  if (FirstKeyword(rest, &inner) != "analyze") return sql;
  return inner;
}

}  // namespace eqsql::net
