#include "analysis/loop_analysis.h"

#include <algorithm>

namespace eqsql::analysis {

using frontend::Stmt;
using frontend::StmtKind;
using frontend::StmtPtr;

namespace {

/// Recursive walker computing flattened statements, effects, control
/// dependences, written/upward-exposed sets.
class BodyWalker {
 public:
  BodyWalker(LoopBodyInfo* info, std::set<std::string> cursors)
      : info_(info), cursors_(std::move(cursors)) {}

  /// Walks `stmts` with the current must-assigned set; updates `assigned`
  /// in place to the state after the statement list.
  void Walk(const std::vector<StmtPtr>& stmts,
            std::vector<const Stmt*>* ctrl_stack,
            std::set<std::string>* assigned, int loop_depth) {
    for (const StmtPtr& stmt : stmts) {
      const Stmt* s = stmt.get();
      StmtEffects eff = ComputeStmtEffects(*s);
      info_->stmts.push_back(s);
      info_->effects[s] = eff;
      info_->control_deps[s] = *ctrl_stack;
      Absorb(eff, *assigned);

      switch (s->kind()) {
        case StmtKind::kAssign:
          assigned->insert(s->target());
          break;
        case StmtKind::kBreak:
          if (loop_depth == 0) info_->has_break = true;
          break;
        case StmtKind::kReturn:
          info_->has_return = true;
          break;
        case StmtKind::kIf: {
          ctrl_stack->push_back(s);
          std::set<std::string> then_assigned = *assigned;
          std::set<std::string> else_assigned = *assigned;
          Walk(s->body(), ctrl_stack, &then_assigned, loop_depth);
          Walk(s->else_body(), ctrl_stack, &else_assigned, loop_depth);
          ctrl_stack->pop_back();
          // Must-assigned after the if: intersection of the branches.
          std::set<std::string> merged;
          std::set_intersection(then_assigned.begin(), then_assigned.end(),
                                else_assigned.begin(), else_assigned.end(),
                                std::inserter(merged, merged.begin()));
          *assigned = std::move(merged);
          break;
        }
        case StmtKind::kForEach: {
          cursors_.insert(s->target());
          ctrl_stack->push_back(s);
          // The body may run zero times: walk with a copy and discard
          // its must-assigned additions.
          std::set<std::string> body_assigned = *assigned;
          body_assigned.insert(s->target());
          Walk(s->body(), ctrl_stack, &body_assigned, loop_depth + 1);
          ctrl_stack->pop_back();
          cursors_.erase(s->target());
          break;
        }
        case StmtKind::kWhile: {
          info_->has_nested_while = true;
          ctrl_stack->push_back(s);
          std::set<std::string> body_assigned = *assigned;
          Walk(s->body(), ctrl_stack, &body_assigned, loop_depth + 1);
          ctrl_stack->pop_back();
          break;
        }
        default:
          break;
      }
    }
  }

 private:
  void Absorb(const StmtEffects& eff, const std::set<std::string>& assigned) {
    for (const std::string& r : eff.reads) {
      if (assigned.count(r) == 0 && cursors_.count(r) == 0) {
        info_->upward_exposed.insert(r);
      }
    }
    for (const std::string& w : eff.writes) {
      if (cursors_.count(w) == 0) info_->written.insert(w);
    }
    info_->writes_db |= eff.writes_db;
    info_->writes_output |= eff.writes_output;
    info_->has_unknown_call |= eff.has_unknown_call;
  }

  LoopBodyInfo* info_;
  std::set<std::string> cursors_;
};

}  // namespace

LoopBodyInfo AnalyzeLoopBody(const std::vector<StmtPtr>& body,
                             const std::string& cursor) {
  LoopBodyInfo info;
  BodyWalker walker(&info, {cursor});
  std::vector<const Stmt*> ctrl_stack;
  std::set<std::string> assigned;
  walker.Walk(body, &ctrl_stack, &assigned, /*loop_depth=*/0);
  // A variable written in the body but not must-assigned on every path
  // keeps its previous-iteration value on some path — an implicit read
  // (paper App. B: "if (pred(t)) then v=true" is treated as
  // v = v ∨ pred(t)).
  for (const std::string& w : info.written) {
    if (assigned.count(w) == 0) info.upward_exposed.insert(w);
  }
  std::set_intersection(
      info.written.begin(), info.written.end(), info.upward_exposed.begin(),
      info.upward_exposed.end(),
      std::inserter(info.loop_carried, info.loop_carried.begin()));
  return info;
}

Slice ComputeSlice(const LoopBodyInfo& info, const std::string& var) {
  Slice slice;
  slice.vars.insert(var);
  bool changed = true;
  while (changed) {
    changed = false;
    // Reverse program order converges quickly for backward slices.
    for (auto it = info.stmts.rbegin(); it != info.stmts.rend(); ++it) {
      const Stmt* s = *it;
      if (slice.stmts.count(s) > 0) continue;
      const StmtEffects& eff = info.effects.at(s);
      bool writes_relevant = false;
      for (const std::string& w : eff.writes) {
        if (slice.vars.count(w) > 0) {
          writes_relevant = true;
          break;
        }
      }
      if (!writes_relevant) continue;
      slice.stmts.insert(s);
      changed = true;
      for (const std::string& r : eff.reads) slice.vars.insert(r);
      // Control predicates governing the statement join the slice.
      auto ctrl_it = info.control_deps.find(s);
      if (ctrl_it != info.control_deps.end()) {
        for (const Stmt* ctrl : ctrl_it->second) {
          if (slice.stmts.insert(ctrl).second) {
            for (const std::string& r : info.effects.at(ctrl).reads) {
              slice.vars.insert(r);
            }
          }
        }
      }
    }
  }
  for (const Stmt* s : slice.stmts) {
    const StmtEffects& eff = info.effects.at(s);
    slice.writes_db |= eff.writes_db;
    slice.writes_output |= eff.writes_output;
    slice.has_unknown_call |= eff.has_unknown_call;
    for (const std::string& w : eff.writes) slice.vars.insert(w);
  }
  return slice;
}

namespace {

/// First line of a statement's rendering, trimmed and clipped — enough
/// to identify the statement next to its line number in a report.
std::string StmtBrief(const frontend::Stmt* s) {
  std::string text = s->ToString();
  size_t nl = text.find('\n');
  if (nl != std::string::npos) text = text.substr(0, nl);
  size_t b = text.find_first_not_of(' ');
  text = b == std::string::npos ? "" : text.substr(b);
  if (text.size() > 60) text = text.substr(0, 57) + "...";
  return text;
}

std::string StmtRef(const frontend::Stmt* s) {
  return "line " + std::to_string(s->loc().line) + " `" + StmtBrief(s) + "`";
}

/// The first statement (program order) in `stmts` writing `var`, or
/// nullptr.
const frontend::Stmt* FirstWriter(const LoopBodyInfo& info,
                                  const std::set<const frontend::Stmt*>& in,
                                  const std::string& var) {
  for (const frontend::Stmt* s : info.stmts) {
    if (!in.empty() && in.count(s) == 0) continue;
    if (info.effects.at(s).writes.count(var) > 0) return s;
  }
  return nullptr;
}

const frontend::Stmt* FirstReader(const LoopBodyInfo& info,
                                  const std::string& var) {
  for (const frontend::Stmt* s : info.stmts) {
    if (info.effects.at(s).reads.count(var) > 0) return s;
  }
  return nullptr;
}

/// Renders the loop-carried flow-dependence edge for `w`: the writing
/// statement and the statement whose next-iteration read closes the
/// cycle in the data-dependence graph.
std::string DescribeCarriedEdge(const LoopBodyInfo& info,
                                const std::set<const frontend::Stmt*>& slice,
                                const std::string& w) {
  std::string out = "loop-carried flow dependence via '" + w + "': ";
  const frontend::Stmt* writer = FirstWriter(info, slice, w);
  if (writer == nullptr) writer = FirstWriter(info, {}, w);
  const frontend::Stmt* reader = FirstReader(info, w);
  if (writer != nullptr) out += "written at " + StmtRef(writer);
  if (reader != nullptr) {
    out += std::string(writer != nullptr ? ", " : "") +
           "read on the next iteration at " + StmtRef(reader);
  } else if (writer != nullptr) {
    out += ", and its previous value survives on paths that skip the write";
  }
  return out;
}

}  // namespace

PreconditionReport ExplainFoldPreconditions(const LoopBodyInfo& info,
                                            const std::string& var) {
  PreconditionReport report;
  // The binding verdict comes from the legacy single-failure check, so
  // conversion behavior is identical by construction.
  PreconditionResult legacy = CheckFoldPreconditions(info, var);
  report.ok = legacy.ok;
  report.failure = legacy.failure;

  if (info.has_break) {
    report.gate = "loop contains break (unconditional exit)";
  } else if (info.has_return) {
    report.gate = "loop contains return (unconditional exit)";
  }

  // P1: var itself must carry a value across iterations.
  report.p1.checked = true;
  if (info.loop_carried.count(var) > 0) {
    report.p1.held = true;
    if (const frontend::Stmt* w = FirstWriter(info, {}, var)) {
      report.p1.detail = "accumulation cycle through " + StmtRef(w);
    }
  } else if (info.written.count(var) == 0) {
    report.p1.detail = "'" + var + "' is not updated in the loop body";
  } else {
    report.p1.detail =
        "'" + var +
        "' never reads its previous-iteration value (no loop-carried "
        "flow dependence, so there is no accumulation cycle)";
  }

  Slice slice = ComputeSlice(info, var);
  if (report.gate.empty()) {
    for (const frontend::Stmt* s : slice.stmts) {
      if (s->kind() == StmtKind::kWhile) {
        report.gate = "slice contains a while loop";
        break;
      }
    }
  }

  // P2: no other loop-carried dependence inside the slice. Program
  // order picks a deterministic offending edge for the report.
  report.p2.checked = true;
  report.p2.held = true;
  for (const Stmt* s : info.stmts) {
    if (slice.stmts.count(s) == 0) continue;
    for (const std::string& w : info.effects.at(s).writes) {
      if (w != var && info.loop_carried.count(w) > 0) {
        report.p2.held = false;
        report.p2.detail = DescribeCarriedEdge(info, slice.stmts, w);
        break;
      }
    }
    if (!report.p2.held) break;
  }

  // P3: no external dependencies in the slice (DB writes, program
  // output, calls with unknown semantics).
  report.p3.checked = true;
  report.p3.held =
      !slice.writes_db && !slice.writes_output && !slice.has_unknown_call;
  if (!report.p3.held) {
    for (const Stmt* s : info.stmts) {
      if (slice.stmts.count(s) == 0) continue;
      const StmtEffects& eff = info.effects.at(s);
      if (eff.writes_db) {
        report.p3.detail = StmtRef(s) + " writes to the database";
        break;
      }
      if (eff.writes_output) {
        report.p3.detail = StmtRef(s) + " writes to program output";
        break;
      }
      if (eff.has_unknown_call) {
        report.p3.detail = StmtRef(s) + " calls a function with unknown "
                                        "semantics";
        break;
      }
    }
  }
  return report;
}

PreconditionResult CheckFoldPreconditions(const LoopBodyInfo& info,
                                          const std::string& var) {
  PreconditionResult result;
  if (info.has_break) {
    result.failure = "loop contains break (unconditional exit)";
    return result;
  }
  if (info.has_return) {
    result.failure = "loop contains return (unconditional exit)";
    return result;
  }
  // P1: var's updates must form a dependence cycle with one lcfd edge —
  // i.e. var's value must flow across iterations.
  if (info.loop_carried.count(var) == 0) {
    result.failure = "P1: no loop-carried accumulation cycle for '" + var +
                     "'";
    return result;
  }
  Slice slice = ComputeSlice(info, var);
  // Nested while loops inside the slice cannot be expressed as folds
  // over a query.
  for (const Stmt* s : slice.stmts) {
    if (s->kind() == StmtKind::kWhile) {
      result.failure = "slice contains a while loop";
      return result;
    }
  }
  // P2: no other loop-carried flow dependence inside the slice.
  for (const Stmt* s : slice.stmts) {
    for (const std::string& w : info.effects.at(s).writes) {
      if (w != var && info.loop_carried.count(w) > 0) {
        result.failure = "P2: additional loop-carried dependence via '" + w +
                         "'";
        return result;
      }
    }
  }
  // P3: no external dependencies.
  if (slice.writes_db) {
    result.failure = "P3: slice writes to the database";
    return result;
  }
  if (slice.writes_output) {
    result.failure = "P3: slice writes to program output";
    return result;
  }
  if (slice.has_unknown_call) {
    result.failure = "slice calls a function with unknown semantics";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace eqsql::analysis
