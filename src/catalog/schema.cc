#include "catalog/schema.h"

#include "common/strings.h"

namespace eqsql::catalog {

namespace {

/// True if stored column name `stored` matches lookup name `query`.
/// Exact match always wins; otherwise an unqualified query matches the
/// part of a qualified stored name after the last '.'.
bool NameMatches(const std::string& stored, const std::string& query,
                 bool query_qualified) {
  if (stored == query) return true;
  if (query_qualified) return false;
  size_t dot = stored.rfind('.');
  if (dot == std::string::npos) return false;
  return stored.compare(dot + 1, std::string::npos, query) == 0;
}

}  // namespace

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  bool qualified = name.find('.') != std::string::npos;
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;  // exact match is unambiguous
  }
  if (qualified) return std::nullopt;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (NameMatches(columns_[i].name, name, /*query_qualified=*/false)) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Result<size_t> Schema::ResolveColumn(const std::string& name) const {
  bool qualified = name.find('.') != std::string::npos;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  if (!qualified) {
    std::optional<size_t> found;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (NameMatches(columns_[i].name, name, false)) {
        if (found.has_value()) {
          return Status::InvalidArgument("ambiguous column: " + name);
        }
        found = i;
      }
    }
    if (found.has_value()) return *found;
  }
  return Status::NotFound("column not found: " + name);
}

size_t Schema::AddColumn(Column column) {
  columns_.push_back(std::move(column));
  return columns_.size() - 1;
}

Schema Schema::Concat(const Schema& right) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(c.name + " " + std::string(DataTypeToString(c.type)));
  }
  return StrJoin(parts, ", ");
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type) {
      return false;
    }
  }
  return true;
}

size_t RowWireSize(const Row& row) {
  size_t total = 0;
  for (const Value& v : row) total += v.WireSize();
  return total;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace eqsql::catalog
