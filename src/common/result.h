#ifndef EQSQL_COMMON_RESULT_H_
#define EQSQL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace eqsql {

/// A value-or-error type, the EqSQL analogue of `arrow::Result<T>`.
///
/// A `Result<T>` holds either an OK `Status` plus a `T`, or a non-OK
/// `Status`. Accessing the value of an errored Result is a programming
/// error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure). Constructing
  /// from an OK status without a value is a programming error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK Status with no value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace eqsql

/// Assigns the value of a `Result` expression to `lhs`, or propagates the
/// error. `lhs` may include a declaration, e.g.
/// `EQSQL_ASSIGN_OR_RETURN(auto x, ComputeX());`
#define EQSQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define EQSQL_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define EQSQL_ASSIGN_OR_RETURN_NAME(x, y) EQSQL_ASSIGN_OR_RETURN_CONCAT(x, y)

#define EQSQL_ASSIGN_OR_RETURN(lhs, expr) \
  EQSQL_ASSIGN_OR_RETURN_IMPL(            \
      EQSQL_ASSIGN_OR_RETURN_NAME(_eqsql_result_, __LINE__), lhs, expr)

#endif  // EQSQL_COMMON_RESULT_H_
