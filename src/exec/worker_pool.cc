#include "exec/worker_pool.h"

#include <memory>
#include <utility>

namespace eqsql::exec {

WorkerPool::WorkerPool(size_t threads) {
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void WorkerPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (threads_.empty() || tasks.size() == 1) {
    for (auto& t : tasks) t();
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& t : tasks) {
      queue_.push_back([batch, task = std::move(t)] {
        task();
        {
          std::lock_guard<std::mutex> lock(batch->mu);
          --batch->remaining;
          if (batch->remaining > 0) return;
        }
        batch->cv.notify_all();
      });
    }
  }
  cv_.notify_all();

  // Caller helps: drain whatever is queued (possibly other batches'
  // tasks — it is all work that must happen) until the queue is empty,
  // then wait for this batch's stragglers running on workers.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->remaining == 0; });
}

}  // namespace eqsql::exec
