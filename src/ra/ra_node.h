#ifndef EQSQL_RA_RA_NODE_H_
#define EQSQL_RA_RA_NODE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ra/scalar_expr.h"

namespace eqsql::ra {

/// Relational operators (extended multiset relational algebra, paper
/// Sec. 3.2.1). Project is defined to preserve input order; Sort (τ)
/// imposes an order; Dedup (δ) eliminates duplicates.
enum class RaOp {
  kScan,        // base table, optional alias
  kSelect,      // σ_pred
  kProject,     // π_items (no duplicate elimination, order-preserving)
  kJoin,        // ⋈_pred (inner)
  kLeftOuterJoin,
  kOuterApply,  // correlated: left OApply right(t) (paper App. B, rule T7)
  kGroupBy,     // γ: group keys + aggregates (keys may be empty)
  kSort,        // τ_keys
  kDedup,       // δ
  kLimit,       // first n rows
};

std::string_view RaOpToString(RaOp op);

/// Aggregate functions supported by γ. kCountStar ignores its argument.
enum class AggFunc { kSum, kMin, kMax, kCount, kCountStar, kAvg };

std::string_view AggFuncToString(AggFunc func);

/// One output of a Project: expression + output column name.
struct ProjectItem {
  ScalarExprPtr expr;
  std::string name;
};

/// One aggregate of a GroupBy: SUM(arg) AS name etc.
struct AggregateSpec {
  AggFunc func = AggFunc::kCount;
  ScalarExprPtr arg;  // null for kCountStar
  std::string name;
};

/// One sort key: expression + direction.
struct SortKey {
  ScalarExprPtr expr;
  bool ascending = true;
};

/// An immutable relational-algebra tree node. Construct via the factory
/// functions; all fields are fixed after construction so nodes can be
/// shared across the ee-DAG and the optimizer.
class RaNode {
 public:
  RaOp op() const { return op_; }
  const std::vector<RaNodePtr>& children() const { return children_; }
  const RaNodePtr& child(size_t i) const { return children_[i]; }
  const RaNodePtr& left() const { return children_[0]; }
  const RaNodePtr& right() const { return children_[1]; }

  /// kScan: target table.
  const std::string& table_name() const { return table_name_; }
  /// kScan: alias used to qualify emitted columns (defaults to table name).
  const std::string& alias() const { return alias_; }
  /// kSelect / kJoin / kLeftOuterJoin / kOuterApply(join condition):
  const ScalarExprPtr& predicate() const { return predicate_; }
  /// kProject:
  const std::vector<ProjectItem>& project_items() const { return projects_; }
  /// kGroupBy:
  const std::vector<ScalarExprPtr>& group_keys() const { return group_keys_; }
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }
  /// kSort:
  const std::vector<SortKey>& sort_keys() const { return sort_keys_; }
  /// kLimit:
  int64_t limit() const { return limit_; }

  /// Structural equality / hash (used by tests and query dedup).
  bool Equals(const RaNode& other) const;
  size_t Hash() const;

  /// Algebra-style debug rendering, e.g.
  /// "Project[score](Select[(> (col x) (lit 1))](Scan[board]))".
  std::string ToString() const;

  // --- factories ---------------------------------------------------------
  static RaNodePtr Scan(std::string table, std::string alias = "");
  static RaNodePtr Select(RaNodePtr child, ScalarExprPtr pred);
  static RaNodePtr Project(RaNodePtr child, std::vector<ProjectItem> items);
  static RaNodePtr Join(RaNodePtr left, RaNodePtr right, ScalarExprPtr pred);
  static RaNodePtr LeftOuterJoin(RaNodePtr left, RaNodePtr right,
                                 ScalarExprPtr pred);
  /// `right` may contain correlated column refs into `left`'s columns.
  static RaNodePtr OuterApply(RaNodePtr left, RaNodePtr right);
  static RaNodePtr GroupBy(RaNodePtr child, std::vector<ScalarExprPtr> keys,
                           std::vector<AggregateSpec> aggs);
  static RaNodePtr Sort(RaNodePtr child, std::vector<SortKey> keys);
  static RaNodePtr Dedup(RaNodePtr child);
  static RaNodePtr Limit(RaNodePtr child, int64_t n);

 private:
  RaNode() = default;

  RaOp op_ = RaOp::kScan;
  std::vector<RaNodePtr> children_;
  std::string table_name_;
  std::string alias_;
  ScalarExprPtr predicate_;
  std::vector<ProjectItem> projects_;
  std::vector<ScalarExprPtr> group_keys_;
  std::vector<AggregateSpec> aggregates_;
  std::vector<SortKey> sort_keys_;
  int64_t limit_ = -1;
};

/// Names of base tables scanned anywhere in `node` (including inside
/// EXISTS subqueries referenced from predicates).
std::vector<std::string> CollectScannedTables(const RaNodePtr& node);

}  // namespace eqsql::ra

#endif  // EQSQL_RA_RA_NODE_H_
