#ifndef EQSQL_CORE_OPTIMIZER_H_
#define EQSQL_CORE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "analysis/loop_analysis.h"
#include "common/result.h"
#include "frontend/ast.h"
#include "rules/transform.h"
#include "sql/generator.h"

namespace eqsql::obs {
class MetricsRegistry;
}  // namespace eqsql::obs

namespace eqsql::core {

/// Options for a full optimization run.
struct OptimizeOptions {
  rules::TransformOptions transform;
  /// Dialect used for the *reported* SQL (the rewritten program always
  /// embeds the round-trippable kDefault dialect).
  sql::Dialect dialect = sql::Dialect::kDefault;
  /// When set, Optimize records extraction counters (rules fired,
  /// P1-P3 verdicts, cost-heuristic skips) into this registry. NOT part
  /// of the plan-cache fingerprint: metrics wiring must not change
  /// cache identity (see OptionsFingerprint in plan_cache.cc).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Outcome for one (loop, variable) extraction attempt.
struct VarOutcome {
  std::string var;
  bool extracted = false;
  std::vector<std::string> sql;  // queries embedded in the replacement
  std::string reason;            // failure reason when !extracted
  /// Transformation rules applied while lifting this variable ("T1",
  /// "T5.1", ..., "ARGMAX" for the App. B extension). Populated even
  /// when the Sec. 5.3 cost heuristic later declines the extraction;
  /// the fuzz harness uses this for rule-coverage accounting.
  std::vector<std::string> rules;

  // --- EXPLAIN EXTRACTION payload (obs::RenderExplain*) ---
  /// Source line of the defining loop and a one-line rendering of its
  /// header ("for t in executeQuery(...)").
  int loop_line = 0;
  std::string loop_desc;
  /// True when the loop iterated a query result (P1-P3 were evaluated).
  bool query_backed = false;
  /// Per-precondition verdicts with offending DDG edges on failure.
  analysis::PreconditionReport preconditions;
  /// True when conversion succeeded but the Sec. 5.3 cost heuristic
  /// declined the extraction (nothing of the slice was exclusively
  /// removable, so the loop stays and the query would only add cost).
  bool cost_skipped = false;
  /// Physical-plan choice for the first indexable equi-join in the
  /// extracted SQL, annotated at EXPLAIN time against live table and
  /// index stats (net::Scheduler). Empty when no secondary index
  /// applies; both alternatives' estimated costs ride along so the
  /// report shows the loser next to the winner.
  std::string join_plan;       // "index-nested-loop" | "hash-join" + site
  double cost_index_ms = 0.0;
  double cost_scan_ms = 0.0;
};

/// Result of optimizing one function.
struct OptimizeResult {
  frontend::Program program;  // rewritten program (all functions)
  bool changed = false;
  std::vector<VarOutcome> outcomes;
  /// Wall-clock time spent on analysis + transformation + rewriting.
  double extraction_ms = 0.0;

  /// True if at least one variable was extracted.
  bool any_extracted() const {
    for (const VarOutcome& o : outcomes) {
      if (o.extracted) return true;
    }
    return false;
  }
};

/// Result of keyword-search query extraction (paper Experiment 3).
struct KeywordSearchResult {
  /// True when every piece of printed data is covered by extracted
  /// queries (no fold/loop/opaque residue).
  bool complete = false;
  std::vector<std::string> queries;
};

/// The EqSQL optimizer (the paper's primary contribution, Fig. 1):
/// source program -> D-IR -> F-IR -> rule-based transformation ->
/// equivalent SQL -> rewritten program with dead code removed.
class EqSqlOptimizer {
 public:
  explicit EqSqlOptimizer(OptimizeOptions options)
      : options_(std::move(options)) {}

  /// Optimizes `function` inside `program`. Extraction is per variable:
  /// variables whose loops cannot be converted keep their original
  /// imperative code (partial optimization, paper Sec. 7.1).
  Result<OptimizeResult> Optimize(const frontend::Program& program,
                                  const std::string& function);

  /// Extracts the set of queries that retrieve exactly the data printed
  /// by `function` (keyword-search mode: ordering-insensitive, paper
  /// Experiment 3).
  Result<KeywordSearchResult> ExtractQueriesForKeywordSearch(
      const frontend::Program& program, const std::string& function);

 private:
  OptimizeOptions options_;
};

}  // namespace eqsql::core

#endif  // EQSQL_CORE_OPTIMIZER_H_
