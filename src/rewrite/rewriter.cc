#include "rewrite/rewriter.h"

namespace eqsql::rewrite {

using frontend::Stmt;
using frontend::StmtKind;
using frontend::StmtPtr;

namespace {

/// Removes `removable` statements from a statement list, recursively
/// pruning conditionals that end up with no branches.
std::vector<StmtPtr> Prune(const std::vector<StmtPtr>& stmts,
                           const std::set<const Stmt*>& removable) {
  std::vector<StmtPtr> kept;
  for (const StmtPtr& stmt : stmts) {
    if (removable.count(stmt.get()) > 0) continue;
    if (stmt->kind() == StmtKind::kIf) {
      std::vector<StmtPtr> then_body = Prune(stmt->body(), removable);
      std::vector<StmtPtr> else_body = Prune(stmt->else_body(), removable);
      if (then_body.empty() && else_body.empty()) continue;
      kept.push_back(Stmt::If(stmt->expr(), std::move(then_body),
                              std::move(else_body), stmt->loc()));
      continue;
    }
    if (stmt->kind() == StmtKind::kForEach ||
        stmt->kind() == StmtKind::kWhile) {
      std::vector<StmtPtr> body = Prune(stmt->body(), removable);
      if (body.empty()) continue;
      if (stmt->kind() == StmtKind::kForEach) {
        kept.push_back(Stmt::ForEach(stmt->target(), stmt->expr(),
                                     std::move(body), stmt->loc()));
      } else {
        kept.push_back(Stmt::While(stmt->expr(), std::move(body),
                                   stmt->loc()));
      }
      continue;
    }
    kept.push_back(stmt);
  }
  return kept;
}

}  // namespace

std::vector<StmtPtr> ReplaceLoopComputation(
    const std::vector<StmtPtr>& body, const Stmt* loop,
    const std::set<const Stmt*>& removable,
    std::vector<StmtPtr> replacements) {
  std::vector<StmtPtr> out;
  for (const StmtPtr& stmt : body) {
    if (stmt.get() != loop) {
      // The target loop is a top-level statement; other statements pass
      // through unchanged (nested regions are handled when their own
      // enclosing loop is rewritten).
      out.push_back(stmt);
      continue;
    }
    std::vector<StmtPtr> pruned_body = Prune(stmt->body(), removable);
    if (!pruned_body.empty()) {
      out.push_back(Stmt::ForEach(stmt->target(), stmt->expr(),
                                  std::move(pruned_body), stmt->loc()));
    }
    for (StmtPtr& replacement : replacements) {
      out.push_back(std::move(replacement));
    }
    replacements.clear();
  }
  return out;
}

}  // namespace eqsql::rewrite
