#include "frontend/ast.h"

#include "common/strings.h"

namespace eqsql::frontend {

std::string_view BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

// --- Expr factories ---------------------------------------------------------

ExprPtr Expr::IntLit(int64_t v, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kIntLit;
  e->int_value_ = v;
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::DoubleLit(double v, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kDoubleLit;
  e->double_value_ = v;
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::StringLit(std::string v, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kStringLit;
  e->string_value_ = std::move(v);
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::BoolLit(bool v, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBoolLit;
  e->bool_value_ = v;
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::NullLit(SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNullLit;
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::VarRef(std::string name, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kVarRef;
  e->name_ = std::move(name);
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::FieldAccess(ExprPtr object, std::string field, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kFieldAccess;
  e->object_ = std::move(object);
  e->name_ = std::move(field);
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::Unary(UnOp op, ExprPtr operand, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->un_op_ = op;
  e->args_.push_back(std::move(operand));
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->bin_op_ = op;
  e->args_ = {std::move(lhs), std::move(rhs)};
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::Ternary(ExprPtr cond, ExprPtr then_e, ExprPtr else_e,
                      SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kTernary;
  e->args_ = {std::move(cond), std::move(then_e), std::move(else_e)};
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args,
                   SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCall;
  e->name_ = std::move(name);
  e->args_ = std::move(args);
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::MethodCall(ExprPtr object, std::string method,
                         std::vector<ExprPtr> args, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kMethodCall;
  e->object_ = std::move(object);
  e->name_ = std::move(method);
  e->args_ = std::move(args);
  e->loc_ = loc;
  return e;
}

namespace {

std::string EscapeImpString(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kIntLit:
      return std::to_string(int_value_);
    case ExprKind::kDoubleLit: {
      std::string s = std::to_string(double_value_);
      while (s.size() > 1 && s.back() == '0') s.pop_back();
      if (!s.empty() && s.back() == '.') s.push_back('0');
      return s;
    }
    case ExprKind::kStringLit:
      return "\"" + EscapeImpString(string_value_) + "\"";
    case ExprKind::kBoolLit:
      return bool_value_ ? "true" : "false";
    case ExprKind::kNullLit:
      return "null";
    case ExprKind::kVarRef:
      return name_;
    case ExprKind::kFieldAccess:
      return object_->ToString() + "." + name_;
    case ExprKind::kUnary:
      return (un_op_ == UnOp::kNot ? "!" : "-") + args_[0]->ToString();
    case ExprKind::kBinary:
      return "(" + args_[0]->ToString() + " " +
             std::string(BinOpToString(bin_op_)) + " " +
             args_[1]->ToString() + ")";
    case ExprKind::kTernary:
      return "(" + args_[0]->ToString() + " ? " + args_[1]->ToString() +
             " : " + args_[2]->ToString() + ")";
    case ExprKind::kCall:
    case ExprKind::kMethodCall: {
      std::vector<std::string> parts;
      for (const ExprPtr& a : args_) parts.push_back(a->ToString());
      std::string prefix =
          kind_ == ExprKind::kMethodCall ? object_->ToString() + "." : "";
      return prefix + name_ + "(" + StrJoin(parts, ", ") + ")";
    }
  }
  return "?";
}

// --- Stmt factories ----------------------------------------------------------

StmtPtr Stmt::Assign(std::string target, ExprPtr value, SourceLoc loc) {
  auto s = std::shared_ptr<Stmt>(new Stmt());
  s->kind_ = StmtKind::kAssign;
  s->target_ = std::move(target);
  s->expr_ = std::move(value);
  s->loc_ = loc;
  return s;
}

StmtPtr Stmt::ExprStmt(ExprPtr expr, SourceLoc loc) {
  auto s = std::shared_ptr<Stmt>(new Stmt());
  s->kind_ = StmtKind::kExprStmt;
  s->expr_ = std::move(expr);
  s->loc_ = loc;
  return s;
}

StmtPtr Stmt::If(ExprPtr cond, std::vector<StmtPtr> then_body,
                 std::vector<StmtPtr> else_body, SourceLoc loc) {
  auto s = std::shared_ptr<Stmt>(new Stmt());
  s->kind_ = StmtKind::kIf;
  s->expr_ = std::move(cond);
  s->body_ = std::move(then_body);
  s->else_body_ = std::move(else_body);
  s->loc_ = loc;
  return s;
}

StmtPtr Stmt::ForEach(std::string var, ExprPtr iterable,
                      std::vector<StmtPtr> body, SourceLoc loc) {
  auto s = std::shared_ptr<Stmt>(new Stmt());
  s->kind_ = StmtKind::kForEach;
  s->target_ = std::move(var);
  s->expr_ = std::move(iterable);
  s->body_ = std::move(body);
  s->loc_ = loc;
  return s;
}

StmtPtr Stmt::While(ExprPtr cond, std::vector<StmtPtr> body, SourceLoc loc) {
  auto s = std::shared_ptr<Stmt>(new Stmt());
  s->kind_ = StmtKind::kWhile;
  s->expr_ = std::move(cond);
  s->body_ = std::move(body);
  s->loc_ = loc;
  return s;
}

StmtPtr Stmt::Return(ExprPtr expr, SourceLoc loc) {
  auto s = std::shared_ptr<Stmt>(new Stmt());
  s->kind_ = StmtKind::kReturn;
  s->expr_ = std::move(expr);
  s->loc_ = loc;
  return s;
}

StmtPtr Stmt::Print(ExprPtr expr, SourceLoc loc) {
  auto s = std::shared_ptr<Stmt>(new Stmt());
  s->kind_ = StmtKind::kPrint;
  s->expr_ = std::move(expr);
  s->loc_ = loc;
  return s;
}

StmtPtr Stmt::Break(SourceLoc loc) {
  auto s = std::shared_ptr<Stmt>(new Stmt());
  s->kind_ = StmtKind::kBreak;
  s->loc_ = loc;
  return s;
}

namespace {

std::string Indent(int n) { return std::string(n, ' '); }

std::string BlockToString(const std::vector<StmtPtr>& stmts, int indent) {
  std::string out;
  for (const StmtPtr& s : stmts) out += s->ToString(indent);
  return out;
}

}  // namespace

std::string Stmt::ToString(int indent) const {
  std::string pad = Indent(indent);
  switch (kind_) {
    case StmtKind::kAssign:
      return pad + target_ + " = " + expr_->ToString() + ";\n";
    case StmtKind::kExprStmt:
      return pad + expr_->ToString() + ";\n";
    case StmtKind::kIf: {
      std::string out = pad + "if (" + expr_->ToString() + ") {\n" +
                        BlockToString(body_, indent + 2) + pad + "}";
      if (!else_body_.empty()) {
        out += " else {\n" + BlockToString(else_body_, indent + 2) + pad + "}";
      }
      return out + "\n";
    }
    case StmtKind::kForEach:
      return pad + "for (" + target_ + " : " + expr_->ToString() + ") {\n" +
             BlockToString(body_, indent + 2) + pad + "}\n";
    case StmtKind::kWhile:
      return pad + "while (" + expr_->ToString() + ") {\n" +
             BlockToString(body_, indent + 2) + pad + "}\n";
    case StmtKind::kReturn:
      return pad + (expr_ ? "return " + expr_->ToString() : "return") + ";\n";
    case StmtKind::kPrint:
      return pad + "print(" + expr_->ToString() + ");\n";
    case StmtKind::kBreak:
      return pad + "break;\n";
  }
  return pad + "?;\n";
}

std::string Function::ToString() const {
  std::string out = "func " + name + "(" + StrJoin(params, ", ") + ") {\n";
  out += BlockToString(body, 2);
  out += "}\n";
  return out;
}

const Function* Program::Find(const std::string& name) const {
  for (const Function& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string Program::ToString() const {
  std::string out;
  for (size_t i = 0; i < functions.size(); ++i) {
    if (i != 0) out += "\n";
    out += functions[i].ToString();
  }
  return out;
}

}  // namespace eqsql::frontend
