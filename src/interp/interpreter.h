#ifndef EQSQL_INTERP_INTERPRETER_H_
#define EQSQL_INTERP_INTERPRETER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "frontend/ast.h"
#include "interp/value.h"
#include "net/api.h"

namespace eqsql::interp {

/// A tree-walking interpreter for ImpLang programs.
///
/// Queries execute through a net::Client — either a raw net::Connection
/// (direct, caller-thread execution) or a net::Session (every statement
/// goes through the server's scheduler) — so running a program also
/// accumulates the simulated cost-model statistics (round trips, bytes,
/// simulated time) that the benchmark harness reports. Prints are
/// captured into `printed()` in order — the equivalence tests compare
/// printed output and return values between the original and rewritten
/// programs.
///
/// Builtins: executeQuery, executeUpdate, scalar, max, min, abs,
/// coalesce, list, set, pair/tuple, concat. max/min ignore NULL
/// arguments (Java's Math.max never sees SQL NULLs; this also makes the
/// T6 rewrite max(init, MAX-query) exact on empty inputs).
class Interpreter {
 public:
  Interpreter(const frontend::Program* program, net::Client* client)
      : program_(program), client_(client) {}

  /// Runs `function` with scalar arguments; returns its return value
  /// (NULL scalar if the function does not return).
  Result<RtValue> Run(const std::string& function,
                      std::vector<RtValue> args = {});

  /// Enables the batching baseline executor [11]: a query-backed foreach
  /// whose probe sites pass the purity analysis in
  /// baselines/batching_exec.h uploads one parameter table, runs each
  /// probe once as a set-oriented join, and serves per-iteration results
  /// from the demultiplexed row groups. Any failure along the way — a
  /// client without temp-table support, a parameter that will not
  /// evaluate, a rewritten query the engine rejects — falls back to
  /// plain row-at-a-time iteration for that loop, so enabling this never
  /// changes which programs run, only how their loops execute.
  void set_batching(bool on) { batching_ = on; }
  bool batching() const { return batching_; }

  const std::vector<std::string>& printed() const { return printed_; }
  void ClearOutput() { printed_.clear(); }

 private:
  using Env = std::map<std::string, RtValue>;

  enum class Signal { kNone, kBreak, kReturn };

  /// Prefetched probe results for one batched loop: per call site, the
  /// joined rows demultiplexed by uploaded row id. `rid` tracks the
  /// current iteration while the loop body executes; executeQuery serves
  /// `sites[call][rid]` instead of a round trip.
  struct BatchOverlay {
    std::map<const frontend::Expr*,
             std::vector<std::shared_ptr<ResultSetObject>>>
        sites;
    size_t rid = 0;
  };

  Result<Signal> ExecBlock(const std::vector<frontend::StmtPtr>& stmts,
                           Env* env, RtValue* ret);
  Result<Signal> ExecStmt(const frontend::StmtPtr& stmt, Env* env,
                          RtValue* ret);
  Result<RtValue> Eval(const frontend::ExprPtr& expr, Env* env);
  Result<RtValue> EvalCall(const frontend::Expr& call, Env* env);
  Result<RtValue> EvalMethod(const frontend::Expr& call, Env* env);
  Result<catalog::Value> EvalScalarArg(const frontend::ExprPtr& expr,
                                       Env* env);

  /// Attempts set-oriented prefetch for one foreach over `elements`.
  /// On success pushes an overlay onto `overlays_` and returns true; on
  /// ANY failure returns false with no overlay installed and no lasting
  /// state (a created temp table is dropped), so the caller can iterate
  /// plainly.
  bool TryBatchForEach(const frontend::Stmt& loop,
                       const std::vector<RtValue>& elements);

  const frontend::Program* program_;
  net::Client* client_;
  std::vector<std::string> printed_;
  int call_depth_ = 0;
  bool batching_ = false;
  int batch_seq_ = 0;
  std::vector<BatchOverlay> overlays_;
};

}  // namespace eqsql::interp

#endif  // EQSQL_INTERP_INTERPRETER_H_
