// Live catalog statistics for the cost estimator, gathered from a
// storage::Database. Shared by the scheduler's EXPLAIN EXTRACTION
// join-plan annotation and the connection's EXPLAIN ANALYZE
// estimated-vs-actual columns, so both price plans against the same
// numbers.
#ifndef EQSQL_NET_TABLE_STATS_H_
#define EQSQL_NET_TABLE_STATS_H_

#include "core/cost_estimator.h"
#include "storage/database.h"

namespace eqsql::net {

/// Snapshot of per-table row counts, average row widths, and indexed
/// column lists at Snapshot::Latest(). When `any_index` is non-null it
/// is set to whether any table carries a secondary index.
core::TableStats GatherTableStats(storage::Database* db,
                                  bool* any_index = nullptr);

}  // namespace eqsql::net

#endif  // EQSQL_NET_TABLE_STATS_H_
