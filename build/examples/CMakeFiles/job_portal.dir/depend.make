# Empty dependencies file for job_portal.
# This may be replaced when dependencies are built.
