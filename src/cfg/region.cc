#include "cfg/region.h"

namespace eqsql::cfg {

using frontend::StmtKind;
using frontend::StmtPtr;

RegionPtr Region::BasicBlock(std::vector<StmtPtr> stmts) {
  auto r = std::shared_ptr<Region>(new Region());
  r->kind_ = RegionKind::kBasicBlock;
  r->stmts_ = std::move(stmts);
  return r;
}

RegionPtr Region::Sequential(RegionPtr first, RegionPtr second) {
  auto r = std::shared_ptr<Region>(new Region());
  r->kind_ = RegionKind::kSequential;
  r->first_ = std::move(first);
  r->second_ = std::move(second);
  return r;
}

RegionPtr Region::Conditional(frontend::ExprPtr cond, RegionPtr true_r,
                              RegionPtr false_r,
                              const frontend::Stmt* origin) {
  auto r = std::shared_ptr<Region>(new Region());
  r->kind_ = RegionKind::kConditional;
  r->cond_ = std::move(cond);
  r->first_ = std::move(true_r);
  r->second_ = std::move(false_r);
  r->origin_ = origin;
  return r;
}

RegionPtr Region::Loop(std::string loop_var, frontend::ExprPtr loop_expr,
                       RegionPtr body, bool is_cursor,
                       const frontend::Stmt* origin) {
  auto r = std::shared_ptr<Region>(new Region());
  r->kind_ = RegionKind::kLoop;
  r->loop_var_ = std::move(loop_var);
  r->cond_ = std::move(loop_expr);
  r->first_ = std::move(body);
  r->is_cursor_loop_ = is_cursor;
  r->origin_ = origin;
  return r;
}

void Region::CollectStmts(std::vector<StmtPtr>* out) const {
  switch (kind_) {
    case RegionKind::kBasicBlock:
      out->insert(out->end(), stmts_.begin(), stmts_.end());
      return;
    case RegionKind::kSequential:
      first_->CollectStmts(out);
      second_->CollectStmts(out);
      return;
    case RegionKind::kConditional:
      if (first_ != nullptr) first_->CollectStmts(out);
      if (second_ != nullptr) second_->CollectStmts(out);
      return;
    case RegionKind::kLoop:
      if (first_ != nullptr) first_->CollectStmts(out);
      return;
  }
}

std::string Region::ToString(int indent) const {
  std::string pad(indent, ' ');
  switch (kind_) {
    case RegionKind::kBasicBlock: {
      std::string out = pad + "BasicBlock {\n";
      for (const StmtPtr& s : stmts_) out += s->ToString(indent + 2);
      return out + pad + "}\n";
    }
    case RegionKind::kSequential:
      return pad + "Sequential {\n" + first_->ToString(indent + 2) +
             second_->ToString(indent + 2) + pad + "}\n";
    case RegionKind::kConditional: {
      std::string out =
          pad + "Conditional (" + cond_->ToString() + ") {\n";
      if (first_ != nullptr) out += first_->ToString(indent + 2);
      if (second_ != nullptr) {
        out += pad + "} else {\n" + second_->ToString(indent + 2);
      }
      return out + pad + "}\n";
    }
    case RegionKind::kLoop:
      return pad + "Loop (" + loop_var_ + " : " + cond_->ToString() +
             ") {\n" + (first_ ? first_->ToString(indent + 2) : "") + pad +
             "}\n";
  }
  return pad + "?\n";
}

RegionPtr BuildRegionTree(const std::vector<StmtPtr>& stmts) {
  std::vector<RegionPtr> regions;
  std::vector<StmtPtr> pending;  // simple statements awaiting a block

  auto flush = [&] {
    if (!pending.empty()) {
      regions.push_back(Region::BasicBlock(std::move(pending)));
      pending.clear();
    }
  };

  for (const StmtPtr& stmt : stmts) {
    switch (stmt->kind()) {
      case StmtKind::kAssign:
      case StmtKind::kExprStmt:
      case StmtKind::kPrint:
      case StmtKind::kReturn:
      case StmtKind::kBreak:
        pending.push_back(stmt);
        break;
      case StmtKind::kIf: {
        flush();
        RegionPtr true_r = BuildRegionTree(stmt->body());
        RegionPtr false_r = BuildRegionTree(stmt->else_body());
        regions.push_back(Region::Conditional(stmt->expr(), std::move(true_r),
                                              std::move(false_r),
                                              stmt.get()));
        break;
      }
      case StmtKind::kForEach: {
        flush();
        RegionPtr body = BuildRegionTree(stmt->body());
        regions.push_back(Region::Loop(stmt->target(), stmt->expr(),
                                       std::move(body), /*is_cursor=*/true,
                                       stmt.get()));
        break;
      }
      case StmtKind::kWhile: {
        flush();
        RegionPtr body = BuildRegionTree(stmt->body());
        regions.push_back(Region::Loop("", stmt->expr(), std::move(body),
                                       /*is_cursor=*/false, stmt.get()));
        break;
      }
    }
  }
  flush();

  if (regions.empty()) return nullptr;
  RegionPtr acc = regions[0];
  for (size_t i = 1; i < regions.size(); ++i) {
    acc = Region::Sequential(std::move(acc), regions[i]);
  }
  return acc;
}

}  // namespace eqsql::cfg
