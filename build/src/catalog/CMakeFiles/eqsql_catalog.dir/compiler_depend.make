# Empty compiler generated dependencies file for eqsql_catalog.
# This may be replaced when dependencies are built.
