# Empty compiler generated dependencies file for ra_utils_test.
# This may be replaced when dependencies are built.
