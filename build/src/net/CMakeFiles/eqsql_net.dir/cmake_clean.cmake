file(REMOVE_RECURSE
  "CMakeFiles/eqsql_net.dir/connection.cc.o"
  "CMakeFiles/eqsql_net.dir/connection.cc.o.d"
  "libeqsql_net.a"
  "libeqsql_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqsql_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
