#include "fuzz/data_gen.h"

namespace eqsql::fuzz {

using catalog::Value;

int PickRowCount(Rng* rng, const DataOptions& opts) {
  // 12% empty, 12% singleton, 12% tiny (2-4), rest bulk.
  int roll = static_cast<int>(rng->Range(0, 99));
  if (roll < 12) return 0;
  if (roll < 24) return 1;
  if (roll < 36) return static_cast<int>(rng->Range(2, 4));
  return static_cast<int>(rng->Range(2, opts.max_rows));
}

void GenerateRows(Rng* rng, const DataOptions& opts,
                  const std::vector<ColumnGen>& cols, int row_count,
                  TableSpec* spec) {
  spec->columns.clear();
  for (const ColumnGen& c : cols) spec->columns.push_back(c.column);

  bool skewed = rng->Percent(opts.skew_percent);
  // The hot value every skewed cell collapses onto (per column).
  std::vector<int64_t> hot(cols.size());
  for (size_t j = 0; j < cols.size(); ++j) {
    hot[j] = rng->Range(cols[j].lo, cols[j].hi);
  }

  spec->rows.clear();
  spec->rows.reserve(static_cast<size_t>(row_count));
  for (int i = 0; i < row_count; ++i) {
    catalog::Row row;
    row.reserve(cols.size());
    for (size_t j = 0; j < cols.size(); ++j) {
      const ColumnGen& c = cols[j];
      if (c.kind == ColumnGen::Kind::kSequential) {
        row.push_back(Value::Int(i));
        continue;
      }
      if (c.nullable && rng->Percent(opts.null_percent)) {
        row.push_back(Value::Null());
        continue;
      }
      int64_t draw = (skewed && rng->Percent(80))
                         ? hot[j]
                         : rng->Range(c.lo, c.hi);
      if (c.kind == ColumnGen::Kind::kString) {
        int64_t k = (skewed && rng->Percent(80))
                        ? hot[j] % c.distinct
                        : rng->Range(0, c.distinct - 1);
        row.push_back(Value::String(c.prefix + std::to_string(k)));
      } else {
        row.push_back(Value::Int(draw));
      }
    }
    spec->rows.push_back(std::move(row));
  }
}

}  // namespace eqsql::fuzz
