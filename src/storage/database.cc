#include "storage/database.h"

#include <mutex>

#include "common/strings.h"

namespace eqsql::storage {

Result<Table*> Database::CreateTable(const std::string& name,
                                     catalog::Schema schema) {
  std::string key = AsciiToLower(name);
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  if (tables_.count(key) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return static_cast<const Table*>(it->second.get());
}

bool Database::HasTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  return tables_.count(AsciiToLower(name)) > 0;
}

void Database::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  tables_.erase(AsciiToLower(name));
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace eqsql::storage
