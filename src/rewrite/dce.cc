#include "rewrite/dce.h"

#include <algorithm>

#include "analysis/effects.h"

namespace eqsql::rewrite {

using analysis::StmtEffects;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::StmtPtr;

namespace {

/// True when the statement must be preserved regardless of liveness.
bool HasUnremovableEffect(const StmtEffects& eff) {
  return eff.writes_db || eff.has_unknown_call;
}

/// Processes `body` backwards with live set `live`; returns the kept
/// statements in program order.
std::vector<StmtPtr> Process(const std::vector<StmtPtr>& body,
                             std::set<std::string>* live);

/// One backward step for a single statement; pushes kept statements to
/// `kept` (in reverse order).
void ProcessStmt(const StmtPtr& stmt, std::set<std::string>* live,
                 std::vector<StmtPtr>* kept) {
  StmtEffects eff = analysis::ComputeStmtEffects(*stmt);
  switch (stmt->kind()) {
    case StmtKind::kReturn:
    case StmtKind::kPrint:
    case StmtKind::kBreak: {
      kept->push_back(stmt);
      live->insert(eff.reads.begin(), eff.reads.end());
      return;
    }
    case StmtKind::kAssign: {
      bool needed = live->count(stmt->target()) > 0 ||
                    HasUnremovableEffect(eff);
      if (!needed) return;
      kept->push_back(stmt);
      live->erase(stmt->target());
      live->insert(eff.reads.begin(), eff.reads.end());
      return;
    }
    case StmtKind::kExprStmt: {
      // Collection mutations matter when the collection is live; other
      // expression statements only when they have unremovable effects.
      bool mutates_live = false;
      for (const std::string& w : eff.writes) {
        if (live->count(w) > 0) mutates_live = true;
      }
      if (!mutates_live && !HasUnremovableEffect(eff)) return;
      kept->push_back(stmt);
      live->insert(eff.reads.begin(), eff.reads.end());
      return;
    }
    case StmtKind::kIf: {
      std::set<std::string> then_live = *live;
      std::set<std::string> else_live = *live;
      std::vector<StmtPtr> then_body = Process(stmt->body(), &then_live);
      std::vector<StmtPtr> else_body = Process(stmt->else_body(), &else_live);
      if (then_body.empty() && else_body.empty()) return;
      live->insert(then_live.begin(), then_live.end());
      live->insert(else_live.begin(), else_live.end());
      StmtEffects cond_eff;
      analysis::CollectExprEffects(stmt->expr(), &cond_eff);
      live->insert(cond_eff.reads.begin(), cond_eff.reads.end());
      kept->push_back(Stmt::If(stmt->expr(), std::move(then_body),
                               std::move(else_body), stmt->loc()));
      return;
    }
    case StmtKind::kForEach:
    case StmtKind::kWhile: {
      // Iterate to a fixpoint: variables read by kept body statements
      // become live around the back edge.
      std::set<std::string> body_live = *live;
      std::vector<StmtPtr> body;
      for (int iter = 0; iter < 4; ++iter) {
        std::set<std::string> trial = body_live;
        body = Process(stmt->body(), &trial);
        if (trial == body_live) break;
        body_live.insert(trial.begin(), trial.end());
      }
      if (body.empty()) return;  // empty loop: iterable read is removable
      *live = body_live;
      if (stmt->kind() == StmtKind::kForEach) live->erase(stmt->target());
      StmtEffects iter_eff;
      analysis::CollectExprEffects(stmt->expr(), &iter_eff);
      live->insert(iter_eff.reads.begin(), iter_eff.reads.end());
      if (stmt->kind() == StmtKind::kForEach) {
        kept->push_back(Stmt::ForEach(stmt->target(), stmt->expr(),
                                      std::move(body), stmt->loc()));
      } else {
        kept->push_back(Stmt::While(stmt->expr(), std::move(body),
                                    stmt->loc()));
      }
      return;
    }
  }
}

std::vector<StmtPtr> Process(const std::vector<StmtPtr>& body,
                             std::set<std::string>* live) {
  std::vector<StmtPtr> kept_reversed;
  for (auto it = body.rbegin(); it != body.rend(); ++it) {
    ProcessStmt(*it, live, &kept_reversed);
  }
  std::reverse(kept_reversed.begin(), kept_reversed.end());
  return kept_reversed;
}

}  // namespace

std::vector<StmtPtr> RemoveDeadCode(const std::vector<StmtPtr>& body,
                                    const std::set<std::string>& live_out) {
  std::set<std::string> live = live_out;
  return Process(body, &live);
}

}  // namespace eqsql::rewrite
