#ifndef EQSQL_INTERP_VALUE_H_
#define EQSQL_INTERP_VALUE_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "catalog/schema.h"
#include "exec/executor.h"

namespace eqsql::interp {

class RtValue;

/// A database row bound to its result-set schema (cursor tuples).
struct RowObject {
  std::shared_ptr<const catalog::Schema> schema;
  catalog::Row row;
};

/// A mutable ordered collection with Java-like reference semantics.
struct ListObject {
  std::vector<RtValue> items;
};

/// A mutable set preserving insertion order, deduplicating by display
/// string (sufficient for scalar and tuple elements).
struct SetObject {
  std::vector<RtValue> items;
  std::vector<std::string> keys;  // parallel display-string keys

  bool Insert(RtValue value);
};

/// An immutable tuple (pair(...) / tuple(...) builtins).
struct TupleObject {
  std::vector<RtValue> items;
};

/// A materialized query result.
struct ResultSetObject {
  std::shared_ptr<const catalog::Schema> schema;
  std::vector<catalog::Row> rows;
};

/// An ImpLang runtime value: a SQL scalar or a reference to a heap
/// object (row, list, set, tuple, result set). References share the
/// underlying object, matching Java collection semantics.
class RtValue {
 public:
  RtValue() : data_(catalog::Value()) {}
  /*implicit*/ RtValue(catalog::Value v) : data_(std::move(v)) {}
  /*implicit*/ RtValue(std::shared_ptr<RowObject> v) : data_(std::move(v)) {}
  /*implicit*/ RtValue(std::shared_ptr<ListObject> v) : data_(std::move(v)) {}
  /*implicit*/ RtValue(std::shared_ptr<SetObject> v) : data_(std::move(v)) {}
  /*implicit*/ RtValue(std::shared_ptr<TupleObject> v)
      : data_(std::move(v)) {}
  /*implicit*/ RtValue(std::shared_ptr<ResultSetObject> v)
      : data_(std::move(v)) {}

  bool is_scalar() const {
    return std::holds_alternative<catalog::Value>(data_);
  }
  bool is_row() const {
    return std::holds_alternative<std::shared_ptr<RowObject>>(data_);
  }
  bool is_list() const {
    return std::holds_alternative<std::shared_ptr<ListObject>>(data_);
  }
  bool is_set() const {
    return std::holds_alternative<std::shared_ptr<SetObject>>(data_);
  }
  bool is_tuple() const {
    return std::holds_alternative<std::shared_ptr<TupleObject>>(data_);
  }
  bool is_result_set() const {
    return std::holds_alternative<std::shared_ptr<ResultSetObject>>(data_);
  }

  const catalog::Value& scalar() const {
    return std::get<catalog::Value>(data_);
  }
  const std::shared_ptr<RowObject>& row() const {
    return std::get<std::shared_ptr<RowObject>>(data_);
  }
  const std::shared_ptr<ListObject>& list() const {
    return std::get<std::shared_ptr<ListObject>>(data_);
  }
  const std::shared_ptr<SetObject>& set() const {
    return std::get<std::shared_ptr<SetObject>>(data_);
  }
  const std::shared_ptr<TupleObject>& tuple() const {
    return std::get<std::shared_ptr<TupleObject>>(data_);
  }
  const std::shared_ptr<ResultSetObject>& result_set() const {
    return std::get<std::shared_ptr<ResultSetObject>>(data_);
  }

  /// Human-readable rendering: scalars without quotes, collections as
  /// "[a, b]" / "{a, b}", tuples as "(a, b)", rows as "(v1, v2, ...)".
  /// Used for print capture and equivalence checks.
  std::string DisplayString() const;

 private:
  std::variant<catalog::Value, std::shared_ptr<RowObject>,
               std::shared_ptr<ListObject>, std::shared_ptr<SetObject>,
               std::shared_ptr<TupleObject>,
               std::shared_ptr<ResultSetObject>>
      data_;
};

}  // namespace eqsql::interp

#endif  // EQSQL_INTERP_VALUE_H_
