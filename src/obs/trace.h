#ifndef EQSQL_OBS_TRACE_H_
#define EQSQL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace eqsql::obs {

/// One completed (or still-open) span of a pipeline trace.
struct TraceSpan {
  std::string name;
  int id = -1;
  int parent = -1;  // index of the parent span, -1 for roots
  int64_t start_ns = 0;  // relative to the trace's origin
  int64_t dur_ns = -1;   // -1 while the span is open
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// A per-query span tree covering the extraction/execution pipeline
/// (parse -> region analysis -> D-IR -> F-IR -> rules -> SQL emission
/// -> execution), including per-shard spans emitted by the partition-
/// parallel executor.
///
/// Thread model: spans may begin/end on any thread (the parallel
/// executor's pool tasks append shard spans concurrently); the internal
/// mutex serializes the span vector. The ambient ScopedTrace/ScopedSpan
/// API below keeps instrumentation sites one-liners with zero cost when
/// no trace is installed.
class Trace {
 public:
  Trace() : origin_(std::chrono::steady_clock::now()) {}
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span; returns its id. `parent` of -1 makes a root span.
  int BeginSpan(std::string name, int parent);
  void EndSpan(int id);
  void SetAttr(int id, std::string key, std::string value);

  std::vector<TraceSpan> Snapshot() const;

  /// Machine form: {"spans":[{"id":..,"parent":..,"name":..,
  /// "start_ns":..,"dur_ns":..,"attrs":{...}},...]}.
  std::string ToJson() const;

  /// Human form: a depth-indented flame summary. Sibling spans with the
  /// same name under the same parent aggregate into one line with a
  /// repeat count, so a 64-shard fan-out reads as one line.
  std::string FlameSummary() const;

 private:
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::chrono::steady_clock::time_point origin_;
};

/// The ambient trace position of the current thread: which trace is
/// active and which span is the parent for new child spans. Captured by
/// fan-out code (one SpanContext per pool task) and restored on the
/// worker thread with ScopedContext, so spans created inside tasks
/// attach to the submitting query's tree.
struct SpanContext {
  Trace* trace = nullptr;
  int span = -1;
};

/// The calling thread's current context (null trace when none active).
SpanContext CurrentSpanContext();

/// Installs `trace` as the calling thread's active trace for the
/// current scope. Passing nullptr is a no-op scope.
class ScopedTrace {
 public:
  explicit ScopedTrace(Trace* trace);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  SpanContext saved_;
};

/// Restores a captured SpanContext on this thread for the current scope
/// (for pool tasks running parts of a traced query).
class ScopedContext {
 public:
  explicit ScopedContext(SpanContext ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  SpanContext saved_;
};

/// Opens a child span of the current ambient context, and makes itself
/// the ambient parent until destruction. A no-op (no allocation, two
/// thread-local reads) when no trace is installed — instrumentation in
/// deep layers costs nothing for untraced queries.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return trace_ != nullptr; }
  void Attr(const char* key, std::string value);

 private:
  Trace* trace_ = nullptr;
  int id_ = -1;
  SpanContext saved_;
};

}  // namespace eqsql::obs

#endif  // EQSQL_OBS_TRACE_H_
