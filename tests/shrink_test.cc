// Unit tests for the shrinker's expression-level simplification pass:
// a seeded failure full of magic constants and compound predicates must
// reduce below a fixed statement + predicate-atom budget, with its
// integer literals collapsed to 0/1.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frontend/ast.h"
#include "frontend/parser.h"
#include "fuzz/oracle.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"

namespace eqsql::fuzz {
namespace {

using catalog::DataType;
using catalog::Value;
using frontend::ExprKind;
using frontend::ExprPtr;
using frontend::StmtPtr;

int CountStmts(const std::vector<StmtPtr>& body) {
  int n = 0;
  for (const StmtPtr& s : body) {
    n += 1 + CountStmts(s->body()) + CountStmts(s->else_body());
  }
  return n;
}

int CountLargeIntLiteralsIn(const ExprPtr& e) {
  if (e == nullptr) return 0;
  int n = 0;
  if (e->kind() == ExprKind::kIntLit &&
      (e->int_value() > 1 || e->int_value() < -1)) {
    n = 1;
  }
  n += CountLargeIntLiteralsIn(e->object());
  for (const ExprPtr& a : e->args()) n += CountLargeIntLiteralsIn(a);
  return n;
}

int CountLargeIntLiterals(const std::vector<StmtPtr>& body) {
  int n = 0;
  for (const StmtPtr& s : body) {
    n += CountLargeIntLiteralsIn(s->expr()) + CountLargeIntLiterals(s->body()) +
         CountLargeIntLiterals(s->else_body());
  }
  return n;
}

/// A deliberately bloated guarded-sum case. The injected corruption
/// turns the extracted `w > 37` into `w >= 37`, and the w == 37 row
/// makes that observable, so the case fails before shrinking.
FuzzCase BloatedSumCase() {
  FuzzCase c;
  TableSpec t;
  t.name = "t0";
  t.unique_key = "id";
  t.columns = {{"id", DataType::kInt64},
               {"v", DataType::kInt64},
               {"w", DataType::kInt64},
               {"name", DataType::kString}};
  auto row = [](int64_t id, int64_t v, int64_t w, const char* name) {
    return catalog::Row{Value::Int(id), Value::Int(v), Value::Int(w),
                        Value::String(name)};
  };
  t.rows = {row(0, 10, 37, "a"), row(1, 20, 1, "b"),  row(2, 95, 50, "c"),
            row(3, 5, 40, "d"),  row(4, 60, 12, "e"), row(5, 33, 37, "f")};
  c.tables.push_back(std::move(t));
  c.source =
      "func f() {\n"
      "  junk = 17;\n"
      "  s = 3;\n"
      "  rows = executeQuery(\"SELECT * FROM t0 AS r\");\n"
      "  for (r : rows) {\n"
      "    if ((r.v < 90 && r.w > 37) || r.name == \"zz\") { s = s + r.w; }\n"
      "  }\n"
      "  waste = junk + 25;\n"
      "  return s;\n"
      "}\n";
  c.function = "f";
  return c;
}

TEST(ShrinkExprs, SeededFailureShrinksBelowStatementAndAtomBudget) {
  OracleOptions inject;
  inject.inject_sql_bug = true;
  FuzzCase c = BloatedSumCase();
  OracleReport before = RunOracle(c, inject);
  ASSERT_TRUE(IsViolation(before.verdict))
      << VerdictName(before.verdict) << ": " << before.detail;

  ShrinkOutcome out = Shrink(c, inject);
  OracleReport after = RunOracle(out.reduced, inject);
  ASSERT_TRUE(IsViolation(after.verdict))
      << "shrunk case stopped failing:\n" << SerializeCase(out.reduced);

  auto program = frontend::ParseProgram(out.reduced.source);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const frontend::Function* fn = program->Find("f");
  ASSERT_NE(fn, nullptr);

  // Statement budget: init, scan, loop, fold, return — the junk
  // assignments and the guard must be gone.
  EXPECT_LE(CountStmts(fn->body), 6) << out.reduced.source;
  // Predicate-atom budget: no conjunction survives (the && and || atoms
  // are deletable one side at a time while the failure persists).
  EXPECT_EQ(out.reduced.source.find("&&"), std::string::npos)
      << out.reduced.source;
  EXPECT_EQ(out.reduced.source.find("||"), std::string::npos)
      << out.reduced.source;
  // Constant simplification: the injected bug is the flipped comparison,
  // so the comparison's boundary literal is data-pinned and must survive
  // (shrinking it to 0/1 makes the corruption unobservable). Every OTHER
  // integer literal — the junk inits and the fold seed — collapses to 0/1.
  EXPECT_LE(CountLargeIntLiterals(fn->body), 1) << out.reduced.source;
  // Data shrinks with the program (ddmin row deletion still applies).
  size_t total_rows = 0;
  for (const TableSpec& t : out.reduced.tables) total_rows += t.rows.size();
  EXPECT_LE(total_rows, 2u) << SerializeCase(out.reduced);
}

/// Atom deletion must reach predicates that statement-level conditional
/// splitting cannot: a compound condition in an assignment RHS.
TEST(ShrinkExprs, DeletesAtomsInsideAssignments) {
  OracleOptions inject;
  inject.inject_sql_bug = true;
  FuzzCase c = BloatedSumCase();
  // Rows chosen so the injected `>` -> `>=` flip is observable exactly at
  // the w == 37 boundary (no row has w > 37, and the boundary row also
  // satisfies v < 90), which makes the `&& r.v < 90` conjunct deletable
  // without masking the failure.
  c.tables[0].rows = {
      catalog::Row{Value::Int(0), Value::Int(10), Value::Int(37),
                   Value::String("a")},
      catalog::Row{Value::Int(1), Value::Int(95), Value::Int(37),
                   Value::String("c")},
      catalog::Row{Value::Int(2), Value::Int(20), Value::Int(5),
                   Value::String("b")}};
  c.source =
      "func f() {\n"
      "  found = false;\n"
      "  rows = executeQuery(\"SELECT * FROM t0 AS r\");\n"
      "  for (r : rows) {\n"
      "    found = found || (r.w > 37 && r.v < 90);\n"
      "  }\n"
      "  return found;\n"
      "}\n";
  OracleReport before = RunOracle(c, inject);
  ASSERT_TRUE(IsViolation(before.verdict))
      << VerdictName(before.verdict) << ": " << before.detail;
  ShrinkOutcome out = Shrink(c, inject);
  OracleReport after = RunOracle(out.reduced, inject);
  ASSERT_TRUE(IsViolation(after.verdict)) << SerializeCase(out.reduced);
  // The && conjunct inside the RHS must have been deletable.
  EXPECT_EQ(out.reduced.source.find("&&"), std::string::npos)
      << out.reduced.source;
}

/// A deliberately bloated index-family schedule. The injected
/// corruption silently empties the first SELECT that runs after a
/// CREATE INDEX executed (the indexed arm only), so the failure is
/// index-triggered: any shrink that loses the create (or the table it
/// indexes) no longer reproduces it.
FuzzCase BloatedIndexScheduleCase() {
  FuzzCase c;
  TableSpec t;
  t.name = "t0";
  t.unique_key = "id";
  t.columns = {{"id", DataType::kInt64}, {"v", DataType::kInt64}};
  for (int64_t i = 0; i < 5; ++i) {
    t.rows.push_back(catalog::Row{Value::Int(i), Value::Int(i == 0 ? 3 : i)});
  }
  c.tables.push_back(std::move(t));
  c.function = "@index";
  c.source =
      "0 INSERT INTO t0 VALUES (10, 3)\n"
      "1 BEGIN\n"
      "1 UPDATE t0 SET v = 9 WHERE id = 2\n"
      "1 ROLLBACK\n"
      "0 SELECT * FROM t0 AS r\n"
      "2 CREATE INDEX i0 ON t0 (v)\n"
      "0 INSERT INTO t0 VALUES (11, 4)\n"
      "0 SELECT * FROM t0 AS r WHERE v = 3\n"
      "1 SELECT * FROM t0 AS r\n"
      "2 DELETE FROM t0 WHERE id = 1\n";
  return c;
}

// The ddmin regression for the index family: the schedule pass must
// delete the noise lines while the statement-kind guard (plus the
// failure itself — no index, no corruption) keeps the CREATE INDEX
// line, so the shrinker can never reduce an index-triggered failure
// into a case that stops building the index.
TEST(ShrinkSchedule, IndexScheduleShrinksButKeepsCreateIndex) {
  OracleOptions inject;
  inject.inject_sql_bug = true;
  FuzzCase c = BloatedIndexScheduleCase();
  OracleReport before = RunOracle(c, inject);
  ASSERT_TRUE(IsViolation(before.verdict))
      << VerdictName(before.verdict) << ": " << before.detail;

  ShrinkOutcome out = Shrink(c, inject);
  OracleReport after = RunOracle(out.reduced, inject);
  ASSERT_TRUE(IsViolation(after.verdict))
      << "shrunk case stopped failing:\n" << SerializeCase(out.reduced);

  // The trigger statement survives; the txn noise and pre-create reads
  // do not. Minimal shape: the create plus one corrupted SELECT.
  EXPECT_NE(out.reduced.source.find("CREATE INDEX"), std::string::npos)
      << out.reduced.source;
  int lines = 0;
  std::string cur;
  for (char ch : out.reduced.source + "\n") {
    if (ch == '\n') {
      if (!cur.empty()) ++lines;
      cur.clear();
    } else {
      cur += ch;
    }
  }
  EXPECT_LE(lines, 3) << out.reduced.source;
  // Row ddmin still applies to schedule cases: the SELECT needs just
  // one visible row for the emptied result to diverge.
  size_t total_rows = 0;
  for (const TableSpec& t : out.reduced.tables) total_rows += t.rows.size();
  EXPECT_LE(total_rows, 2u) << SerializeCase(out.reduced);
  // And the case must still pass the real (uninjected) oracle — it is
  // corpus material.
  EXPECT_EQ(RunOracle(out.reduced).verdict, Verdict::kPass);
}

}  // namespace
}  // namespace eqsql::fuzz
