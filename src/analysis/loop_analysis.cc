#include "analysis/loop_analysis.h"

#include <algorithm>

namespace eqsql::analysis {

using frontend::Stmt;
using frontend::StmtKind;
using frontend::StmtPtr;

namespace {

/// Recursive walker computing flattened statements, effects, control
/// dependences, written/upward-exposed sets.
class BodyWalker {
 public:
  BodyWalker(LoopBodyInfo* info, std::set<std::string> cursors)
      : info_(info), cursors_(std::move(cursors)) {}

  /// Walks `stmts` with the current must-assigned set; updates `assigned`
  /// in place to the state after the statement list.
  void Walk(const std::vector<StmtPtr>& stmts,
            std::vector<const Stmt*>* ctrl_stack,
            std::set<std::string>* assigned, int loop_depth) {
    for (const StmtPtr& stmt : stmts) {
      const Stmt* s = stmt.get();
      StmtEffects eff = ComputeStmtEffects(*s);
      info_->stmts.push_back(s);
      info_->effects[s] = eff;
      info_->control_deps[s] = *ctrl_stack;
      Absorb(eff, *assigned);

      switch (s->kind()) {
        case StmtKind::kAssign:
          assigned->insert(s->target());
          break;
        case StmtKind::kBreak:
          if (loop_depth == 0) info_->has_break = true;
          break;
        case StmtKind::kReturn:
          info_->has_return = true;
          break;
        case StmtKind::kIf: {
          ctrl_stack->push_back(s);
          std::set<std::string> then_assigned = *assigned;
          std::set<std::string> else_assigned = *assigned;
          Walk(s->body(), ctrl_stack, &then_assigned, loop_depth);
          Walk(s->else_body(), ctrl_stack, &else_assigned, loop_depth);
          ctrl_stack->pop_back();
          // Must-assigned after the if: intersection of the branches.
          std::set<std::string> merged;
          std::set_intersection(then_assigned.begin(), then_assigned.end(),
                                else_assigned.begin(), else_assigned.end(),
                                std::inserter(merged, merged.begin()));
          *assigned = std::move(merged);
          break;
        }
        case StmtKind::kForEach: {
          cursors_.insert(s->target());
          ctrl_stack->push_back(s);
          // The body may run zero times: walk with a copy and discard
          // its must-assigned additions.
          std::set<std::string> body_assigned = *assigned;
          body_assigned.insert(s->target());
          Walk(s->body(), ctrl_stack, &body_assigned, loop_depth + 1);
          ctrl_stack->pop_back();
          cursors_.erase(s->target());
          break;
        }
        case StmtKind::kWhile: {
          info_->has_nested_while = true;
          ctrl_stack->push_back(s);
          std::set<std::string> body_assigned = *assigned;
          Walk(s->body(), ctrl_stack, &body_assigned, loop_depth + 1);
          ctrl_stack->pop_back();
          break;
        }
        default:
          break;
      }
    }
  }

 private:
  void Absorb(const StmtEffects& eff, const std::set<std::string>& assigned) {
    for (const std::string& r : eff.reads) {
      if (assigned.count(r) == 0 && cursors_.count(r) == 0) {
        info_->upward_exposed.insert(r);
      }
    }
    for (const std::string& w : eff.writes) {
      if (cursors_.count(w) == 0) info_->written.insert(w);
    }
    info_->writes_db |= eff.writes_db;
    info_->writes_output |= eff.writes_output;
    info_->has_unknown_call |= eff.has_unknown_call;
  }

  LoopBodyInfo* info_;
  std::set<std::string> cursors_;
};

}  // namespace

LoopBodyInfo AnalyzeLoopBody(const std::vector<StmtPtr>& body,
                             const std::string& cursor) {
  LoopBodyInfo info;
  BodyWalker walker(&info, {cursor});
  std::vector<const Stmt*> ctrl_stack;
  std::set<std::string> assigned;
  walker.Walk(body, &ctrl_stack, &assigned, /*loop_depth=*/0);
  // A variable written in the body but not must-assigned on every path
  // keeps its previous-iteration value on some path — an implicit read
  // (paper App. B: "if (pred(t)) then v=true" is treated as
  // v = v ∨ pred(t)).
  for (const std::string& w : info.written) {
    if (assigned.count(w) == 0) info.upward_exposed.insert(w);
  }
  std::set_intersection(
      info.written.begin(), info.written.end(), info.upward_exposed.begin(),
      info.upward_exposed.end(),
      std::inserter(info.loop_carried, info.loop_carried.begin()));
  return info;
}

Slice ComputeSlice(const LoopBodyInfo& info, const std::string& var) {
  Slice slice;
  slice.vars.insert(var);
  bool changed = true;
  while (changed) {
    changed = false;
    // Reverse program order converges quickly for backward slices.
    for (auto it = info.stmts.rbegin(); it != info.stmts.rend(); ++it) {
      const Stmt* s = *it;
      if (slice.stmts.count(s) > 0) continue;
      const StmtEffects& eff = info.effects.at(s);
      bool writes_relevant = false;
      for (const std::string& w : eff.writes) {
        if (slice.vars.count(w) > 0) {
          writes_relevant = true;
          break;
        }
      }
      if (!writes_relevant) continue;
      slice.stmts.insert(s);
      changed = true;
      for (const std::string& r : eff.reads) slice.vars.insert(r);
      // Control predicates governing the statement join the slice.
      auto ctrl_it = info.control_deps.find(s);
      if (ctrl_it != info.control_deps.end()) {
        for (const Stmt* ctrl : ctrl_it->second) {
          if (slice.stmts.insert(ctrl).second) {
            for (const std::string& r : info.effects.at(ctrl).reads) {
              slice.vars.insert(r);
            }
          }
        }
      }
    }
  }
  for (const Stmt* s : slice.stmts) {
    const StmtEffects& eff = info.effects.at(s);
    slice.writes_db |= eff.writes_db;
    slice.writes_output |= eff.writes_output;
    slice.has_unknown_call |= eff.has_unknown_call;
    for (const std::string& w : eff.writes) slice.vars.insert(w);
  }
  return slice;
}

PreconditionResult CheckFoldPreconditions(const LoopBodyInfo& info,
                                          const std::string& var) {
  PreconditionResult result;
  if (info.has_break) {
    result.failure = "loop contains break (unconditional exit)";
    return result;
  }
  if (info.has_return) {
    result.failure = "loop contains return (unconditional exit)";
    return result;
  }
  // P1: var's updates must form a dependence cycle with one lcfd edge —
  // i.e. var's value must flow across iterations.
  if (info.loop_carried.count(var) == 0) {
    result.failure = "P1: no loop-carried accumulation cycle for '" + var +
                     "'";
    return result;
  }
  Slice slice = ComputeSlice(info, var);
  // Nested while loops inside the slice cannot be expressed as folds
  // over a query.
  for (const Stmt* s : slice.stmts) {
    if (s->kind() == StmtKind::kWhile) {
      result.failure = "slice contains a while loop";
      return result;
    }
  }
  // P2: no other loop-carried flow dependence inside the slice.
  for (const Stmt* s : slice.stmts) {
    for (const std::string& w : info.effects.at(s).writes) {
      if (w != var && info.loop_carried.count(w) > 0) {
        result.failure = "P2: additional loop-carried dependence via '" + w +
                         "'";
        return result;
      }
    }
  }
  // P3: no external dependencies.
  if (slice.writes_db) {
    result.failure = "P3: slice writes to the database";
    return result;
  }
  if (slice.writes_output) {
    result.failure = "P3: slice writes to program output";
    return result;
  }
  if (slice.has_unknown_call) {
    result.failure = "slice calls a function with unknown semantics";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace eqsql::analysis
