# Empty compiler generated dependencies file for eqsql_exec.
# This may be replaced when dependencies are built.
