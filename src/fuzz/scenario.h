#ifndef EQSQL_FUZZ_SCENARIO_H_
#define EQSQL_FUZZ_SCENARIO_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "storage/database.h"

namespace eqsql::fuzz {

/// One randomly generated table: schema, optional unique key, and the
/// concrete rows. Rows are part of the case (not regenerated from the
/// seed) so the shrinker can delete individual rows and the corpus can
/// persist minimized data verbatim.
struct TableSpec {
  std::string name;
  std::vector<catalog::Column> columns;
  std::string unique_key;  // empty when the table has no key
  std::vector<catalog::Row> rows;
};

/// A self-contained differential-fuzzing scenario: the database state
/// plus an ImpLang program and entry function. Everything the oracle
/// needs; serializable to a single corpus file.
struct FuzzCase {
  uint64_t seed = 0;  // generator seed, 0 for hand-written cases
  std::vector<TableSpec> tables;
  std::string source;
  std::string function = "f";
};

/// Materializes the case's tables into `db` and declares unique keys.
Status BuildDatabase(const FuzzCase& c, storage::Database* db);

/// table -> key column map for OptimizeOptions::transform.table_keys.
std::map<std::string, std::string> TableKeys(const FuzzCase& c);

/// Serializes a case to the line-based corpus format:
///
///   # eqsql-fuzz case v1
///   seed 42
///   function f
///   table t0 key=id
///   col id int
///   col v int null
///   row int:0|int:5
///   row int:1|null
///   end
///   program <<<
///   func f() { ... }
///   >>>
///
/// Cell syntax: null, bool:true, int:N, double:D, str:S with S
/// percent-escaped (%XX) outside [A-Za-z0-9_ .-]. The format
/// round-trips: Parse(Serialize(c)) == c.
std::string SerializeCase(const FuzzCase& c);

/// Parses the corpus format back into a case.
Result<FuzzCase> ParseCase(std::string_view text);

}  // namespace eqsql::fuzz

#endif  // EQSQL_FUZZ_SCENARIO_H_
