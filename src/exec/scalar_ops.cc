#include "exec/scalar_ops.h"

#include <cmath>

namespace eqsql::exec {

using catalog::Value;

Result<Value> EvalArithmetic(ra::ScalarOp op, const Value& lhs,
                             const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  // String + string is concatenation in ImpLang; route through concat.
  if (op == ra::ScalarOp::kAdd && (lhs.is_string() || rhs.is_string())) {
    return EvalConcat(lhs, rhs);
  }
  if (!lhs.is_numeric() || !rhs.is_numeric()) {
    return Status::RuntimeError("arithmetic on non-numeric values: " +
                                lhs.ToString() + " vs " + rhs.ToString());
  }
  bool both_int = lhs.is_int() && rhs.is_int();
  if (both_int) {
    int64_t a = lhs.AsInt(), b = rhs.AsInt();
    switch (op) {
      case ra::ScalarOp::kAdd: return Value::Int(a + b);
      case ra::ScalarOp::kSub: return Value::Int(a - b);
      case ra::ScalarOp::kMul: return Value::Int(a * b);
      case ra::ScalarOp::kDiv:
        if (b == 0) return Value::Null();  // MySQL: x/0 is NULL
        return Value::Int(a / b);
      case ra::ScalarOp::kMod:
        if (b == 0) return Value::Null();
        return Value::Int(a % b);
      default:
        break;
    }
  } else {
    double a = lhs.AsNumeric(), b = rhs.AsNumeric();
    switch (op) {
      case ra::ScalarOp::kAdd: return Value::Double(a + b);
      case ra::ScalarOp::kSub: return Value::Double(a - b);
      case ra::ScalarOp::kMul: return Value::Double(a * b);
      case ra::ScalarOp::kDiv:
        if (b == 0.0) return Value::Null();
        return Value::Double(a / b);
      case ra::ScalarOp::kMod:
        if (b == 0.0) return Value::Null();
        return Value::Double(std::fmod(a, b));
      default:
        break;
    }
  }
  return Status::Internal("EvalArithmetic called with non-arithmetic op");
}

Result<Value> EvalComparison(ra::ScalarOp op, const Value& lhs,
                             const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  // Cross-type numeric comparison is fine; other cross-type comparisons
  // are a type error (ImpLang and our SQL subset are strongly typed).
  bool comparable = (lhs.is_numeric() && rhs.is_numeric()) ||
                    (lhs.is_string() && rhs.is_string()) ||
                    (lhs.is_bool() && rhs.is_bool());
  if (!comparable) {
    return Status::RuntimeError("cannot compare " + lhs.ToString() + " with " +
                                rhs.ToString());
  }
  bool eq = (lhs == rhs);
  bool lt = (lhs < rhs);
  switch (op) {
    case ra::ScalarOp::kEq: return Value::Bool(eq);
    case ra::ScalarOp::kNe: return Value::Bool(!eq);
    case ra::ScalarOp::kLt: return Value::Bool(lt);
    case ra::ScalarOp::kLe: return Value::Bool(lt || eq);
    case ra::ScalarOp::kGt: return Value::Bool(!lt && !eq);
    case ra::ScalarOp::kGe: return Value::Bool(!lt);
    default:
      return Status::Internal("EvalComparison called with non-comparison op");
  }
}

Value EvalAnd(const Value& lhs, const Value& rhs) {
  // Kleene logic: FALSE dominates.
  bool lf = lhs.is_bool() && !lhs.AsBool();
  bool rf = rhs.is_bool() && !rhs.AsBool();
  if (lf || rf) return Value::Bool(false);
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  return Value::Bool(lhs.AsBool() && rhs.AsBool());
}

Value EvalOr(const Value& lhs, const Value& rhs) {
  bool lt = lhs.is_bool() && lhs.AsBool();
  bool rt = rhs.is_bool() && rhs.AsBool();
  if (lt || rt) return Value::Bool(true);
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  return Value::Bool(lhs.AsBool() || rhs.AsBool());
}

Value EvalNot(const Value& v) {
  if (v.is_null()) return Value::Null();
  return Value::Bool(!v.AsBool());
}

namespace {

std::string Stringify(const Value& v) {
  if (v.is_string()) return v.AsString();
  if (v.is_int()) return std::to_string(v.AsInt());
  if (v.is_bool()) return v.AsBool() ? "true" : "false";
  return v.ToString();
}

}  // namespace

Result<Value> EvalConcat(const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  return Value::String(Stringify(lhs) + Stringify(rhs));
}

Result<Value> EvalGreatestLeast(bool greatest,
                                const std::vector<Value>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("GREATEST/LEAST needs >= 1 argument");
  }
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();  // MySQL semantics
  }
  Value best = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    bool take = greatest ? (best < args[i]) : (args[i] < best);
    if (take) best = args[i];
  }
  return best;
}

bool IsTruthy(const Value& v) { return v.is_bool() && v.AsBool(); }

}  // namespace eqsql::exec
